"""Differential oracle: optimised step vs the naive reference twin.

The hot-loop performance pass is held to a zero-drift contract: the
buffered, in-place step must produce *bit-identical* outputs to the
allocating pre-optimisation implementation kept in
:mod:`repro.perf.reference`. This suite runs both in lockstep — the
optimised vehicle and its deep-copied reference twin see the same RNG
bit-streams — across every fault type x fault target combination, and
compares every metric-bearing signal with raw-byte equality after
every single step. One ULP of drift anywhere fails tier-1.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.faults import FaultSpec, FaultTarget, FaultType
from repro.perf import build_trace_system, reference_twin
from repro.system import UavSystem

#: 1.2 simulated seconds at 100 Hz: spin-up, the fault window
#: (0.4 s - 0.9 s), and post-fault recovery all land inside it.
N_STEPS = 120

#: Every signal the paper's metrics depend on, by name so a divergence
#: report says *what* drifted, not just that something did.
_SIGNALS = (
    "truth_position",
    "truth_velocity",
    "truth_quaternion",
    "truth_rate",
    "ekf_position",
    "ekf_velocity",
    "ekf_quaternion",
    "ekf_gyro_bias",
    "ekf_accel_bias",
    "motor_commands",
)


def _signals(system: UavSystem) -> dict[str, np.ndarray]:
    truth = system.physics.state
    ekf = system.ekf
    return {
        "truth_position": truth.position_ned,
        "truth_velocity": truth.velocity_ned,
        "truth_quaternion": truth.quaternion,
        "truth_rate": truth.angular_rate_body,
        "ekf_position": ekf.position_ned,
        "ekf_velocity": ekf.velocity_ned,
        "ekf_quaternion": ekf.quaternion,
        "ekf_gyro_bias": ekf.gyro_bias,
        "ekf_accel_bias": ekf.accel_bias,
        "motor_commands": system.physics.airframe.motors.effective_commands,
    }


def _assert_lockstep(fault: FaultSpec | None, seed: int, n_steps: int = N_STEPS) -> None:
    system = build_trace_system(fault, seed=seed)
    twin = reference_twin(system)
    for step in range(n_steps):
        system.step()
        twin.step()
        fast = _signals(system)
        slow = _signals(twin)
        for name in _SIGNALS:
            assert fast[name].tobytes() == slow[name].tobytes(), (
                f"{name} diverged at step {step + 1}/{n_steps}:\n"
                f"  optimised: {fast[name]!r}\n"
                f"  reference: {slow[name]!r}"
            )


@pytest.mark.parametrize("target", list(FaultTarget), ids=lambda t: t.value)
@pytest.mark.parametrize("fault_type", list(FaultType), ids=lambda f: f.value)
def test_every_fault_combination_bit_identical(fault_type: FaultType, target: FaultTarget):
    """All fault type x target combinations stay bit-identical per step."""
    fault = FaultSpec(fault_type, target, start_time_s=0.4, duration_s=0.5, seed=7)
    _assert_lockstep(fault, seed=3)


def test_gold_run_bit_identical():
    """The fault-free baseline stays bit-identical per step."""
    _assert_lockstep(None, seed=0)


def test_reference_twin_does_not_share_mutable_state():
    """Stepping the twin must not advance the production system."""
    system = build_trace_system(None, seed=1)
    twin = reference_twin(system)
    before = {name: arr.copy() for name, arr in _signals(system).items()}
    for _ in range(10):
        twin.step()
    after = _signals(system)
    for name in _SIGNALS:
        assert after[name].tobytes() == before[name].tobytes(), name
    assert twin.physics.time_s > system.physics.time_s
