"""Unit tests for WGS-84 geodesy and the local NED projection."""

import math

import numpy as np
import pytest

from repro.mathutils import GeoPoint, GeodeticReference


@pytest.fixture
def valencia_ref():
    return GeodeticReference(GeoPoint(39.4699, -0.3763, 0.0))


def test_origin_maps_to_zero(valencia_ref):
    ned = valencia_ref.to_local(valencia_ref.origin)
    assert np.allclose(ned, np.zeros(3), atol=1e-9)


def test_altitude_maps_to_negative_down(valencia_ref):
    point = GeoPoint(39.4699, -0.3763, 15.0)
    ned = valencia_ref.to_local(point)
    assert math.isclose(ned[2], -15.0, abs_tol=1e-9)


def test_north_displacement_positive(valencia_ref):
    point = GeoPoint(39.4799, -0.3763, 0.0)  # ~1.1 km north
    ned = valencia_ref.to_local(point)
    assert ned[0] > 1000.0
    assert abs(ned[1]) < 1e-6


def test_east_displacement_positive(valencia_ref):
    point = GeoPoint(39.4699, -0.3663, 0.0)
    ned = valencia_ref.to_local(point)
    assert ned[1] > 800.0  # shrunk by cos(latitude)
    assert abs(ned[0]) < 1e-6


def test_round_trip(valencia_ref):
    ned = np.array([1234.5, -678.9, -42.0])
    point = valencia_ref.to_geodetic(ned)
    back = valencia_ref.to_local(point)
    assert np.allclose(back, ned, atol=1e-6)


def test_distance_symmetric(valencia_ref):
    a = GeoPoint(39.47, -0.37, 10.0)
    b = GeoPoint(39.48, -0.38, 20.0)
    assert math.isclose(
        valencia_ref.distance_m(a, b), valencia_ref.distance_m(b, a), rel_tol=1e-12
    )


def test_distance_zero_to_self(valencia_ref):
    a = GeoPoint(39.47, -0.37, 10.0)
    assert valencia_ref.distance_m(a, a) == 0.0


def test_one_degree_latitude_is_about_111km(valencia_ref):
    a = GeoPoint(39.0, -0.3763)
    b = GeoPoint(40.0, -0.3763)
    distance = valencia_ref.distance_m(a, b)
    assert 110_000 < distance < 112_500


@pytest.mark.parametrize("lat,lon", [(91.0, 0.0), (-91.0, 0.0), (0.0, 181.0), (0.0, -181.0)])
def test_invalid_coordinates_rejected(lat, lon):
    with pytest.raises(ValueError):
        GeoPoint(lat, lon)


def test_geopoint_is_frozen():
    point = GeoPoint(10.0, 20.0, 5.0)
    with pytest.raises(AttributeError):
        point.latitude_deg = 11.0
