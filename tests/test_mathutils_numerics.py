"""Unit tests for numeric helpers."""

import numpy as np
import pytest

from repro.mathutils import clamp, clamp_norm, is_finite_array, lerp


def test_clamp_inside_range():
    assert clamp(0.5, 0.0, 1.0) == 0.5


def test_clamp_at_bounds():
    assert clamp(-2.0, -1.0, 1.0) == -1.0
    assert clamp(2.0, -1.0, 1.0) == 1.0


def test_clamp_inverted_bounds_raises():
    with pytest.raises(ValueError):
        clamp(0.0, 1.0, -1.0)


def test_clamp_norm_within_bound_returns_same_object():
    v = np.array([1.0, 0.0, 0.0])
    assert clamp_norm(v, 2.0) is v


def test_clamp_norm_scales_down():
    v = np.array([3.0, 4.0, 0.0])
    out = clamp_norm(v, 1.0)
    assert np.isclose(np.linalg.norm(out), 1.0)
    # Direction preserved.
    assert np.allclose(out / np.linalg.norm(out), v / np.linalg.norm(v))


def test_clamp_norm_negative_bound_raises():
    with pytest.raises(ValueError):
        clamp_norm(np.array([1.0, 0.0]), -1.0)


def test_clamp_norm_zero_bound():
    out = clamp_norm(np.array([1.0, 1.0]), 0.0)
    assert np.allclose(out, 0.0)


def test_lerp_endpoints_and_midpoint():
    assert lerp(0.0, 10.0, 0.0) == 0.0
    assert lerp(0.0, 10.0, 1.0) == 10.0
    assert lerp(0.0, 10.0, 0.5) == 5.0


def test_lerp_clamps_t():
    assert lerp(0.0, 10.0, 2.0) == 10.0
    assert lerp(0.0, 10.0, -1.0) == 0.0


def test_is_finite_array():
    assert is_finite_array(np.array([1.0, 2.0]))
    assert not is_finite_array(np.array([1.0, np.nan]))
    assert not is_finite_array(np.array([np.inf, 0.0]))
