"""Property-based tests for fault behaviours and the injector."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.faults import FaultBehavior, FaultSpec, FaultTarget, FaultType
from repro.core.injector import SensorFaultInjector
from repro.sensors.imu import ImuSample

finite = st.floats(-100.0, 100.0, allow_nan=False)
triads = st.builds(lambda x, y, z: np.array([x, y, z]), finite, finite, finite)
ranges = st.floats(1.0, 1000.0, allow_nan=False)
seeds = st.integers(0, 2**31 - 1)
fault_types = st.sampled_from(list(FaultType))


@given(fault_types, ranges, seeds, triads, triads)
@settings(max_examples=200)
def test_output_always_within_sensor_range(fault_type, rng, seed, latch, value):
    """Every behaviour respects the physical saturation limits."""
    b = FaultBehavior(fault_type, rng, seed, noise_fraction=0.05)
    b.on_activation(np.clip(latch, -rng, rng))
    out = b.apply(np.clip(value, -rng, rng))
    assert np.all(np.abs(out) <= rng + 1e-9)


@given(ranges, seeds, triads)
def test_freeze_is_idempotent(rng, seed, latch):
    """FREEZE returns the latched value regardless of later inputs."""
    b = FaultBehavior(FaultType.FREEZE, rng, seed, noise_fraction=0.05)
    latched = np.clip(latch, -rng, rng)
    b.on_activation(latched)
    outs = [b.apply(np.random.default_rng(i).normal(size=3)) for i in range(5)]
    for out in outs:
        assert np.allclose(out, latched)


@given(ranges, seeds, triads)
def test_zeros_annihilates_everything(rng, seed, value):
    b = FaultBehavior(FaultType.ZEROS, rng, seed, noise_fraction=0.05)
    b.on_activation(value)
    assert np.allclose(b.apply(value), 0.0)


@given(ranges, seeds)
def test_min_max_exactly_at_saturation(rng, seed):
    lo = FaultBehavior(FaultType.MIN, rng, seed, noise_fraction=0.05)
    hi = FaultBehavior(FaultType.MAX, rng, seed, noise_fraction=0.05)
    lo.on_activation(np.zeros(3))
    hi.on_activation(np.zeros(3))
    assert np.allclose(lo.apply(np.zeros(3)), -rng)
    assert np.allclose(hi.apply(np.zeros(3)), rng)


@given(ranges, seeds, triads, triads)
def test_fixed_constant_across_samples(rng, seed, a, b_val):
    b = FaultBehavior(FaultType.FIXED, rng, seed, noise_fraction=0.05)
    b.on_activation(np.zeros(3))
    assert np.allclose(b.apply(a), b.apply(b_val))


@given(
    st.sampled_from(list(FaultType)),
    st.sampled_from(list(FaultTarget)),
    st.floats(0.0, 100.0),
    st.floats(0.1, 60.0),
    seeds,
)
@settings(max_examples=100)
def test_injector_window_exactness(fault_type, target, start, duration, seed):
    """Corruption happens exactly inside [start, start+duration)."""
    spec = FaultSpec(fault_type, target, start, duration, seed=seed)
    injector = SensorFaultInjector(spec, 150.0, 35.0)
    before = ImuSample(start - 0.01, np.array([1.0, 2.0, 3.0]), np.array([0.1, 0.2, 0.3]))
    assert injector.apply(before) is before
    after = ImuSample(
        start + duration + 0.01, np.array([1.0, 2.0, 3.0]), np.array([0.1, 0.2, 0.3])
    )
    injector.apply(ImuSample(start + duration / 2, np.zeros(3), np.zeros(3)))
    out_after = injector.apply(after)
    assert np.allclose(out_after.accel, after.accel)
    assert np.allclose(out_after.gyro, after.gyro)


@given(st.sampled_from(list(FaultTarget)), seeds)
def test_injector_respects_target(target, seed):
    spec = FaultSpec(FaultType.MAX, target, 0.0, 10.0, seed=seed)
    injector = SensorFaultInjector(spec, 150.0, 35.0)
    clean = ImuSample(5.0, np.array([1.0, 1.0, 1.0]), np.array([0.1, 0.1, 0.1]))
    out = injector.apply(clean)
    accel_changed = not np.allclose(out.accel, clean.accel)
    gyro_changed = not np.allclose(out.gyro, clean.gyro)
    assert accel_changed == target.affects_accel
    assert gyro_changed == target.affects_gyro


@given(seeds, st.floats(0.001, 0.5), st.floats(0.0, 0.5))
def test_noise_parameters_accepted_range(seed, noise_frac, bias_frac):
    spec = FaultSpec(
        FaultType.NOISE,
        FaultTarget.IMU,
        0.0,
        1.0,
        seed=seed,
        noise_fraction=noise_frac,
        noise_bias_fraction=bias_frac,
    )
    injector = SensorFaultInjector(spec, 150.0, 35.0)
    out = injector.apply(ImuSample(0.5, np.zeros(3), np.zeros(3)))
    assert np.all(np.abs(out.accel) <= 150.0)
    assert np.all(np.abs(out.gyro) <= 35.0)
