"""Unit tests for the control cascade: PID, position, attitude, rate, mixer."""

import math

import numpy as np
import pytest

from repro.control import (
    AttitudeController,
    Mixer,
    Pid,
    PidParams,
    PositionController,
    RateController,
)
from repro.mathutils import quat_from_euler, quat_identity, quat_to_euler


# ---------------------------------------------------------------------- PID


def test_pid_proportional_only():
    pid = Pid(PidParams(kp=2.0), dim=1)
    out = pid.update(np.array([1.5]), np.array([0.0]), 0.01)
    assert np.isclose(out[0], 3.0)


def test_pid_integral_accumulates():
    pid = Pid(PidParams(kp=0.0, ki=1.0), dim=1)
    for _ in range(100):
        out = pid.update(np.array([1.0]), np.array([0.0]), 0.01)
    assert np.isclose(out[0], 1.0, atol=0.02)


def test_pid_integral_limit():
    pid = Pid(PidParams(kp=0.0, ki=1.0, integral_limit=0.2), dim=1)
    for _ in range(1000):
        out = pid.update(np.array([1.0]), np.array([0.0]), 0.01)
    assert out[0] <= 0.2 + 1e-9


def test_pid_output_limit():
    pid = Pid(PidParams(kp=100.0, output_limit=1.0), dim=1)
    out = pid.update(np.array([5.0]), np.array([0.0]), 0.01)
    assert out[0] == 1.0


def test_pid_derivative_on_measurement_no_setpoint_kick():
    pid = Pid(PidParams(kp=0.0, kd=1.0), dim=1)
    pid.update(np.array([0.0]), np.array([0.0]), 0.01)
    # Setpoint step with constant measurement: derivative stays zero.
    out = pid.update(np.array([10.0]), np.array([0.0]), 0.01)
    assert abs(out[0]) < 1e-9


def test_pid_derivative_opposes_measurement_motion():
    pid = Pid(PidParams(kp=0.0, kd=1.0, derivative_filter_hz=1000.0), dim=1)
    pid.update(np.array([0.0]), np.array([0.0]), 0.01)
    out = pid.update(np.array([0.0]), np.array([1.0]), 0.01)
    assert out[0] < 0.0  # measurement rising -> negative derivative action


def test_pid_reset_clears_state():
    pid = Pid(PidParams(kp=1.0, ki=1.0, kd=1.0), dim=2)
    pid.update(np.ones(2), np.ones(2), 0.01)
    pid.reset()
    assert np.allclose(pid.integral, 0.0)


# ------------------------------------------------------------ Position loop


def test_velocity_setpoint_towards_target():
    ctrl = PositionController()
    vel = ctrl.velocity_setpoint(np.array([10.0, 0.0, 0.0]), np.zeros(3))
    assert vel[0] > 0.0
    assert abs(vel[1]) < 1e-9


def test_velocity_setpoint_respects_cruise_limit():
    ctrl = PositionController()
    vel = ctrl.velocity_setpoint(
        np.array([1000.0, 0.0, 0.0]), np.zeros(3), cruise_speed_m_s=3.0
    )
    assert np.linalg.norm(vel[:2]) <= 3.0 + 1e-9


def test_velocity_setpoint_vertical_limits():
    ctrl = PositionController()
    up = ctrl.velocity_setpoint(np.array([0.0, 0.0, -100.0]), np.zeros(3))
    down = ctrl.velocity_setpoint(np.array([0.0, 0.0, 100.0]), np.zeros(3))
    assert up[2] >= -ctrl.params.max_speed_up_m_s - 1e-9
    assert down[2] <= ctrl.params.max_speed_down_m_s + 1e-9


def test_hover_acceleration_gives_level_attitude_and_hover_thrust():
    ctrl = PositionController(mass_kg=1.5, max_total_thrust_n=32.0)
    collective, q_sp = ctrl.thrust_and_attitude(np.zeros(3), yaw_sp_rad=0.0)
    roll, pitch, yaw = quat_to_euler(q_sp)
    assert abs(roll) < 1e-6 and abs(pitch) < 1e-6
    assert math.isclose(collective, 1.5 * 9.80665 / 32.0, rel_tol=1e-6)


def test_forward_acceleration_pitches_nose_down():
    ctrl = PositionController()
    _, q_sp = ctrl.thrust_and_attitude(np.array([3.0, 0.0, 0.0]), yaw_sp_rad=0.0)
    _, pitch, _ = quat_to_euler(q_sp)
    assert pitch < -0.05  # FRD: nose-down pitch accelerates forward


def test_tilt_limited():
    ctrl = PositionController()
    _, q_sp = ctrl.thrust_and_attitude(np.array([100.0, 0.0, 0.0]), yaw_sp_rad=0.0)
    roll, pitch, _ = quat_to_euler(q_sp)
    tilt = math.sqrt(roll * roll + pitch * pitch)
    assert tilt <= ctrl.params.max_tilt_rad + 0.02


def test_collective_clamped():
    ctrl = PositionController()
    collective, _ = ctrl.thrust_and_attitude(np.array([0.0, 0.0, -1000.0]), 0.0)
    assert collective <= ctrl.params.max_thrust
    collective, _ = ctrl.thrust_and_attitude(np.array([0.0, 0.0, 1000.0]), 0.0)
    assert collective >= ctrl.params.min_thrust


def test_yaw_setpoint_carried_into_attitude():
    ctrl = PositionController()
    _, q_sp = ctrl.thrust_and_attitude(np.zeros(3), yaw_sp_rad=1.0)
    _, _, yaw = quat_to_euler(q_sp)
    assert math.isclose(yaw, 1.0, abs_tol=1e-6)


# ------------------------------------------------------------ Attitude loop


def test_attitude_no_error_no_rate():
    ctrl = AttitudeController()
    rate = ctrl.rate_setpoint(quat_identity(), quat_identity())
    assert np.allclose(rate, 0.0)


def test_attitude_roll_error_commands_roll_rate():
    ctrl = AttitudeController()
    q_sp = quat_from_euler(0.3, 0.0, 0.0)
    rate = ctrl.rate_setpoint(quat_identity(), q_sp)
    assert rate[0] > 0.0
    assert abs(rate[1]) < 1e-6


def test_attitude_rate_limits():
    ctrl = AttitudeController()
    q_sp = quat_from_euler(math.pi * 0.9, 0.0, 0.0)
    rate = ctrl.rate_setpoint(quat_identity(), q_sp)
    assert abs(rate[0]) <= ctrl.params.max_rate_rad_s + 1e-9


def test_attitude_confidence_derates_gain():
    ctrl = AttitudeController()
    q_sp = quat_from_euler(0.2, 0.0, 0.0)
    # rate_setpoint returns a reused work buffer; copy to compare calls.
    full = ctrl.rate_setpoint(quat_identity(), q_sp, confidence=1.0).copy()
    derated = ctrl.rate_setpoint(quat_identity(), q_sp, confidence=0.5)
    assert abs(derated[0]) < abs(full[0])


def test_attitude_invalid_confidence_rejected():
    ctrl = AttitudeController()
    with pytest.raises(ValueError):
        ctrl.rate_setpoint(quat_identity(), quat_identity(), confidence=0.0)
    with pytest.raises(ValueError):
        ctrl.rate_setpoint(quat_identity(), quat_identity(), confidence=1.5)


def test_attitude_takes_short_way_around():
    ctrl = AttitudeController()
    q_sp = quat_from_euler(0.1, 0.0, 0.0)
    rate_pos = ctrl.rate_setpoint(quat_identity(), q_sp)
    rate_neg = ctrl.rate_setpoint(quat_identity(), -q_sp)  # same rotation
    assert np.allclose(rate_pos, rate_neg, atol=1e-9)


# ---------------------------------------------------------------- Rate loop


def test_rate_controller_opposes_rate_error():
    ctrl = RateController()
    torque = ctrl.torque_command(np.array([1.0, 0.0, 0.0]), np.zeros(3), 0.01)
    assert torque[0] > 0.0
    torque = ctrl.torque_command(np.zeros(3), np.array([1.0, 0.0, 0.0]), 0.01)
    assert torque[0] < 0.0


def test_rate_controller_output_limited():
    ctrl = RateController()
    torque = ctrl.torque_command(np.array([100.0, 100.0, 100.0]), np.zeros(3), 0.01)
    assert np.all(np.abs(torque[:2]) <= 1.0 + 1e-9)
    assert abs(torque[2]) <= 0.4 + 1e-9


def test_rate_controller_reset():
    ctrl = RateController()
    for _ in range(100):
        ctrl.torque_command(np.ones(3), np.zeros(3), 0.01)
    ctrl.reset()
    out = ctrl.torque_command(np.zeros(3), np.zeros(3), 0.01)
    assert np.allclose(out, 0.0, atol=1e-9)


# -------------------------------------------------------------------- Mixer


def test_mixer_pure_collective_equal_commands():
    mixer = Mixer()
    cmds = mixer.mix(0.49, np.zeros(3))
    assert np.allclose(cmds, np.sqrt(0.49))


def test_mixer_roll_command_differential():
    mixer = Mixer()
    cmds = mixer.mix(0.5, np.array([0.5, 0.0, 0.0]))
    # Positive roll: left motors (1: back-left, 2: front-left) up,
    # right motors (0: front-right, 3: back-right) down.
    assert cmds[1] > cmds[0]
    assert cmds[2] > cmds[3]


def test_mixer_produces_commanded_total_thrust():
    mixer = Mixer()
    collective = 0.4
    cmds = mixer.mix(collective, np.zeros(3))
    # Quadratic rotor map: sum of command^2 * Tmax == collective * 4 * Tmax.
    assert math.isclose(float(np.sum(cmds**2)), 4.0 * collective, rel_tol=1e-9)


def test_mixer_desaturation_preserves_torque_sign():
    mixer = Mixer()
    cmds = mixer.mix(0.95, np.array([1.0, 0.0, 0.0]))
    assert np.all(cmds <= 1.0)
    assert cmds[1] > cmds[0]


def test_mixer_commands_in_unit_range():
    mixer = Mixer()
    for collective in (0.0, 0.3, 0.7, 1.0):
        cmds = mixer.mix(collective, np.array([1.0, -1.0, 1.0]))
        assert np.all(cmds >= 0.0) and np.all(cmds <= 1.0)
