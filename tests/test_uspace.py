"""Unit tests for the bubble formulas, violation monitor, and conflicts."""


import numpy as np
import pytest

from repro.missions import MissionPlan, Waypoint
from repro.missions.spec import DroneSpec
from repro.uspace import (
    BubbleMonitor,
    BubblePair,
    Conflict,
    ConflictDetector,
    OuterBubble,
    inner_bubble_radius,
)


# ---------------------------------------------------------------- Eq. 1


def test_inner_bubble_uses_larger_of_ds_dm():
    # D_s dominates.
    assert inner_bubble_radius(0.6, 1.5, 1.0) == pytest.approx(2.1)
    # D_m dominates.
    assert inner_bubble_radius(0.6, 1.5, 7.0) == pytest.approx(7.6)


def test_inner_bubble_rejects_negative():
    with pytest.raises(ValueError):
        inner_bubble_radius(-0.1, 1.0, 1.0)


# ------------------------------------------------------------- Eqs. 2-3


def test_outer_bubble_floor_is_inner_radius():
    bubble = OuterBubble(inner_radius_m=2.0)
    # Hovering: zero distance covered -> max(1, D) = 1 -> outer = inner.
    assert bubble.update(0.0, 0.0) == pytest.approx(2.0)


def test_outer_bubble_grows_with_anticipated_distance():
    bubble = OuterBubble(inner_radius_m=2.0)
    bubble.update(4.0, 4.0)  # seed: 4 m covered at 4 m/s
    radius = bubble.update(4.0, 4.0)  # steady state: D = 4
    assert radius == pytest.approx(2.0 * 4.0)


def test_outer_bubble_eq2_speed_ratio():
    bubble = OuterBubble(inner_radius_m=1.0)
    bubble.update(2.0, 2.0)  # seed
    radius = bubble.update(4.0, 2.0)  # speed doubled -> D = 2 * (4/2) = 4
    assert radius == pytest.approx(4.0)
    assert bubble.anticipated_distance_m == pytest.approx(4.0)


def test_outer_bubble_risk_factor_scales():
    plain = OuterBubble(inner_radius_m=2.0, risk_factor=1.0)
    risky = OuterBubble(inner_radius_m=2.0, risk_factor=2.0)
    plain.update(3.0, 3.0)
    risky.update(3.0, 3.0)
    assert risky.update(3.0, 3.0) == pytest.approx(2.0 * plain.update(3.0, 3.0))


def test_outer_bubble_rejects_r_below_one():
    with pytest.raises(ValueError):
        OuterBubble(inner_radius_m=2.0, risk_factor=0.5)


def test_outer_bubble_handles_standstill_gracefully():
    bubble = OuterBubble(inner_radius_m=2.0)
    bubble.update(3.0, 3.0)
    bubble.update(0.0, 1.0)  # slowed to a stop
    radius = bubble.update(3.0, 0.0)  # accelerating again from rest
    assert radius >= 2.0  # never below inner


def test_bubble_pair_validation():
    with pytest.raises(ValueError):
        BubblePair(inner_m=3.0, outer_m=2.0)


# ------------------------------------------------------------- Monitor


def make_plan():
    drone = DroneSpec(
        1, "UAV-01", cruise_speed_m_s=4.0, top_speed_m_s=5.0, mass_kg=1.5,
        dimension_m=0.6, safety_distance_m=1.5,
    )
    return MissionPlan(
        mission_id=1,
        drone=drone,
        waypoints=[Waypoint((0.0, 0.0, -15.0)), Waypoint((100.0, 0.0, -15.0))],
    )


def test_monitor_inner_radius_from_eq1():
    mon = BubbleMonitor(make_plan(), tracking_interval_s=1.0)
    # D_m = 5 m/s * 1 s = 5 > D_s = 1.5 -> inner = 0.6 + 5 = 5.6.
    assert mon.inner_radius_m == pytest.approx(5.6)


def test_monitor_counts_violations_beyond_radius():
    mon = BubbleMonitor(make_plan())
    # On the route: no violation.
    mon.maybe_track(0.0, np.array([50.0, 0.0, -15.0]), airspeed_m_s=4.0)
    # Far off the route: inner violation.
    mon.maybe_track(1.0, np.array([50.0, 30.0, -15.0]), airspeed_m_s=4.0)
    assert mon.counts.inner == 1
    assert mon.counts.tracking_instances == 2
    assert mon.counts.max_deviation_m == pytest.approx(30.0)


def test_monitor_respects_tracking_interval():
    mon = BubbleMonitor(make_plan(), tracking_interval_s=1.0)
    assert mon.maybe_track(0.0, np.zeros(3), 0.0) is not None
    assert mon.maybe_track(0.5, np.zeros(3), 0.0) is None
    assert mon.maybe_track(1.0, np.zeros(3), 0.0) is not None


def test_monitor_outer_violations_subset_of_inner():
    mon = BubbleMonitor(make_plan())
    rng = np.random.default_rng(0)
    for i in range(50):
        offset = rng.uniform(0.0, 40.0)
        mon.maybe_track(float(i), np.array([50.0, offset, -15.0]), airspeed_m_s=4.0)
    assert mon.counts.outer <= mon.counts.inner


def test_monitor_history_records_radii():
    mon = BubbleMonitor(make_plan())
    point = mon.maybe_track(0.0, np.array([0.0, 0.0, -15.0]), airspeed_m_s=4.0)
    assert point.inner_radius_m == mon.inner_radius_m
    assert point.outer_radius_m >= point.inner_radius_m


def test_monitor_validation():
    with pytest.raises(ValueError):
        BubbleMonitor(make_plan(), tracking_interval_s=0.0)


# ------------------------------------------------------------ Conflicts


def test_conflict_detected_on_overlap():
    det = ConflictDetector()
    conflicts = det.check_instant(
        0.0,
        positions={1: np.zeros(3), 2: np.array([3.0, 0.0, 0.0])},
        outer_radii={1: 2.0, 2: 2.0},
    )
    assert len(conflicts) == 1
    assert det.total_conflicts == 1


def test_no_conflict_when_separated():
    det = ConflictDetector()
    conflicts = det.check_instant(
        0.0,
        positions={1: np.zeros(3), 2: np.array([10.0, 0.0, 0.0])},
        outer_radii={1: 2.0, 2: 2.0},
    )
    assert conflicts == []


def test_sustained_overlap_counts_once():
    det = ConflictDetector()
    for t in range(5):
        det.check_instant(
            float(t),
            positions={1: np.zeros(3), 2: np.array([3.0, 0.0, 0.0])},
            outer_radii={1: 2.0, 2: 2.0},
        )
    assert det.total_conflicts == 1


def test_reentry_counts_again():
    det = ConflictDetector()
    near = {1: np.zeros(3), 2: np.array([3.0, 0.0, 0.0])}
    far = {1: np.zeros(3), 2: np.array([50.0, 0.0, 0.0])}
    radii = {1: 2.0, 2: 2.0}
    det.check_instant(0.0, near, radii)
    det.check_instant(1.0, far, radii)
    det.check_instant(2.0, near, radii)
    assert det.total_conflicts == 2


def test_conflict_severity():
    c = Conflict(0.0, 1, 2, distance_m=1.0, required_separation_m=4.0)
    assert c.severity == pytest.approx(0.75)
    zero = Conflict(0.0, 1, 2, distance_m=4.0, required_separation_m=4.0)
    assert zero.severity == 0.0
