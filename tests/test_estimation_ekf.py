"""Unit tests for the error-state EKF."""


import numpy as np
import pytest

from repro.estimation import Ekf, EkfParams
from repro.sensors.gps import GpsSample
from repro.sensors.imu import ImuSample


GRAVITY = 9.80665


def static_imu(t):
    """IMU sample of a vehicle at rest (specific force = -g in body z)."""
    return ImuSample(t, np.array([0.0, 0.0, -GRAVITY]), np.zeros(3))


def gps_fix(t, pos=(0.0, 0.0, 0.0), vel=(0.0, 0.0, 0.0)):
    return GpsSample(
        time_s=t,
        position_ned=np.array(pos, dtype=float),
        velocity_ned=np.array(vel, dtype=float),
        horizontal_accuracy_m=0.4,
        vertical_accuracy_m=0.8,
    )


def test_static_prediction_stays_put():
    ekf = Ekf()
    for i in range(500):
        ekf.predict(static_imu(i * 0.01), 0.01)
    assert np.linalg.norm(ekf.velocity_ned) < 0.01
    assert np.linalg.norm(ekf.position_ned) < 0.01


def test_covariance_grows_without_aiding():
    ekf = Ekf()
    p0 = ekf.covariance[6, 6]
    for i in range(200):
        ekf.predict(static_imu(i * 0.01), 0.01)
    assert ekf.covariance[6, 6] > p0


def test_gps_updates_bound_position_error():
    ekf = Ekf()
    # A slightly biased accel would drift the filter; GPS pins it down.
    for i in range(2000):
        t = i * 0.01
        imu = ImuSample(t, np.array([0.05, 0.0, -GRAVITY]), np.zeros(3))
        ekf.predict(imu, 0.01)
        if i % 20 == 0:
            ekf.update_gps(gps_fix(t))
    assert np.linalg.norm(ekf.position_ned) < 1.0
    assert np.linalg.norm(ekf.velocity_ned) < 0.5


def test_accel_z_bias_estimated():
    """Vertical accel bias is observable against GPS (horizontal bias is
    ambiguous with tilt without manoeuvres, so only z is asserted)."""
    ekf = Ekf()
    bias = np.array([0.0, 0.0, 0.3])
    rng = np.random.default_rng(0)
    for i in range(4000):
        t = i * 0.01
        accel = np.array([0.0, 0.0, -GRAVITY]) + bias + rng.normal(0, 0.02, 3)
        imu = ImuSample(t, accel, rng.normal(0, 0.002, 3))
        ekf.predict(imu, 0.01)
        if i % 20 == 0:
            ekf.update_gps(gps_fix(t))
    assert abs(ekf.accel_bias[2] - 0.3) < 0.12


def test_baro_corrects_altitude():
    ekf = Ekf()
    ekf.position_ned[2] = -5.0  # filter believes 5 m altitude...
    ekf.covariance[8, 8] = 25.0  # ...and knows its height is uncertain
    for _ in range(50):
        ekf.predict(static_imu(ekf.time_s + 0.01), 0.01)
        ekf.update_baro(0.0)  # baro says ground level
    assert abs(ekf.position_ned[2]) < 1.0


def test_baro_outlier_gated_when_confident():
    ekf = Ekf()
    for i in range(100):
        ekf.predict(static_imu(i * 0.01), 0.01)
        ekf.update_baro(0.0)
    ekf.update_baro(50.0)  # absurd jump
    assert abs(ekf.position_ned[2]) < 1.0


def test_mag_corrects_yaw():
    ekf = Ekf(initial_yaw_rad=0.0)
    for _ in range(200):
        ekf.predict(static_imu(ekf.time_s + 0.01), 0.01)
        ekf.update_mag_yaw(0.3)
    assert abs(ekf.state.yaw_rad - 0.3) < 0.05


def test_innovation_gating_rejects_outlier():
    ekf = Ekf()
    for i in range(100):
        ekf.predict(static_imu(i * 0.01), 0.01)
        if i % 20 == 0:
            ekf.update_gps(gps_fix(i * 0.01))
    before = ekf.position_ned.copy()
    ekf.update_gps(gps_fix(1.0, pos=(500.0, 0.0, 0.0)))
    # Outlier rejected: position barely moves.
    assert np.linalg.norm(ekf.position_ned - before) < 1.0
    assert ekf.monitor.channels["gps_pos_0"].total_rejections >= 1


def test_fusion_timeout_reset_recovers_divergence():
    ekf = Ekf()
    ekf.velocity_ned[:] = [30.0, 0.0, 0.0]  # forcibly diverged
    for i in range(60):
        t = i * 0.01
        ekf.predict(static_imu(t), 0.01)
        if i % 4 == 0:  # 25 Hz GPS to exercise the streak quickly
            ekf.update_gps(gps_fix(t))
    assert np.linalg.norm(ekf.velocity_ned) < 2.0


def test_gyro_flatline_inflates_attitude_uncertainty():
    ekf = Ekf()
    sigma0 = ekf.attitude_std_rad
    frozen = np.zeros(3)
    for i in range(100):
        imu = ImuSample(i * 0.01, np.array([0.0, 0.0, -GRAVITY]), frozen)
        ekf.predict(imu, 0.01)
    assert ekf.attitude_std_rad > sigma0 * 2


def test_full_imu_flatline_latches_stale_flag():
    ekf = Ekf()
    frozen_f = np.array([0.0, 0.0, -GRAVITY])
    frozen_w = np.zeros(3)
    for i in range(60):
        ekf.predict(ImuSample(i * 0.01, frozen_f, frozen_w), 0.01)
    assert ekf.imu_stale_latched
    # Latched: stays set even after live data resumes.
    rng = np.random.default_rng(0)
    for i in range(60, 120):
        live = ImuSample(
            i * 0.01, frozen_f + rng.normal(0, 0.01, 3), rng.normal(0, 0.001, 3)
        )
        ekf.predict(live, 0.01)
    assert ekf.imu_stale_latched


def test_live_noise_never_latches_stale():
    ekf = Ekf()
    rng = np.random.default_rng(1)
    for i in range(200):
        imu = ImuSample(
            i * 0.01,
            np.array([0.0, 0.0, -GRAVITY]) + rng.normal(0, 0.05, 3),
            rng.normal(0, 0.003, 3),
        )
        ekf.predict(imu, 0.01)
    assert not ekf.imu_stale_latched


def test_gravity_tilt_aiding_levels_filter():
    ekf = Ekf()
    # Corrupt the attitude estimate by 15 degrees roll.
    from repro.mathutils import quat_from_euler, quat_multiply

    ekf.quaternion = quat_multiply(ekf.quaternion, quat_from_euler(0.26, 0.0, 0.0))
    for i in range(400):
        imu = static_imu(i * 0.01)
        ekf.predict(imu, 0.01)
        if i % 5 == 0:
            ekf.update_gravity_tilt(imu.accel, imu.gyro, dt=0.05)
    roll, pitch, _ = [abs(a) for a in np.array(quat_to_euler_tuple(ekf.quaternion))]
    assert roll < 0.05 and pitch < 0.05


def quat_to_euler_tuple(q):
    from repro.mathutils import quat_to_euler

    return quat_to_euler(q)


def test_gravity_aiding_skipped_when_dynamic():
    ekf = Ekf()
    q0 = ekf.quaternion.copy()
    # High measured rates: quasi-static check must block the update.
    ekf.update_gravity_tilt(np.array([2.0, 0.0, -GRAVITY]), np.array([1.0, 0.0, 0.0]))
    assert np.allclose(ekf.quaternion, q0)


def test_bias_clamped_to_limits():
    params = EkfParams(accel_bias_limit=0.5, gyro_bias_limit=0.1)
    ekf = Ekf(params)
    ekf._inject_error(np.concatenate([np.zeros(9), np.full(3, 10.0), np.full(3, 10.0)]))
    assert np.all(np.abs(ekf.gyro_bias) <= 0.1 + 1e-12)
    assert np.all(np.abs(ekf.accel_bias) <= 0.5 + 1e-12)


def test_predict_rejects_bad_dt():
    with pytest.raises(ValueError):
        Ekf().predict(static_imu(0.0), 0.0)


def test_attitude_confidence_bounds():
    ekf = Ekf()
    assert 0.12 <= ekf.attitude_confidence <= 1.0
    ekf.covariance[0, 0] = 4.0
    assert ekf.attitude_confidence == pytest.approx(max(0.12, 0.06 / 2.0))
