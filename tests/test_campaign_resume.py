"""Checkpoint/resume tests: the JSONL journal, fingerprint guarding,
kill-then-resume bit-identity, and serial/parallel equivalence.
"""

import dataclasses
import json

import pytest

from repro.core.campaign import CampaignConfig, run_campaign, run_experiment
from repro.core.experiments import build_experiment_matrix
from repro.core.faults import FaultTarget, FaultType
from repro.core.io import CampaignJournal, JournalMismatchError
from repro.core.resilience import campaign_fingerprint
from repro.core.results import ExperimentResult, harness_error_result
from repro.flightstack.commander import MissionOutcome

CONFIG = CampaignConfig(
    scale=0.1, mission_ids=(2,), durations_s=(2.0,), injection_time_s=15.0
)


def small_specs():
    """1 gold + 4 gyro faults on mission 2 (experiment ids 0..4)."""
    return build_experiment_matrix(
        mission_ids=[2],
        durations_s=(2.0,),
        injection_time_s=15.0,
        fault_types=(FaultType.ZEROS, FaultType.MIN, FaultType.MAX, FaultType.NOISE),
        targets=(FaultTarget.GYRO,),
        include_gold=True,
    )


def fake_runner(spec, config):
    """Deterministic synthetic result — no simulator, instant."""
    return ExperimentResult(
        experiment_id=spec.experiment_id,
        mission_id=spec.mission_id,
        fault_label=spec.label,
        fault_type=spec.fault.fault_type.value if spec.fault else None,
        target=spec.fault.target.value if spec.fault else None,
        injection_duration_s=spec.duration_s,
        outcome=MissionOutcome.COMPLETED,
        flight_duration_s=100.0 + spec.experiment_id,
        distance_km=1.0,
        inner_violations=spec.experiment_id,
        outer_violations=0,
        max_deviation_m=0.5,
    )


KILL_STATE = {"completed": 0, "armed": False}


def killing_runner(spec, config):
    """Completes two cases, then simulates a mid-campaign kill."""
    if KILL_STATE["armed"] and KILL_STATE["completed"] >= 2:
        raise KeyboardInterrupt("simulated kill")
    KILL_STATE["completed"] += 1
    return fake_runner(spec, config)


def must_not_run(spec, config):
    raise AssertionError("runner must not be invoked on a complete checkpoint")


SMOKE_STATE = {"completed": 0, "armed": False}


def smoke_killing_runner(spec, config):
    """Real-simulator runner that dies after completing one case."""
    if SMOKE_STATE["armed"] and SMOKE_STATE["completed"] >= 1:
        raise KeyboardInterrupt("simulated kill")
    result = run_experiment(spec, config)
    SMOKE_STATE["completed"] += 1
    return result


# -------------------------------------------------------------- journal


def test_journal_round_trip(tmp_path):
    specs = small_specs()
    journal = CampaignJournal(tmp_path / "run.jsonl")
    journal.create(
        fingerprint="abc", scale=0.1, injection_time_s=15.0, total_cases=5
    )
    journal.append(fake_runner(specs[0], CONFIG))
    journal.append(harness_error_result(specs[1], RuntimeError("gone"), 2))
    journal.close()

    header, results = journal.load(expected_fingerprint="abc")
    assert header["total_cases"] == 5
    assert header["complete"] is False
    assert set(results) == {0, 1}
    assert results[0] == fake_runner(specs[0], CONFIG)
    assert results[1].is_harness_error
    assert results[1].attempts == 2


def test_journal_tolerates_torn_final_append(tmp_path):
    specs = small_specs()
    path = tmp_path / "run.jsonl"
    journal = CampaignJournal(path)
    journal.create(fingerprint="abc", scale=0.1, injection_time_s=15.0, total_cases=5)
    journal.append(fake_runner(specs[0], CONFIG))
    journal.close()
    # Simulate a crash mid-append: a half-written trailing line.
    with open(path, "a") as handle:
        handle.write('{"kind": "result", "experiment_id": 1, "mis')
    _, results = journal.load()
    assert set(results) == {0}


def test_journal_rejects_corrupt_middle_record(tmp_path):
    specs = small_specs()
    path = tmp_path / "run.jsonl"
    journal = CampaignJournal(path)
    journal.create(fingerprint="abc", scale=0.1, injection_time_s=15.0, total_cases=5)
    journal.close()
    lines = path.read_text().splitlines()
    lines.append("not json at all")
    lines.append(
        json.dumps(
            {"kind": "result", **_as_dict(fake_runner(specs[0], CONFIG))}
        )
    )
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(ValueError, match="corrupt record"):
        journal.load()


def _as_dict(result):
    from repro.core.io import _result_to_dict

    return _result_to_dict(result)


def test_journal_fingerprint_guard(tmp_path):
    journal = CampaignJournal(tmp_path / "run.jsonl")
    journal.create(fingerprint="abc", scale=0.1, injection_time_s=15.0, total_cases=5)
    journal.close()
    with pytest.raises(JournalMismatchError):
        journal.load(expected_fingerprint="different")


def test_journal_finalize_compacts_and_marks_complete(tmp_path):
    specs = small_specs()
    journal = CampaignJournal(tmp_path / "run.jsonl")
    journal.create(fingerprint="abc", scale=0.1, injection_time_s=15.0, total_cases=2)
    # Duplicate record for id 0 (as a crash/resume cycle can produce).
    journal.append(fake_runner(specs[0], CONFIG))
    journal.append(fake_runner(specs[0], CONFIG))
    journal.append(fake_runner(specs[1], CONFIG))
    journal.finalize()
    lines = (tmp_path / "run.jsonl").read_text().splitlines()
    assert len(lines) == 3  # header + exactly one record per case
    header, results = journal.load()
    assert header["complete"] is True
    assert set(results) == {0, 1}


# ------------------------------------------------------ checkpointing


def test_checkpoint_written_and_complete(tmp_path):
    specs = small_specs()
    path = tmp_path / "run.jsonl"
    campaign = run_campaign(
        CONFIG, specs=specs, runner=fake_runner, checkpoint_path=str(path)
    )
    assert len(campaign.results) == 5
    header, results = CampaignJournal(path).load(
        expected_fingerprint=campaign_fingerprint(CONFIG, specs)
    )
    assert header["complete"] is True
    assert set(results) == {s.experiment_id for s in specs}


def test_resume_from_complete_checkpoint_skips_all_cases(tmp_path):
    specs = small_specs()
    path = tmp_path / "run.jsonl"
    first = run_campaign(
        CONFIG, specs=specs, runner=fake_runner, checkpoint_path=str(path)
    )
    resumed = run_campaign(
        CONFIG,
        specs=specs,
        runner=must_not_run,
        checkpoint_path=str(path),
        resume=True,
    )
    assert resumed.results == first.results


def test_resume_refuses_mismatched_config(tmp_path):
    specs = small_specs()
    path = tmp_path / "run.jsonl"
    run_campaign(CONFIG, specs=specs, runner=fake_runner, checkpoint_path=str(path))
    other = dataclasses.replace(CONFIG, base_seed=99)
    other_specs = build_experiment_matrix(
        mission_ids=[2],
        durations_s=(2.0,),
        injection_time_s=15.0,
        fault_types=(FaultType.ZEROS, FaultType.MIN, FaultType.MAX, FaultType.NOISE),
        targets=(FaultTarget.GYRO,),
        base_seed=99,
        include_gold=True,
    )
    with pytest.raises(JournalMismatchError):
        run_campaign(
            other,
            specs=other_specs,
            runner=must_not_run,
            checkpoint_path=str(path),
            resume=True,
        )


def test_resume_reruns_previous_harness_errors(tmp_path):
    specs = small_specs()
    path = tmp_path / "run.jsonl"
    journal = CampaignJournal(path)
    journal.create(
        fingerprint=campaign_fingerprint(CONFIG, specs),
        scale=CONFIG.scale,
        injection_time_s=CONFIG.effective_injection_time_s,
        total_cases=len(specs),
    )
    journal.append(fake_runner(specs[0], CONFIG))
    journal.append(harness_error_result(specs[1], RuntimeError("transient"), 1))
    journal.close()
    resumed = run_campaign(
        CONFIG,
        specs=specs,
        runner=fake_runner,
        checkpoint_path=str(path),
        resume=True,
    )
    # The harness-errored case got a second chance and now succeeded.
    assert not resumed.harness_errors
    assert resumed.results == [fake_runner(s, CONFIG) for s in specs]


def test_kill_then_resume_bit_identical(tmp_path):
    specs = small_specs()
    path = tmp_path / "run.jsonl"

    uninterrupted = run_campaign(CONFIG, specs=specs, runner=fake_runner)

    KILL_STATE.update(completed=0, armed=True)
    with pytest.raises(KeyboardInterrupt):
        run_campaign(
            CONFIG, specs=specs, runner=killing_runner, checkpoint_path=str(path)
        )
    KILL_STATE["armed"] = False

    # The journal durably holds exactly the cases that finished.
    _, partial = CampaignJournal(path).load()
    assert len(partial) == 2

    # Resume — with a process pool, to prove the fingerprint ignores
    # worker count — and compare against the uninterrupted run.
    resumed = run_campaign(
        dataclasses.replace(CONFIG, workers=2),
        specs=specs,
        runner=fake_runner,
        checkpoint_path=str(path),
        resume=True,
    )
    assert resumed.results == uninterrupted.results
    assert resumed.specs == uninterrupted.specs
    assert resumed.scale == uninterrupted.scale
    assert resumed.injection_time_s == uninterrupted.injection_time_s


def test_resume_without_checkpoint_restarts(tmp_path):
    """resume=False on an existing journal starts the campaign over."""
    specs = small_specs()
    path = tmp_path / "run.jsonl"
    run_campaign(CONFIG, specs=specs, runner=fake_runner, checkpoint_path=str(path))
    campaign = run_campaign(
        CONFIG, specs=specs, runner=fake_runner, checkpoint_path=str(path)
    )
    assert len(campaign.results) == len(specs)


# ------------------------------------------- smoke test (real simulator)


def tiny_real_specs():
    """Gold + Gyro Zeros + Gyro Min on mission 2 — three real sim runs."""
    return build_experiment_matrix(
        mission_ids=[2],
        durations_s=(2.0,),
        injection_time_s=15.0,
        fault_types=(FaultType.ZEROS, FaultType.MIN),
        targets=(FaultTarget.GYRO,),
        include_gold=True,
    )


def test_smoke_kill_midway_then_resume_matches_uninterrupted(tmp_path):
    """Tier-1 smoke: run a tiny real campaign, kill it after one case,
    resume from the journal, and require the merged result to be
    bit-identical to an uninterrupted run."""
    specs = tiny_real_specs()
    path = tmp_path / "smoke.jsonl"

    uninterrupted = run_campaign(CONFIG, specs=specs)

    SMOKE_STATE.update(completed=0, armed=True)
    with pytest.raises(KeyboardInterrupt):
        run_campaign(
            CONFIG,
            specs=specs,
            runner=smoke_killing_runner,
            checkpoint_path=str(path),
        )
    SMOKE_STATE["armed"] = False

    _, partial = CampaignJournal(path).load()
    assert 1 <= len(partial) < len(specs)

    resumed = run_campaign(
        CONFIG, specs=specs, checkpoint_path=str(path), resume=True
    )
    assert resumed.results == uninterrupted.results


# ------------------------------------- serial / parallel equivalence


def test_serial_and_parallel_campaigns_bit_identical():
    """run_campaign(workers=1) and run_campaign(workers=2) must agree on
    the entire CampaignResult, not just individual rows (the module
    docstring promises parallelism cannot change results)."""
    specs = tiny_real_specs()
    serial = run_campaign(dataclasses.replace(CONFIG, workers=1), specs=specs)
    parallel = run_campaign(dataclasses.replace(CONFIG, workers=2), specs=specs)
    assert serial.results == parallel.results
    assert serial.specs == parallel.specs
    assert serial.scale == parallel.scale
    assert serial.injection_time_s == parallel.injection_time_s
