"""Unit tests for rigid-body dynamics and ground contact."""

import math

import numpy as np
import pytest

from repro.mathutils import quat_from_euler
from repro.sim import (
    AirframeParams,
    Environment,
    QuadrotorAirframe,
    QuadrotorPhysics,
    RigidBodyState,
    WindModel,
)


def make_physics(**state_kwargs):
    env = Environment(wind=WindModel(gust_sigma_m_s=0.0))
    state = RigidBodyState(**state_kwargs)
    return QuadrotorPhysics(QuadrotorAirframe(), env, state)


def hover_command(physics):
    return np.full(4, physics.airframe.params.hover_thrust_fraction)


def test_free_fall_without_thrust():
    physics = make_physics(position_ned=np.array([0.0, 0.0, -100.0]))
    for _ in range(100):
        physics.step(np.zeros(4), dt=0.01)
    # After 1 s of free fall: v ~ g*t (slightly less due to drag).
    assert 8.0 < physics.state.velocity_ned[2] <= 9.81


def test_hover_holds_altitude():
    physics = make_physics(position_ned=np.array([0.0, 0.0, -50.0]))
    # Pre-spin motors to hover.
    cmd = hover_command(physics)
    for _ in range(500):
        physics.step(cmd, dt=0.01)
    assert abs(physics.state.altitude_m - 50.0) < 2.0
    assert abs(physics.state.velocity_ned[2]) < 0.5


def test_tilt_produces_horizontal_acceleration():
    physics = make_physics(
        position_ned=np.array([0.0, 0.0, -50.0]),
        quaternion=quat_from_euler(0.0, 0.2, 0.0),  # pitch up -> accelerate forward? (FRD: +pitch tilts nose up)
    )
    cmd = hover_command(physics)
    for _ in range(100):
        physics.step(cmd, dt=0.01)
    # Nose-up pitch tilts thrust backward: negative north acceleration.
    assert physics.state.velocity_ned[0] < -0.1


def test_asymmetric_thrust_rolls():
    physics = make_physics(position_ned=np.array([0.0, 0.0, -50.0]))
    base = physics.airframe.params.hover_thrust_fraction
    # Motors 1 (back-left) and 2 (front-left) are on the left (y < 0).
    cmd = np.array([base + 0.1, base - 0.1, base - 0.1, base + 0.1])
    physics.step(cmd, dt=0.2)
    physics.step(cmd, dt=0.2)
    # More thrust on the right side -> roll left (negative roll rate).
    assert physics.state.angular_rate_body[0] < 0.0


def test_ground_contact_records_impact():
    physics = make_physics(
        position_ned=np.array([0.0, 0.0, -5.0]),
        velocity_ned=np.array([0.0, 0.0, 4.0]),
    )
    for _ in range(200):
        physics.step(np.zeros(4), dt=0.01)
        if physics.last_contact:
            break
    assert physics.last_contact is not None
    assert physics.last_contact.impact_speed_m_s > 4.0
    assert physics.on_ground


def test_ground_clamps_position_and_velocity():
    physics = make_physics(
        position_ned=np.array([0.0, 0.0, -1.0]),
        velocity_ned=np.array([2.0, 0.0, 3.0]),
    )
    for _ in range(300):
        physics.step(np.zeros(4), dt=0.01)
    assert physics.state.position_ned[2] == 0.0
    assert abs(physics.state.velocity_ned[0]) < 0.05  # friction bled it off
    assert physics.state.velocity_ned[2] <= 0.0


def test_specific_force_at_rest_is_minus_gravity():
    physics = make_physics()
    physics.step(np.zeros(4), dt=0.01)
    # On the ground with no thrust, the body feels the ground reaction:
    # specific force ~ -g in body z (FRD: up is -z).
    assert physics.specific_force_body[2] < 0.0


def test_invalid_dt_rejected():
    physics = make_physics()
    with pytest.raises(ValueError):
        physics.step(np.zeros(4), dt=0.0)


def test_speed_clamped():
    physics = make_physics(
        position_ned=np.array([0.0, 0.0, -10000.0]),
        velocity_ned=np.array([0.0, 0.0, 100.0]),
    )
    physics.step(np.zeros(4), dt=0.01)
    assert physics.state.speed_m_s <= 60.0 + 1e-6


def test_state_tilt_property():
    level = RigidBodyState()
    assert level.tilt_rad < 1e-9
    tilted = RigidBodyState(quaternion=quat_from_euler(math.radians(30), 0.0, 0.0))
    assert math.isclose(math.degrees(tilted.tilt_rad), 30.0, rel_tol=1e-6)


def test_state_copy_is_deep():
    s = RigidBodyState()
    c = s.copy()
    c.position_ned[0] = 99.0
    assert s.position_ned[0] == 0.0


def test_airframe_params_validation():
    with pytest.raises(ValueError):
        AirframeParams(mass_kg=0.0)
    with pytest.raises(ValueError):
        AirframeParams(inertia_diag=(0.0, 0.1, 0.1))
    with pytest.raises(ValueError):
        AirframeParams(arm_length_m=-0.1)


def test_hover_thrust_fraction_balances_weight():
    params = AirframeParams(mass_kg=1.5)
    frac = params.hover_thrust_fraction
    total_thrust = 4.0 * params.motor.max_thrust_n * frac**2
    assert math.isclose(total_thrust, 1.5 * 9.80665, rel_tol=1e-9)
