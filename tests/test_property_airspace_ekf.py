"""Property tests: airspace geometry and EKF numerical invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimation import Ekf
from repro.sensors.gps import GpsSample
from repro.sensors.imu import ImuSample
from repro.uspace.airspace import OperatingArea

coords = st.floats(-10_000.0, 10_000.0, allow_nan=False)
positions = st.builds(lambda n, e, d: np.array([n, e, d]), coords, coords, coords)


@given(positions)
def test_violation_distance_zero_iff_contained(pos):
    area = OperatingArea(half_extent_m=2500.0, ceiling_m=18.29)
    inside = area.contains(pos)
    distance = area.violation_distance_m(pos)
    assert (distance == 0.0) == inside
    assert distance >= 0.0


@given(positions, st.floats(10.0, 5000.0), st.floats(5.0, 100.0))
def test_bigger_areas_contain_more(pos, half_extent, ceiling):
    small = OperatingArea(half_extent_m=half_extent, ceiling_m=ceiling)
    big = OperatingArea(half_extent_m=half_extent * 2, ceiling_m=ceiling * 2)
    if small.contains(pos):
        assert big.contains(pos)
    assert big.violation_distance_m(pos) <= small.violation_distance_m(pos) + 1e-9


accel_vals = st.floats(-150.0, 150.0, allow_nan=False)
gyro_vals = st.floats(-30.0, 30.0, allow_nan=False)


@given(
    st.lists(
        st.tuples(
            st.builds(lambda x, y, z: np.array([x, y, z]), accel_vals, accel_vals, accel_vals),
            st.builds(lambda x, y, z: np.array([x, y, z]), gyro_vals, gyro_vals, gyro_vals),
        ),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=30, deadline=None)
def test_ekf_stays_finite_under_arbitrary_imu(stream):
    """No IMU input sequence (however corrupted) may produce NaN/inf
    state or break covariance symmetry — the filter must stay numerically
    alive through any fault the injector can produce."""
    ekf = Ekf()
    t = 0.0
    for accel, gyro in stream:
        t += 0.01
        ekf.predict(ImuSample(t, accel, gyro), 0.01)
    fix = GpsSample(t, np.zeros(3), np.zeros(3), 0.4, 0.8)
    ekf.update_gps(fix)
    ekf.update_baro(0.0)
    ekf.update_mag_yaw(0.0)

    assert np.all(np.isfinite(ekf.quaternion))
    assert np.all(np.isfinite(ekf.velocity_ned))
    assert np.all(np.isfinite(ekf.position_ned))
    assert np.all(np.isfinite(ekf.covariance))
    # Unit quaternion and (near-)symmetric covariance.
    assert abs(float(ekf.quaternion @ ekf.quaternion) - 1.0) < 1e-6
    asym = np.max(np.abs(ekf.covariance - ekf.covariance.T))
    assert asym < 1e-6
    # Diagonal stays non-negative (it is a covariance).
    assert np.all(np.diag(ekf.covariance) >= -1e-9)
