"""Unit tests for the detection-latency records and rendering."""

from repro.core.detection import DetectionRecord, render_detection_report


def test_record_detected_property():
    hit = DetectionRecord("Gyro Min", "crashed", 0.6, None, 1.2)
    miss = DetectionRecord("Acc Freeze", "completed", None, None, None)
    assert hit.detected
    assert not miss.detected


def test_render_report_columns():
    records = [
        DetectionRecord("Gyro Min", "crashed", 0.61, None, 1.25),
        DetectionRecord("Gyro Random", "failsafe", 0.55, 2.51, None),
        DetectionRecord("Acc Freeze", "completed", None, None, None),
    ]
    text = render_detection_report(records, "timeline")
    lines = text.split("\n")
    assert lines[0] == "timeline"
    assert "Gyro Min" in text and "Gyro Random" in text
    assert "0.61" in text and "2.51" in text
    # Missing events render as '-'.
    freeze_line = next(l for l in lines if "Acc Freeze" in l)
    assert freeze_line.count("-") >= 3
