"""Unit tests for brokers, tracker, and the flight recorder."""

import numpy as np
import pytest

from repro.telemetry import (
    Broker,
    CoreBroker,
    EdgeBroker,
    FlightRecorder,
    TrackMessage,
    Tracker,
)
from repro.telemetry.messages import FlightEvent


def track(drone_id=1, t=0.0):
    return TrackMessage(
        drone_id=drone_id,
        time_s=t,
        position_ned=(1.0, 2.0, -15.0),
        velocity_ned=(3.0, 0.0, 0.0),
        airspeed_m_s=3.0,
    )


# ------------------------------------------------------------------ Broker


def test_exact_topic_delivery():
    broker = Broker("test")
    got = []
    broker.subscribe("track/1", lambda topic, msg: got.append((topic, msg)))
    delivered = broker.publish("track/1", "hello")
    assert delivered == 1
    assert got == [("track/1", "hello")]


def test_wildcard_subscription():
    broker = Broker("test")
    got = []
    broker.subscribe("track/*", lambda topic, msg: got.append(topic))
    broker.publish("track/1", "a")
    broker.publish("track/2", "b")
    broker.publish("event/1", "c")
    assert got == ["track/1", "track/2"]


def test_no_subscribers_is_fine():
    broker = Broker("test")
    assert broker.publish("nobody/listens", "x") == 0


def test_subscriber_error_isolated():
    broker = Broker("test")
    got = []

    def bad(topic, msg):
        raise RuntimeError("boom")

    broker.subscribe("t", bad)
    broker.subscribe("t", lambda topic, msg: got.append(msg))
    delivered = broker.publish("t", 42)
    assert delivered == 1  # the healthy subscriber still got it
    assert got == [42]
    assert len(broker.delivery_errors) == 1
    assert isinstance(broker.delivery_errors[0].error, RuntimeError)


def test_edge_broker_forwards_upstream():
    core = CoreBroker()
    edge = EdgeBroker("edge-1", upstream=core)
    got_core, got_edge = [], []
    core.subscribe("track/1", lambda t, m: got_core.append(m))
    edge.subscribe("track/1", lambda t, m: got_edge.append(m))
    edge.publish("track/1", "msg")
    assert got_core == ["msg"]
    assert got_edge == ["msg"]


def test_broker_tree_two_edges():
    core = CoreBroker()
    tracker = Tracker(core)
    edge_a = EdgeBroker("edge-a", upstream=core)
    edge_b = EdgeBroker("edge-b", upstream=core)
    edge_a.publish("track/1", track(1, 0.0))
    edge_b.publish("track/2", track(2, 0.0))
    assert tracker.track_count(1) == 1
    assert tracker.track_count(2) == 1


# ----------------------------------------------------------------- Tracker


def test_tracker_stores_history_in_order():
    core = CoreBroker()
    tracker = Tracker(core)
    core.publish("track/1", track(1, 0.0))
    core.publish("track/1", track(1, 1.0))
    assert tracker.track_count(1) == 2
    assert tracker.latest(1).time_s == 1.0


def test_tracker_events():
    core = CoreBroker()
    tracker = Tracker(core)
    core.publish("event/1", FlightEvent(1, 5.0, "failsafe", "gyro_rate"))
    assert tracker.events[1][0].kind == "failsafe"


def test_tracker_latest_unknown_drone():
    tracker = Tracker(CoreBroker())
    assert tracker.latest(99) is None
    assert tracker.track_count(99) == 0


def test_tracker_rejects_wrong_message_type():
    core = CoreBroker()
    tracker = Tracker(core)
    core.publish("track/1", "not a track")
    # The type error is captured as a delivery error, not raised.
    assert len(core.delivery_errors) == 1


def test_track_message_arrays():
    msg = track()
    assert np.allclose(msg.position_array, [1.0, 2.0, -15.0])
    assert np.allclose(msg.velocity_array, [3.0, 0.0, 0.0])


# ---------------------------------------------------------------- Recorder


def test_recorder_decimates():
    rec = FlightRecorder(rate_hz=5.0)
    for i in range(100):  # 1 s at 100 Hz
        rec.maybe_record(
            i * 0.01, np.zeros(3), np.zeros(3), np.zeros(3), np.zeros(3), 0.0, "mission", False
        )
    assert len(rec.samples) == 5


def test_recorder_estimated_distance():
    rec = FlightRecorder(rate_hz=1.0)
    for i in range(5):
        pos = np.array([float(i), 0.0, 0.0])
        rec.maybe_record(float(i), pos, pos, np.zeros(3), np.zeros(3), 0.0, "mission", False)
    assert rec.estimated_distance_m == pytest.approx(4.0)


def test_recorder_arrays_shape():
    rec = FlightRecorder(rate_hz=1.0)
    assert rec.positions_true().shape == (0, 3)
    rec.maybe_record(0.0, np.ones(3), 2 * np.ones(3), np.zeros(3), np.zeros(3), 0.1, "x", True)
    assert rec.positions_true().shape == (1, 3)
    assert rec.positions_estimated()[0, 0] == 2.0
    assert rec.times().shape == (1,)
    assert rec.samples[0].fault_active


def test_recorder_validation():
    with pytest.raises(ValueError):
        FlightRecorder(rate_hz=0.0)


def test_recorder_feeds_metrics_registry():
    from repro.obs.registry import MetricsRegistry

    reg = MetricsRegistry()
    rec = FlightRecorder(rate_hz=1.0, registry=reg)
    for i in range(3):
        pos = np.array([float(i), 0.0, 0.0])
        rec.maybe_record(float(i), pos, pos, np.zeros(3), np.zeros(3), 0.0, "mission", False)
    assert reg.value("flight_recorder_rows_total") == 3.0
    assert reg.value("flight_distance_m") == pytest.approx(2.0)


# ------------------------------------------------- obs event stream


def event(drone_id=1, t=0.0, kind="imu.switchover"):
    return FlightEvent(drone_id=drone_id, time_s=t, kind=kind)


def test_subscribers_fire_in_subscription_order():
    broker = Broker("test")
    order = []
    broker.subscribe("event/1", lambda topic, msg: order.append("exact-first"))
    broker.subscribe("event/*", lambda topic, msg: order.append("wild-first"))
    broker.subscribe("event/1", lambda topic, msg: order.append("exact-second"))
    broker.subscribe("event/*", lambda topic, msg: order.append("wild-second"))
    broker.publish("event/1", event())
    # Exact matches deliver before wildcards; within each class,
    # subscription order is preserved.
    assert order == ["exact-first", "exact-second", "wild-first", "wild-second"]


def test_event_burst_no_drops_and_in_order():
    """A crash-window burst (every step emits) must arrive complete."""
    core = CoreBroker()
    edge = EdgeBroker("edge-0", upstream=core)
    tracker = Tracker(core)
    n = 5000
    for i in range(n):
        delivered = edge.publish("event/7", event(drone_id=7, t=i * 0.01))
        assert delivered == 1  # the tracker, via the core broker
    got = tracker.events[7]
    assert len(got) == n
    assert [e.time_s for e in got] == [i * 0.01 for i in range(n)]
    assert core.published_count == n
    assert not core.delivery_errors and not edge.delivery_errors


def test_event_burst_survives_one_bad_subscriber():
    broker = CoreBroker()
    tracker = Tracker(broker)

    def bad(topic, msg):
        raise RuntimeError("slow disk")

    broker.subscribe("event/*", bad)
    for i in range(100):
        broker.publish("event/1", event(t=float(i)))
    assert len(tracker.events[1]) == 100  # tracker unaffected
    assert len(broker.delivery_errors) == 100


def test_observer_events_reach_tracker_via_broker():
    """The obs plane's broker mirror: emit -> event/<id> -> Tracker."""
    from repro.obs.observer import Observer
    from repro.obs.registry import MetricsRegistry

    broker = CoreBroker()
    tracker = Tracker(broker)
    obs = Observer(registry=MetricsRegistry())
    obs.attach_broker(broker, drone_id=42)
    obs.trace.emit("failsafe.engaged", 12.5, trigger="attitude_excursion")
    obs.trace.emit("imu.switchover", 13.0, from_member=0, to_member=1)
    got = tracker.events[42]
    assert [(e.kind, e.time_s) for e in got] == [
        ("failsafe.engaged", 12.5), ("imu.switchover", 13.0),
    ]
    assert got[0].data == {"trigger": "attitude_excursion"}
    # The same emissions also land in the observer's metrics.
    assert obs.metrics.value("obs_events_total", event="imu.switchover") == 1.0
