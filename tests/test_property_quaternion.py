"""Property-based tests for quaternion algebra invariants."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mathutils import (
    quat_angle_between,
    quat_from_euler,
    quat_integrate,
    quat_inverse,
    quat_multiply,
    quat_normalize,
    quat_rotate,
    quat_rotate_inverse,
    quat_to_rotation_matrix,
)

angles = st.floats(-math.pi, math.pi, allow_nan=False)
small = st.floats(-100.0, 100.0, allow_nan=False)
rates = st.floats(-30.0, 30.0, allow_nan=False)


def quats():
    return st.builds(quat_from_euler, angles, angles, angles)


def vectors():
    return st.builds(lambda x, y, z: np.array([x, y, z]), small, small, small)


@given(quats())
def test_from_euler_always_unit(q):
    assert math.isclose(float(q @ q), 1.0, rel_tol=1e-9)


@given(quats(), quats())
def test_product_preserves_norm(q1, q2):
    prod = quat_multiply(q1, q2)
    assert math.isclose(float(prod @ prod), 1.0, rel_tol=1e-9)


@given(quats(), vectors())
def test_rotation_preserves_length(q, v):
    out = quat_rotate(q, v)
    assert math.isclose(float(out @ out), float(v @ v), rel_tol=1e-9, abs_tol=1e-9)


@given(quats(), vectors())
def test_rotate_round_trip(q, v):
    back = quat_rotate_inverse(q, quat_rotate(q, v))
    assert np.allclose(back, v, atol=1e-8)


@given(quats())
def test_inverse_composes_to_identity(q):
    prod = quat_multiply(q, quat_inverse(q))
    assert quat_angle_between(prod, np.array([1.0, 0.0, 0.0, 0.0])) < 1e-6


@given(quats())
def test_rotation_matrix_orthonormal(q):
    rot = quat_to_rotation_matrix(q)
    assert np.allclose(rot @ rot.T, np.eye(3), atol=1e-9)
    assert math.isclose(float(np.linalg.det(rot)), 1.0, rel_tol=1e-9)


@given(quats(), st.builds(lambda x, y, z: np.array([x, y, z]), rates, rates, rates))
@settings(max_examples=50)
def test_integration_preserves_norm(q, omega):
    out = q
    for _ in range(10):
        out = quat_integrate(out, omega, 0.01)
    assert math.isclose(float(out @ out), 1.0, rel_tol=1e-9)


@given(quats(), quats())
def test_angle_between_symmetric_and_bounded(q1, q2):
    a = quat_angle_between(q1, q2)
    b = quat_angle_between(q2, q1)
    assert math.isclose(a, b, abs_tol=1e-9)
    assert 0.0 <= a <= math.pi + 1e-9


@given(quats())
def test_normalize_idempotent(q):
    once = quat_normalize(q)
    twice = quat_normalize(once)
    assert np.allclose(once, twice, atol=1e-12)
