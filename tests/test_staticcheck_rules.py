"""Fixture-based unit tests for every reprolint rule.

Each rule gets at least one known-bad snippet it must flag and one
known-good snippet it must stay silent on. Fixtures are written into a
temporary tree whose subdirectories (``sim/``, ``core/`` …) emulate the
package layout, so path-sensitive rules (DET002, DET004, IO001) see the
layer they would see in the real tree.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.staticcheck import ALL_RULES, all_rules
from repro.staticcheck.engine import ReprolintError, RunReport, run_reprolint
from repro.staticcheck.rules_contracts import RawWriteRule
from repro.staticcheck.rules_determinism import (
    GeneratorInjectionRule,
    GlobalRandomRule,
    SetIterationRule,
    WallClockRule,
)
from repro.staticcheck.rules_faultmodel import ExhaustiveDispatchRule, SpecRoundTripRule
from repro.staticcheck.rules_numerics import (
    FloatEqualityRule,
    NaNComparisonRule,
    UnguardedDivisionRule,
)
from repro.staticcheck.rules_obs import ObsReadOnlyRule


def lint(root: Path, files: dict[str, str], rule_cls=None) -> RunReport:
    """Write ``files`` under ``root`` and run the analyzer over them."""
    for rel, source in files.items():
        dest = root / rel
        dest.parent.mkdir(parents=True, exist_ok=True)
        dest.write_text(textwrap.dedent(source))
    rules = None if rule_cls is None else [rule_cls()]
    return run_reprolint([root], rules=rules)


def rule_ids(report: RunReport) -> list[str]:
    return [v.rule_id for v in report.violations]


# ---------------------------------------------------------------------------
# DET001 — global RNG draws


def test_det001_fires_on_global_rng(tmp_path):
    report = lint(
        tmp_path,
        {
            "sim/noise.py": """\
                import random
                import numpy as np

                def jitter():
                    return random.random() + np.random.uniform(0.0, 1.0)
            """
        },
        GlobalRandomRule,
    )
    assert rule_ids(report) == ["DET001", "DET001"]


def test_det001_silent_on_injected_generator(tmp_path):
    report = lint(
        tmp_path,
        {
            "sim/noise.py": """\
                import numpy as np

                def jitter(seed):
                    rng = np.random.default_rng(seed)
                    return rng.uniform(0.0, 1.0)
            """
        },
        GlobalRandomRule,
    )
    assert report.clean


# ---------------------------------------------------------------------------
# DET002 — wall-clock reads in simulation layers


def test_det002_fires_in_restricted_package(tmp_path):
    report = lint(
        tmp_path,
        {
            "estimation/timing.py": """\
                import time
                from datetime import datetime

                def stamp():
                    return time.time(), datetime.now()
            """
        },
        WallClockRule,
    )
    assert rule_ids(report) == ["DET002", "DET002"]


def test_det002_silent_in_harness_and_outside(tmp_path):
    report = lint(
        tmp_path,
        {
            # The campaign harness is the sanctioned home of wall clock.
            "core/campaign.py": """\
                import time

                def backoff():
                    return time.monotonic()
            """,
            # Packages outside the simulation loop are unrestricted.
            "telemetry/clock.py": """\
                import time

                def stamp():
                    return time.time()
            """,
        },
        WallClockRule,
    )
    assert report.clean


# ---------------------------------------------------------------------------
# DET003 — iteration over unordered sets


def test_det003_fires_on_set_iteration(tmp_path):
    report = lint(
        tmp_path,
        {
            "core/agg.py": """\
                def labels(rows):
                    seen = {row.name for row in rows}
                    ordered = list(seen)
                    return [x.upper() for x in seen], ordered
            """
        },
        SetIterationRule,
    )
    assert rule_ids(report) == ["DET003", "DET003"]


def test_det003_silent_on_sorted_and_reductions(tmp_path):
    report = lint(
        tmp_path,
        {
            "core/agg.py": """\
                def labels(rows):
                    seen = {row.name for row in rows}
                    total = len(seen)
                    return sorted(seen), total, max(seen | {""})
            """
        },
        SetIterationRule,
    )
    assert report.clean


# ---------------------------------------------------------------------------
# DET004 — generator injection


def test_det004_fires_on_unseeded_generator(tmp_path):
    report = lint(
        tmp_path,
        {
            "telemetry/sampler.py": """\
                import numpy as np

                def make_rng():
                    return np.random.default_rng()
            """
        },
        GeneratorInjectionRule,
    )
    assert rule_ids(report) == ["DET004"]


def test_det004_fires_on_literal_seed_in_sim_layer(tmp_path):
    report = lint(
        tmp_path,
        {
            "sensors/imu.py": """\
                import numpy as np

                def make_rng():
                    return np.random.default_rng(42)
            """
        },
        GeneratorInjectionRule,
    )
    assert rule_ids(report) == ["DET004"]


def test_det004_silent_on_injected_seed(tmp_path):
    report = lint(
        tmp_path,
        {
            "sensors/imu.py": """\
                import numpy as np

                def make_rng(seed):
                    return np.random.default_rng(seed)
            """,
            # Literal seeds are fine outside the simulation layers
            # (tests, analysis scripts, examples).
            "analysisx/demo.py": """\
                import numpy as np

                RNG = np.random.default_rng(7)
            """,
        },
        GeneratorInjectionRule,
    )
    assert report.clean


# ---------------------------------------------------------------------------
# NUM001 — float equality


def test_num001_fires_on_float_equality(tmp_path):
    report = lint(
        tmp_path,
        {
            "control/check.py": """\
                import math

                def at_origin(x, angle):
                    return x == 0.1 or angle != math.pi
            """
        },
        FloatEqualityRule,
    )
    assert rule_ids(report) == ["NUM001", "NUM001"]


def test_num001_silent_on_tolerance_and_ints(tmp_path):
    report = lint(
        tmp_path,
        {
            "control/check.py": """\
                import math

                def at_origin(x, count):
                    return abs(x - 0.1) < 1e-9 and count == 0 and x <= 0.5
            """
        },
        FloatEqualityRule,
    )
    assert report.clean


# ---------------------------------------------------------------------------
# NUM002 — unguarded division


def test_num002_fires_on_unguarded_division(tmp_path):
    report = lint(
        tmp_path / "bad",
        {
            "sim/rates.py": """\
                def mean_rate(total, elapsed):
                    return total / elapsed
            """
        },
        UnguardedDivisionRule,
    )
    assert rule_ids(report) == ["NUM002"]


def test_num002_silent_on_guarded_division(tmp_path):
    report = lint(
        tmp_path / "good",
        {
            "sim/rates.py": """\
                _SCALE = 4.0

                def mean_rate(total, elapsed, floor):
                    if elapsed <= 0.0:
                        raise ValueError("elapsed must be positive")
                    safe = max(floor, 1e-9)
                    return (total / elapsed + total / safe) / _SCALE
            """
        },
        UnguardedDivisionRule,
    )
    assert report.clean


def test_num002_len_of_guarded_collection_is_guarded(tmp_path):
    report = lint(
        tmp_path,
        {
            "core/stats.py": """\
                def mean(values):
                    if not values:
                        raise ValueError("no values")
                    n = len(values)
                    return sum(values) / n
            """
        },
        UnguardedDivisionRule,
    )
    assert report.clean


# ---------------------------------------------------------------------------
# NUM003 — NaN comparisons


def test_num003_fires_on_nan_comparison(tmp_path):
    report = lint(
        tmp_path,
        {
            "estimation/gate.py": """\
                import math

                def broken(x):
                    return x == math.nan or x > float("nan")
            """
        },
        NaNComparisonRule,
    )
    assert rule_ids(report) == ["NUM003", "NUM003"]


def test_num003_silent_on_isnan(tmp_path):
    report = lint(
        tmp_path,
        {
            "estimation/gate.py": """\
                import math

                def detect(x):
                    return math.isnan(x)
            """
        },
        NaNComparisonRule,
    )
    assert report.clean


# ---------------------------------------------------------------------------
# FM001 — exhaustive enum dispatch

_FIXTURE_ENUM = """\
    import enum

    class Kind(enum.Enum):
        ALPHA = "alpha"
        BETA = "beta"
        GAMMA = "gamma"
"""


def test_fm001_fires_on_missing_elif_branch(tmp_path):
    report = lint(
        tmp_path,
        {
            "core/kinds.py": _FIXTURE_ENUM,
            "core/dispatch.py": """\
                from core.kinds import Kind

                def apply(kind):
                    if kind == Kind.ALPHA:
                        return 1
                    elif kind == Kind.BETA:
                        return 2
                    raise ValueError(kind)
            """,
        },
        ExhaustiveDispatchRule,
    )
    assert rule_ids(report) == ["FM001"]
    assert "Kind.GAMMA" in report.violations[0].message


def test_fm001_fires_on_incomplete_dict_dispatch(tmp_path):
    report = lint(
        tmp_path,
        {
            "core/kinds.py": _FIXTURE_ENUM,
            "core/table.py": """\
                from core.kinds import Kind

                HANDLERS = {Kind.ALPHA: 1, Kind.GAMMA: 3}
            """,
        },
        ExhaustiveDispatchRule,
    )
    assert rule_ids(report) == ["FM001"]
    assert "Kind.BETA" in report.violations[0].message


def test_fm001_fires_on_incomplete_match(tmp_path):
    report = lint(
        tmp_path,
        {
            "core/kinds.py": _FIXTURE_ENUM,
            "core/matcher.py": """\
                from core.kinds import Kind

                def apply(kind):
                    match kind:
                        case Kind.ALPHA | Kind.BETA:
                            return 1
                        case _:
                            raise ValueError(kind)
            """,
        },
        ExhaustiveDispatchRule,
    )
    assert rule_ids(report) == ["FM001"]


def test_fm001_silent_on_exhaustive_dispatch(tmp_path):
    report = lint(
        tmp_path,
        {
            "core/kinds.py": _FIXTURE_ENUM,
            "core/dispatch.py": """\
                from core.kinds import Kind

                TABLE = {Kind.ALPHA: 1, Kind.BETA: 2, Kind.GAMMA: 3}

                def apply(kind):
                    if kind == Kind.ALPHA:
                        return 1
                    if kind == Kind.BETA:
                        return 2
                    if kind == Kind.GAMMA:
                        return 3
                    raise ValueError(kind)
            """,
        },
        ExhaustiveDispatchRule,
    )
    assert report.clean


def test_fm001_membership_subsetting_is_not_dispatch(tmp_path):
    report = lint(
        tmp_path,
        {
            "core/kinds.py": _FIXTURE_ENUM,
            "core/subset.py": """\
                from core.kinds import Kind

                def noisy(kind):
                    return kind in (Kind.ALPHA, Kind.BETA)
            """,
        },
        ExhaustiveDispatchRule,
    )
    assert report.clean


def test_fm001_separate_subjects_do_not_merge(tmp_path):
    # Two different variables each handling a subset must not be
    # mistaken for one exhaustive dispatch over the union.
    report = lint(
        tmp_path,
        {
            "core/kinds.py": _FIXTURE_ENUM,
            "core/two.py": """\
                from core.kinds import Kind

                def apply(first, second):
                    if first == Kind.ALPHA:
                        return 1
                    if second == Kind.BETA:
                        return 2
                    return 0
            """,
        },
        ExhaustiveDispatchRule,
    )
    assert report.clean  # each subject mentions only one member


# ---------------------------------------------------------------------------
# FM002 — FaultSpec round-trip

_FIXTURE_SPEC = """\
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class FaultSpec:
        alpha: int
        beta: float
"""


def test_fm002_fires_when_serializer_drops_a_field(tmp_path):
    report = lint(
        tmp_path,
        {
            "core/spec.py": _FIXTURE_SPEC,
            "core/results.py": """\
                def fault_spec_to_dict(spec):
                    return {"alpha": spec.alpha}

                def fault_spec_from_dict(data):
                    return (data["alpha"], data["beta"])
            """,
        },
        SpecRoundTripRule,
    )
    assert rule_ids(report) == ["FM002"]
    assert "beta" in report.violations[0].message


def test_fm002_fires_when_serializers_are_missing(tmp_path):
    report = lint(
        tmp_path, {"core/spec.py": _FIXTURE_SPEC}, SpecRoundTripRule
    )
    assert rule_ids(report) == ["FM002", "FM002"]


def test_fm002_silent_on_lossless_round_trip(tmp_path):
    report = lint(
        tmp_path,
        {
            "core/spec.py": _FIXTURE_SPEC,
            "core/results.py": """\
                def fault_spec_to_dict(spec):
                    return {"alpha": spec.alpha, "beta": spec.beta}

                def fault_spec_from_dict(data):
                    return (data["alpha"], data["beta"])
            """,
        },
        SpecRoundTripRule,
    )
    assert report.clean


# ---------------------------------------------------------------------------
# IO001 — raw writes outside the atomic helpers


def test_io001_fires_on_raw_writes(tmp_path):
    report = lint(
        tmp_path,
        {
            "missions/dump.py": """\
                from pathlib import Path

                def dump(path, text):
                    with open(path, "w") as fh:
                        fh.write(text)
                    Path(path).write_text(text)
            """
        },
        RawWriteRule,
    )
    assert rule_ids(report) == ["IO001", "IO001"]


def test_io001_silent_on_reads_and_in_atomic_modules(tmp_path):
    report = lint(
        tmp_path,
        {
            "missions/load.py": """\
                def load(path):
                    with open(path) as fh:
                        return fh.read()
            """,
            # The atomic helpers themselves are the sanctioned writers.
            "core/io.py": """\
                def raw(path, text):
                    with open(path, "w") as fh:
                        fh.write(text)
            """,
            "core/atomicio.py": """\
                import os

                def raw(path, text, fd):
                    with os.fdopen(fd, "w") as fh:
                        fh.write(text)
            """,
        },
        RawWriteRule,
    )
    assert report.clean


# ---------------------------------------------------------------------------
# OBS001 — obs code must be read-only and RNG-free


def test_obs001_fires_on_rng_in_obs_package(tmp_path):
    report = lint(
        tmp_path,
        {
            "obs/sampler.py": """\
                import random
                import numpy as np

                def sample_rows(rows):
                    rng = np.random.default_rng(0)
                    return random.choice(rows), rng.integers(10)
            """
        },
        ObsReadOnlyRule,
    )
    # default_rng construction, random.choice, and the rng.integers draw
    # all count — but rng is a local, so only the first two resolve.
    assert rule_ids(report) == ["OBS001", "OBS001"]


def test_obs001_fires_on_parameter_mutation(tmp_path):
    report = lint(
        tmp_path,
        {
            "obs/hooks.py": """\
                def on_step(self, system, fault_active):
                    system.physics.time_s = 0.0
                    system.counts["steps"] += 1
                    system.history.append(fault_active)
                    del system.ekf.bias
            """
        },
        ObsReadOnlyRule,
    )
    assert rule_ids(report) == ["OBS001"] * 4


def test_obs001_silent_on_self_state_and_outside_obs(tmp_path):
    report = lint(
        tmp_path,
        {
            # Observers own their rings and tables: self-mutation,
            # local mutation, and plain reads are all fine.
            "obs/ring.py": """\
                def record(self, system):
                    self._rows.append(system.physics.time_s)
                    self._codes["phase"] = len(self._codes)
                    copies = []
                    copies.append(system.ekf.quaternion.copy())
                    local = {}
                    local["t"] = system.physics.time_s
                    return copies
            """,
            # The rule is scoped to obs/ — the sim layer has its own
            # rules (DET001/DET004) for randomness.
            "sim/noise.py": """\
                import random

                def jitter(state):
                    state.value = random.random()
            """,
        },
        ObsReadOnlyRule,
    )
    assert report.clean


# ---------------------------------------------------------------------------
# Framework behaviour


def test_suppression_comment_silences_one_rule(tmp_path):
    report = lint(
        tmp_path,
        {
            "sim/rates.py": """\
                def mean_rate(total, elapsed):
                    return total / elapsed  # reprolint: disable=NUM002
            """
        },
        UnguardedDivisionRule,
    )
    assert report.clean


def test_suppression_does_not_silence_other_rules(tmp_path):
    report = lint(
        tmp_path,
        {
            "sim/rates.py": """\
                def mean_rate(total, elapsed):
                    return total / elapsed  # reprolint: disable=NUM001
            """
        },
        UnguardedDivisionRule,
    )
    assert rule_ids(report) == ["NUM002"]


def test_registry_covers_all_eleven_rule_ids():
    ids = [cls.rule_id for cls in ALL_RULES]
    assert ids == [
        "DET001",
        "DET002",
        "DET003",
        "DET004",
        "NUM001",
        "NUM002",
        "NUM003",
        "FM001",
        "FM002",
        "IO001",
        "OBS001",
    ]
    for rule in all_rules():
        assert rule.summary and rule.fixit


def test_unparsable_file_raises_reprolint_error(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def broken(:\n")
    with pytest.raises(ReprolintError):
        run_reprolint([tmp_path])


def test_missing_path_raises_reprolint_error(tmp_path):
    with pytest.raises(ReprolintError):
        run_reprolint([tmp_path / "does-not-exist"])
