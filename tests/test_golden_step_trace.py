"""Golden per-step traces: the strongest drift tripwire in tier-1.

``tests/data/golden_step_traces.json`` pins the SHA-256 of the raw
IEEE-754 bytes of every metric-bearing quantity on *every step* of one
gold run and one violent whole-IMU fault run (recorded from the
pre-optimisation loop). Unlike the campaign-level golden file, a single
flipped mantissa bit on any step of either run fails here — and the
per-100-step checkpoints localise the first divergent window.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.perf.trace import GOLDEN_TRACE_SPECS, golden_traces

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_step_traces.json"


def test_golden_step_traces_bit_identical():
    expected = json.loads(GOLDEN_PATH.read_text())
    assert set(expected) == set(GOLDEN_TRACE_SPECS), (
        "golden file runs do not match GOLDEN_TRACE_SPECS; re-record "
        "tests/data/golden_step_traces.json"
    )
    actual = golden_traces()
    for name, want in expected.items():
        got = actual[name]
        assert got["n_steps"] == want["n_steps"], name
        assert got["every"] == want["every"], name
        # Checkpoints first: a drift then reports the first bad
        # 100-step window instead of only the final digest.
        for got_cp, want_cp in zip(got["checkpoints"], want["checkpoints"], strict=True):
            assert got_cp["digest"] == want_cp["digest"], (
                f"run {name!r} diverged by step {got_cp['step']}: "
                f"{got_cp['digest']} != {want_cp['digest']}"
            )
        assert got["final_digest"] == want["final_digest"], name
