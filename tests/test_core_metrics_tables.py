"""Unit tests for metric aggregation and the table generators."""

import pytest

from repro.core.metrics import failure_analysis, summarize
from repro.core.results import CampaignResult, ExperimentResult
from repro.core.tables import (
    render_table,
    table2_by_duration,
    table3_by_fault,
    table4_failure_analysis,
)
from repro.flightstack.commander import MissionOutcome


def result(
    outcome=MissionOutcome.COMPLETED,
    fault_type="zeros",
    target="accel",
    duration=2.0,
    inner=5,
    outer=3,
    flight_duration=100.0,
    distance=1.0,
    mission_id=1,
    experiment_id=0,
):
    target_names = {"accel": "Acc", "gyro": "Gyro", "imu": "IMU"}
    fault_names = {"zeros": "Zeros", "random": "Random", "freeze": "Freeze"}
    if fault_type is None:
        label = "Gold Run"
    else:
        label = f"{target_names[target]} {fault_names[fault_type]}"
    return ExperimentResult(
        experiment_id=experiment_id,
        mission_id=mission_id,
        fault_label=label,
        fault_type=fault_type,
        target=target if fault_type else None,
        injection_duration_s=duration if fault_type else None,
        outcome=outcome,
        flight_duration_s=flight_duration,
        distance_km=distance,
        inner_violations=inner,
        outer_violations=outer,
        max_deviation_m=10.0,
    )


def gold(**kw):
    kw.setdefault("fault_type", None)
    kw.setdefault("target", None)
    return result(**kw)


def test_summarize_averages():
    rows = [
        result(outcome=MissionOutcome.COMPLETED, inner=10, outer=4, flight_duration=100, distance=2.0),
        result(outcome=MissionOutcome.CRASHED, inner=20, outer=8, flight_duration=50, distance=1.0),
    ]
    row = summarize("test", rows)
    assert row.runs == 2
    assert row.inner_violations_avg == 15.0
    assert row.outer_violations_avg == 6.0
    assert row.completed_pct == 50.0
    assert row.duration_avg_s == 75.0
    assert row.distance_avg_km == 1.5


def test_summarize_empty_raises():
    with pytest.raises(ValueError):
        summarize("empty", [])


def test_failure_analysis_split_sums_to_100():
    rows = [
        result(outcome=MissionOutcome.CRASHED),
        result(outcome=MissionOutcome.FAILSAFE),
        result(outcome=MissionOutcome.TIMEOUT),
        result(outcome=MissionOutcome.COMPLETED),
    ]
    row = failure_analysis("test", rows)
    assert row.failed_pct == 75.0
    assert row.crash_pct_of_failed + row.failsafe_pct_of_failed == pytest.approx(100.0)
    # Timeouts count with failsafe activations.
    assert row.failsafe_pct_of_failed == pytest.approx(200.0 / 3.0)


def test_failure_analysis_all_completed():
    row = failure_analysis("ok", [result(outcome=MissionOutcome.COMPLETED)])
    assert row.failed_pct == 0.0
    assert row.crash_pct_of_failed == 0.0
    assert row.failsafe_pct_of_failed == 0.0


def make_campaign():
    results = [gold(mission_id=m, outcome=MissionOutcome.COMPLETED, inner=0, outer=0) for m in (1, 2)]
    eid = 2
    for duration in (2.0, 30.0):
        for target in ("accel", "gyro", "imu"):
            for fault in ("zeros", "random"):
                for mission in (1, 2):
                    outcome = (
                        MissionOutcome.COMPLETED
                        if fault == "zeros" and duration == 2.0
                        else MissionOutcome.CRASHED
                    )
                    results.append(
                        result(
                            outcome=outcome,
                            fault_type=fault,
                            target=target,
                            duration=duration,
                            mission_id=mission,
                            experiment_id=eid,
                        )
                    )
                    eid += 1
    return CampaignResult(results=results)


def test_campaign_result_slicing():
    camp = make_campaign()
    assert len(camp.gold) == 2
    assert len(camp.faulty) == 24
    assert len(camp.by_duration(2.0)) == 12
    assert len(camp.by_target("gyro")) == 8
    assert len(camp.by_fault_label("Acc Zeros")) == 4


def test_table2_gold_first_and_sorted():
    rows = table2_by_duration(make_campaign())
    assert rows[0].label == "Gold Run"
    completions = [r.completed_pct for r in rows[1:]]
    assert completions == sorted(completions, reverse=True)
    assert {r.label for r in rows[1:]} == {"2 seconds", "30 seconds"}


def test_table3_groups_by_component_then_completion():
    camp = make_campaign()
    rows = table3_by_fault(camp)
    labels = [r.label for r in rows]
    assert labels[0] == "Gold Run"
    assert "Acc Zeros" in labels and "IMU Random" in labels
    # Components appear grouped: all Acc rows before all Gyro rows.
    acc_last = max(i for i, l in enumerate(labels) if l.startswith("Acc"))
    gyro_first = min(i for i, l in enumerate(labels) if l.startswith("Gyro"))
    assert acc_last < gyro_first
    # Within a component, sorted by completion desc.
    acc_rows = [r for r in rows if r.label.startswith("Acc")]
    pcts = [r.completed_pct for r in acc_rows]
    assert pcts == sorted(pcts, reverse=True)


def test_table4_rows_cover_durations_and_targets():
    rows = table4_failure_analysis(make_campaign())
    labels = [r.label for r in rows]
    assert "Gold Run" in labels
    assert "2 seconds" in labels and "30 seconds" in labels
    assert "Acc" in labels and "Gyro" in labels and "IMU" in labels


def test_render_table_summary_format():
    text = render_table(table2_by_duration(make_campaign()), "TABLE II")
    assert "TABLE II" in text
    assert "Gold Run" in text
    assert "Completed" in text


def test_render_table_failure_format():
    text = render_table(table4_failure_analysis(make_campaign()))
    assert "Failsafe" in text
    assert "%" in text


def test_render_empty():
    assert "(empty)" in render_table([], "nothing")
