"""Unit tests for the fault model (paper Table I) and behaviours."""

import numpy as np
import pytest

from repro.core.faults import (
    FAULT_MODEL_CATALOG,
    FaultBehavior,
    FaultSpec,
    FaultTarget,
    FaultType,
)

RANGE = 10.0


def behavior(kind, seed=0, **kwargs):
    b = FaultBehavior(kind, RANGE, seed, noise_fraction=0.05, **kwargs)
    b.on_activation(np.array([1.0, -2.0, 3.0]))
    return b


def test_zeros_annihilates():
    assert np.allclose(behavior(FaultType.ZEROS).apply(np.ones(3)), 0.0)


def test_freeze_returns_latched_sample():
    b = behavior(FaultType.FREEZE)
    out = b.apply(np.array([9.0, 9.0, 9.0]))
    assert np.allclose(out, [1.0, -2.0, 3.0])
    # Stays frozen on subsequent samples.
    assert np.allclose(b.apply(np.zeros(3)), [1.0, -2.0, 3.0])


def test_freeze_before_activation_raises():
    b = FaultBehavior(FaultType.FREEZE, RANGE, 0, 0.05)
    with pytest.raises(RuntimeError):
        b.apply(np.zeros(3))


def test_fixed_constant_within_range():
    b = behavior(FaultType.FIXED)
    first = b.apply(np.zeros(3))
    second = b.apply(np.ones(3))
    assert np.allclose(first, second)
    assert np.all(np.abs(first) <= RANGE)


def test_fixed_differs_across_seeds():
    a = behavior(FaultType.FIXED, seed=1).apply(np.zeros(3))
    b = behavior(FaultType.FIXED, seed=2).apply(np.zeros(3))
    assert not np.allclose(a, b)


def test_random_in_range_and_varies():
    b = behavior(FaultType.RANDOM)
    outs = [b.apply(np.zeros(3)) for _ in range(10)]
    assert all(np.all(np.abs(o) <= RANGE) for o in outs)
    assert not np.allclose(outs[0], outs[1])


def test_min_max_saturation_values():
    assert np.allclose(behavior(FaultType.MIN).apply(np.zeros(3)), -RANGE)
    assert np.allclose(behavior(FaultType.MAX).apply(np.zeros(3)), RANGE)


def test_noise_centred_near_clean_plus_bias():
    b = behavior(FaultType.NOISE)
    clean = np.array([1.0, 2.0, 3.0])
    outs = np.array([b.apply(clean) for _ in range(500)])
    # Mean = clean + per-window bias; bias bounded by bias fraction.
    mean_offset = outs.mean(axis=0) - clean
    assert np.all(np.abs(mean_offset) <= 0.03 * RANGE + 0.15)
    assert np.all(np.abs(outs) <= RANGE)


def test_noise_is_not_deterministic():
    b = behavior(FaultType.NOISE)
    assert not np.allclose(b.apply(np.zeros(3)), b.apply(np.zeros(3)))


def test_behavior_validation():
    with pytest.raises(ValueError):
        FaultBehavior(FaultType.ZEROS, 0.0, 0, 0.05)


# ----------------------------------------------------------------- FaultSpec


def test_spec_window():
    spec = FaultSpec(FaultType.ZEROS, FaultTarget.ACCEL, start_time_s=90.0, duration_s=10.0)
    assert not spec.is_active(89.99)
    assert spec.is_active(90.0)
    assert spec.is_active(99.99)
    assert not spec.is_active(100.0)
    assert spec.end_time_s == 100.0


def test_spec_labels_match_paper_rows():
    assert FaultSpec(FaultType.FREEZE, FaultTarget.ACCEL, 0.0, 1.0).label == "Acc Freeze"
    assert FaultSpec(FaultType.FIXED, FaultTarget.GYRO, 0.0, 1.0).label == "Gyro Fixed Value"
    assert FaultSpec(FaultType.RANDOM, FaultTarget.IMU, 0.0, 1.0).label == "IMU Random"


def test_spec_validation():
    with pytest.raises(ValueError):
        FaultSpec(FaultType.ZEROS, FaultTarget.IMU, start_time_s=-1.0, duration_s=1.0)
    with pytest.raises(ValueError):
        FaultSpec(FaultType.ZEROS, FaultTarget.IMU, start_time_s=0.0, duration_s=0.0)
    with pytest.raises(ValueError):
        FaultSpec(FaultType.NOISE, FaultTarget.IMU, 0.0, 1.0, noise_fraction=0.0)


def test_spec_with_seed():
    spec = FaultSpec(FaultType.ZEROS, FaultTarget.IMU, 0.0, 1.0, seed=1)
    other = spec.with_seed(42)
    assert other.seed == 42
    assert other.fault_type == spec.fault_type


def test_target_component_flags():
    assert FaultTarget.ACCEL.affects_accel and not FaultTarget.ACCEL.affects_gyro
    assert FaultTarget.GYRO.affects_gyro and not FaultTarget.GYRO.affects_accel
    assert FaultTarget.IMU.affects_accel and FaultTarget.IMU.affects_gyro


# -------------------------------------------------------------- Table I map


def test_catalog_has_fourteen_entries():
    assert len(FAULT_MODEL_CATALOG) == 14


def test_catalog_covers_all_behaviours():
    covered = {b for entry in FAULT_MODEL_CATALOG for b in entry.represented_by}
    assert covered == set(FaultType)


def test_catalog_known_mappings():
    by_name = {e.name: e for e in FAULT_MODEL_CATALOG}
    assert by_name["Acoustic attack"].represented_by == (FaultType.RANDOM,)
    assert by_name["False data injection"].represented_by == (FaultType.FIXED,)
    assert by_name["Constant output"].represented_by == (FaultType.FREEZE,)
    assert FaultType.MIN in by_name["OS system attack"].represented_by


# ---------------------------------------------------- dispatch exhaustiveness


@pytest.mark.parametrize("kind", list(FaultType))
def test_every_fault_type_corrupts_the_sample(kind):
    """Each enum member must reach a real branch in FaultBehavior.apply.

    The corrupted sample differs from the clean input (so no member is
    silently absorbed by a pass-through path) and is a fresh, finite
    3-vector. The clean value sits strictly inside the sensor range and
    away from every saturation/zero value so every behaviour must move
    it.
    """
    current = np.array([4.0, 5.0, -6.0])  # differs from the latched sample
    out = behavior(kind, seed=123).apply(current)
    assert out.shape == (3,)
    assert np.all(np.isfinite(out))
    assert out is not current
    assert not np.allclose(out, current), f"{kind} returned the sample unchanged"
    assert np.all(np.abs(out) <= RANGE + 1e-12)


def test_non_member_fault_type_hits_the_fallback():
    b = behavior(FaultType.ZEROS)
    b.fault_type = "not-a-fault-type"
    with pytest.raises(ValueError, match="unhandled fault type"):
        b.apply(np.ones(3))


# ------------------------------------------------------- spec serialization


def test_fault_spec_round_trips_every_field():
    from repro.core.results import fault_spec_from_dict, fault_spec_to_dict

    spec = FaultSpec(
        fault_type=FaultType.NOISE,
        target=FaultTarget.IMU,
        start_time_s=12.5,
        duration_s=4.0,
        seed=99,
        noise_fraction=0.11,
        noise_bias_fraction=0.07,
    )
    assert fault_spec_from_dict(fault_spec_to_dict(spec)) == spec


def test_fault_spec_serialization_changes_fingerprint():
    """A seed/noise change must alter the campaign fingerprint, or a
    resumed checkpoint could silently mix differently-seeded results."""
    import dataclasses

    from repro.core.campaign import CampaignConfig
    from repro.core.experiments import build_experiment_matrix
    from repro.core.resilience import campaign_fingerprint

    config = CampaignConfig(scale=0.05, mission_ids=(1,), durations_s=(5.0,))
    specs = build_experiment_matrix(
        mission_ids=list(config.mission_ids), durations_s=config.durations_s
    )
    base = campaign_fingerprint(config, specs)
    reseeded = [
        s
        if s.fault is None
        else dataclasses.replace(s, fault=s.fault.with_seed(s.fault.seed + 1))
        for s in specs
    ]
    assert campaign_fingerprint(config, reseeded) != base
