"""Unit tests for the motor model."""

import numpy as np
import pytest

from repro.sim import MotorBank, MotorModel


def test_motor_model_validation():
    with pytest.raises(ValueError):
        MotorModel(max_thrust_n=-1.0)
    with pytest.raises(ValueError):
        MotorModel(time_constant_s=0.0)


def test_bank_requires_positive_count():
    with pytest.raises(ValueError):
        MotorBank(MotorModel(), count=0)


def test_commands_clamped_to_unit_range():
    bank = MotorBank(MotorModel(time_constant_s=1e-6))
    thrusts = bank.step(np.array([2.0, -1.0, 0.5, 1.0]), dt=0.1)
    max_t = bank.model.max_thrust_n
    assert np.isclose(thrusts[0], max_t)
    assert np.isclose(thrusts[1], 0.0)
    assert thrusts[2] < max_t


def test_wrong_command_count_rejected():
    bank = MotorBank(MotorModel(), count=4)
    with pytest.raises(ValueError):
        bank.step(np.array([1.0, 1.0]), dt=0.01)


def test_first_order_lag_converges():
    bank = MotorBank(MotorModel(max_thrust_n=8.0, time_constant_s=0.05))
    cmd = np.full(4, 0.7)
    for _ in range(200):
        thrusts = bank.step(cmd, dt=0.01)
    assert np.allclose(thrusts, 8.0 * 0.7**2, rtol=1e-3)


def test_lag_means_no_instant_response():
    bank = MotorBank(MotorModel(max_thrust_n=8.0, time_constant_s=0.05))
    thrusts = bank.step(np.full(4, 1.0), dt=0.01)
    assert np.all(thrusts < 8.0 * 0.25)  # far from steady state after 10 ms


def test_quadratic_thrust_map():
    bank = MotorBank(MotorModel(max_thrust_n=10.0, time_constant_s=0.01))
    for _ in range(1000):
        bank.step(np.full(4, 0.5), dt=0.01)
    assert np.allclose(bank.thrusts(), 10.0 * 0.25, rtol=1e-6)


def test_reset_zeroes_output():
    bank = MotorBank(MotorModel())
    bank.step(np.full(4, 1.0), dt=0.1)
    bank.reset()
    assert np.allclose(bank.thrusts(), 0.0)
    assert np.allclose(bank.effective_commands, 0.0)
