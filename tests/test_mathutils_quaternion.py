"""Unit tests for quaternion algebra."""

import math

import numpy as np
import pytest

from repro.mathutils import (
    quat_angle_between,
    quat_conjugate,
    quat_from_axis_angle,
    quat_from_euler,
    quat_from_rotation_matrix,
    quat_identity,
    quat_integrate,
    quat_inverse,
    quat_multiply,
    quat_normalize,
    quat_rotate,
    quat_rotate_inverse,
    quat_slerp,
    quat_to_euler,
    quat_to_rotation_matrix,
)


def test_identity_is_unit():
    q = quat_identity()
    assert q.shape == (4,)
    assert np.allclose(q, [1.0, 0.0, 0.0, 0.0])


def test_normalize_unit_norm():
    q = quat_normalize(np.array([1.0, 2.0, 3.0, 4.0]))
    assert math.isclose(float(q @ q), 1.0, rel_tol=1e-12)


def test_normalize_zero_returns_identity():
    assert np.allclose(quat_normalize(np.zeros(4)), quat_identity())


def test_multiply_identity_is_noop():
    q = quat_from_euler(0.2, -0.3, 1.1)
    assert np.allclose(quat_multiply(q, quat_identity()), q)
    assert np.allclose(quat_multiply(quat_identity(), q), q)


def test_multiply_inverse_gives_identity():
    q = quat_from_euler(0.4, 0.1, -2.0)
    prod = quat_multiply(q, quat_inverse(q))
    assert np.allclose(prod, quat_identity(), atol=1e-12)


def test_rotate_identity_preserves_vector():
    v = np.array([1.0, -2.0, 0.5])
    assert np.allclose(quat_rotate(quat_identity(), v), v)


def test_rotate_90deg_about_z():
    q = quat_from_axis_angle(np.array([0.0, 0.0, 1.0]), math.pi / 2)
    out = quat_rotate(q, np.array([1.0, 0.0, 0.0]))
    assert np.allclose(out, [0.0, 1.0, 0.0], atol=1e-12)


def test_rotate_then_inverse_round_trip():
    q = quat_from_euler(0.3, -0.8, 2.2)
    v = np.array([0.7, -1.3, 2.9])
    assert np.allclose(quat_rotate_inverse(q, quat_rotate(q, v)), v, atol=1e-12)


def test_rotate_matches_rotation_matrix():
    q = quat_from_euler(-0.5, 0.25, 0.9)
    v = np.array([1.0, 2.0, 3.0])
    assert np.allclose(quat_rotate(q, v), quat_to_rotation_matrix(q) @ v, atol=1e-12)


def test_euler_round_trip():
    roll, pitch, yaw = 0.3, -0.6, 2.4
    back = quat_to_euler(quat_from_euler(roll, pitch, yaw))
    assert np.allclose(back, [roll, pitch, yaw], atol=1e-12)


def test_euler_gimbal_lock_clamped():
    q = quat_from_euler(0.0, math.pi / 2, 0.0)
    _, pitch, _ = quat_to_euler(q)
    assert math.isclose(pitch, math.pi / 2, rel_tol=1e-6)


def test_rotation_matrix_round_trip():
    q = quat_from_euler(0.1, 0.2, 0.3)
    q2 = quat_from_rotation_matrix(quat_to_rotation_matrix(q))
    # q and -q encode the same rotation.
    assert min(np.linalg.norm(q - q2), np.linalg.norm(q + q2)) < 1e-9


@pytest.mark.parametrize(
    "trace_case",
    [
        quat_from_euler(3.0, 0.0, 0.0),  # trace-negative branches
        quat_from_euler(0.0, 3.0, 0.0),
        quat_from_euler(0.0, 0.0, 3.0),
    ],
)
def test_rotation_matrix_round_trip_large_angles(trace_case):
    q2 = quat_from_rotation_matrix(quat_to_rotation_matrix(trace_case))
    assert quat_angle_between(trace_case, q2) < 1e-9


def test_integrate_zero_rate_is_noop():
    q = quat_from_euler(0.1, 0.1, 0.1)
    assert np.allclose(quat_integrate(q, np.zeros(3), 0.01), q)


def test_integrate_constant_rate_accumulates_angle():
    q = quat_identity()
    rate = np.array([0.0, 0.0, 1.0])  # 1 rad/s yaw
    for _ in range(100):
        q = quat_integrate(q, rate, 0.01)
    _, _, yaw = quat_to_euler(q)
    assert math.isclose(yaw, 1.0, rel_tol=1e-6)


def test_integrate_preserves_norm_at_high_rate():
    q = quat_identity()
    rate = np.array([30.0, -20.0, 10.0])
    for _ in range(1000):
        q = quat_integrate(q, rate, 0.01)
    assert math.isclose(float(q @ q), 1.0, rel_tol=1e-9)


def test_angle_between_self_is_zero():
    q = quat_from_euler(0.5, 0.5, 0.5)
    assert quat_angle_between(q, q) < 1e-9


def test_angle_between_known_rotation():
    q1 = quat_identity()
    q2 = quat_from_axis_angle(np.array([1.0, 0.0, 0.0]), 0.7)
    assert math.isclose(quat_angle_between(q1, q2), 0.7, rel_tol=1e-9)


def test_slerp_endpoints():
    q1 = quat_from_euler(0.0, 0.0, 0.0)
    q2 = quat_from_euler(0.0, 0.0, 1.0)
    assert quat_angle_between(quat_slerp(q1, q2, 0.0), q1) < 1e-9
    assert quat_angle_between(quat_slerp(q1, q2, 1.0), q2) < 1e-9


def test_slerp_midpoint_half_angle():
    q1 = quat_identity()
    q2 = quat_from_axis_angle(np.array([0.0, 0.0, 1.0]), 1.0)
    mid = quat_slerp(q1, q2, 0.5)
    assert math.isclose(quat_angle_between(q1, mid), 0.5, rel_tol=1e-9)


def test_conjugate_negates_vector_part():
    q = np.array([0.5, 0.1, -0.2, 0.3])
    assert np.allclose(quat_conjugate(q), [0.5, -0.1, 0.2, -0.3])


def test_from_axis_angle_zero_angle_identity():
    assert np.allclose(
        quat_from_axis_angle(np.array([1.0, 1.0, 0.0]), 0.0), quat_identity()
    )
