"""Tests for the extension modules: airspace, plan IO, flight logs,
detection latency."""

import math

import numpy as np
import pytest

from repro.missions import valencia_missions
from repro.missions.plan_io import load_plans, plan_from_dict, plan_to_dict, save_plans
from repro.missions.valencia import VALENCIA_ORIGIN
from repro.mathutils import GeodeticReference
from repro.telemetry import FlightRecorder
from repro.telemetry.flightlog import load_flight_log, save_flight_log
from repro.uspace.airspace import ContainmentMonitor, OperatingArea


# ---------------------------------------------------------------- Airspace


def test_area_defaults_match_paper_zone():
    area = OperatingArea()
    assert area.area_km2 == pytest.approx(25.0)
    assert area.ceiling_m == pytest.approx(18.29)


def test_area_contains():
    area = OperatingArea(half_extent_m=100.0, ceiling_m=20.0)
    assert area.contains(np.array([0.0, 0.0, -10.0]))
    assert area.contains(np.array([100.0, -100.0, -20.0]))  # boundary inclusive
    assert not area.contains(np.array([101.0, 0.0, -10.0]))
    assert not area.contains(np.array([0.0, 0.0, -25.0]))  # above ceiling
    assert not area.contains(np.array([0.0, 0.0, 5.0]))  # underground


def test_violation_distance():
    area = OperatingArea(half_extent_m=100.0, ceiling_m=20.0)
    assert area.violation_distance_m(np.array([0.0, 0.0, -10.0])) == 0.0
    assert area.violation_distance_m(np.array([103.0, 0.0, -10.0])) == pytest.approx(3.0)
    assert area.violation_distance_m(np.array([0.0, 0.0, -24.0])) == pytest.approx(4.0)
    # Corner excursion combines axes.
    d = area.violation_distance_m(np.array([103.0, 104.0, -10.0]))
    assert d == pytest.approx(5.0)


def test_area_validation():
    with pytest.raises(ValueError):
        OperatingArea(half_extent_m=0.0)
    with pytest.raises(ValueError):
        OperatingArea(ceiling_m=0.0, floor_m=0.0)


def test_containment_monitor_counts_episodes():
    monitor = ContainmentMonitor(OperatingArea(half_extent_m=10.0, ceiling_m=20.0))
    inside = np.array([0.0, 0.0, -10.0])
    outside = np.array([50.0, 0.0, -10.0])
    for pos in (inside, outside, outside, inside, outside, inside):
        monitor.check(pos)
    assert monitor.episodes == 2
    assert monitor.instants_outside == 3
    assert monitor.worst_excursion_m == pytest.approx(40.0)


def test_valencia_missions_fit_operating_area():
    area = OperatingArea()
    for plan in valencia_missions(scale=1.0):
        for wp in plan.waypoints:
            assert area.contains(wp.array), (plan.mission_id, wp)


# ----------------------------------------------------------------- Plan IO


def test_plan_round_trip_single():
    reference = GeodeticReference(VALENCIA_ORIGIN)
    plan = valencia_missions(scale=0.3)[6]
    restored = plan_from_dict(plan_to_dict(plan, reference), reference)
    assert restored.mission_id == plan.mission_id
    assert restored.drone == plan.drone
    assert restored.has_turns == plan.has_turns
    assert len(restored.waypoints) == len(plan.waypoints)
    for a, b in zip(restored.waypoints, plan.waypoints):
        assert np.allclose(a.array, b.array, atol=1e-3)
        assert a.acceptance_radius_m == b.acceptance_radius_m


def test_scenario_save_load(tmp_path):
    plans = valencia_missions(scale=0.3)
    path = tmp_path / "valencia.json"
    save_plans(plans, VALENCIA_ORIGIN, path)
    loaded, origin = load_plans(path)
    assert origin == VALENCIA_ORIGIN
    assert len(loaded) == 10
    for a, b in zip(loaded, plans):
        assert a.mission_id == b.mission_id
        assert math.isclose(a.cruise_length_m, b.cruise_length_m, rel_tol=1e-6)


def test_load_plans_rejects_bad_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"schema_version": 99}')
    with pytest.raises(ValueError):
        load_plans(path)


# ------------------------------------------------------------- Flight log


def _recorded():
    rec = FlightRecorder(rate_hz=1.0)
    for i in range(5):
        pos = np.array([float(i), 0.0, -15.0])
        rec.maybe_record(
            float(i), pos, pos + 0.1, np.array([1.0, 0.0, 0.0]),
            np.array([1.0, 0.0, 0.0]), 0.05, "mission", i in (2, 3),
        )
    return rec


def test_flight_log_round_trip(tmp_path):
    rec = _recorded()
    path = tmp_path / "flight.jsonl"
    save_flight_log(rec, path, metadata={"mission_id": 4, "fault": "Acc Zeros"})
    samples, meta = load_flight_log(path)
    assert meta["mission_id"] == 4
    assert len(samples) == 5
    assert samples[2].fault_active and not samples[0].fault_active
    assert np.allclose(samples[1].position_true_ned, [1.0, 0.0, -15.0])
    assert samples[4].phase == "mission"


def test_flight_log_rejects_truncation(tmp_path):
    rec = _recorded()
    path = tmp_path / "flight.jsonl"
    save_flight_log(rec, path)
    lines = path.read_text().strip().split("\n")
    path.write_text("\n".join(lines[:-1]) + "\n")  # drop last sample
    with pytest.raises(ValueError):
        load_flight_log(path)


def test_flight_log_rejects_non_log(tmp_path):
    path = tmp_path / "x.jsonl"
    path.write_text('{"type": "something"}\n')
    with pytest.raises(ValueError):
        load_flight_log(path)


# ---------------------------------------------------- Detection latency


def test_detection_latency_measured():
    from repro.core.detection import measure_detection, render_detection_report
    from repro.core.faults import FaultSpec, FaultTarget, FaultType

    plan = valencia_missions(scale=0.1)[3]
    fault = FaultSpec(FaultType.RANDOM, FaultTarget.GYRO, start_time_s=20.0, duration_s=30.0)
    record = measure_detection(plan, fault)
    assert record.detected
    # Detection needs at least the debounce window...
    assert record.detection_latency_s >= 0.3
    # ...and the failsafe (if it engaged) at least the isolation time
    # after that (the paper's >= 1900 ms observation).
    if record.failsafe_latency_s is not None:
        assert record.failsafe_latency_s >= record.detection_latency_s + 1.8

    report = render_detection_report([record], "detection")
    assert "Gyro Random" in report
