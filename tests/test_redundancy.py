"""Tests for the redundant-IMU subsystem: scope, bank, voter, recovery.

Covers the four layers of the redundancy stack plus the two
end-to-end acceptance criteria of the redundancy PR:

* ``FaultScope`` semantics and serialization round-trip;
* ``ImuBank`` member seeding (member 0 must be bit-identical to the
  legacy single IMU) and per-member injection;
* the debounced median :class:`~repro.redundancy.voter.Voter`,
  including a hypothesis property: with a minority of corrupted
  members, the voter never prefers a corrupted member over a clean one;
* :class:`~repro.redundancy.recovery.RedundancyManager` switchover /
  exhaustion / degraded-fallback state machine;
* the failsafe's isolation-outcome reporting (window restart on
  switchover, success on recovery, failure on engagement);
* a golden campaign proving ``FaultScope.ALL`` (the default) is
  bit-identical to the pre-redundancy code, and a deterministic
  crash-to-completed rescue under ``PRIMARY_ONLY`` + mitigation.
"""

import dataclasses
import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.campaign import CampaignConfig, run_campaign
from repro.core.experiments import build_experiment_matrix
from repro.core.faults import FaultScope, FaultSpec, FaultTarget, FaultType
from repro.core.results import fault_spec_from_dict, fault_spec_to_dict
from repro.estimation.health import EstimatorHealth
from repro.flightstack import FailsafeEngine, FailsafeState, FlightParams
from repro.flightstack.failsafe import IsolationOutcome
from repro.redundancy import (
    MEMBER_SEED_STRIDE,
    ImuBank,
    RedundancyConfig,
    RedundancyManager,
    RecoveryState,
    Voter,
    VoterParams,
)
from repro.sensors.imu import Imu, ImuSample

GOLDEN = Path(__file__).parent / "data" / "golden_tiny_campaign.json"

FORCE = np.array([0.1, -0.2, -9.81])
RATE = np.array([0.02, -0.01, 0.005])


def sample_at(accel, gyro, t=0.0):
    return ImuSample(time_s=t, accel=np.asarray(accel, float), gyro=np.asarray(gyro, float))


def spec(scope=FaultScope.ALL, members=(), fault_type=FaultType.FIXED,
         target=FaultTarget.IMU):
    return FaultSpec(fault_type, target, 10.0, 5.0, seed=3,
                     scope=scope, scope_members=members)


# -- FaultScope ------------------------------------------------------


def test_scope_all_affects_every_member():
    s = spec(FaultScope.ALL)
    assert all(s.affects_member(k) for k in range(5))


def test_scope_primary_only_affects_member_zero():
    s = spec(FaultScope.PRIMARY_ONLY)
    assert s.affects_member(0)
    assert not any(s.affects_member(k) for k in range(1, 5))


def test_scope_members_affects_the_listed_subset():
    s = spec(FaultScope.MEMBERS, members=(1, 2))
    assert [s.affects_member(k) for k in range(4)] == [False, True, True, False]


def test_scope_members_requires_a_member_list():
    with pytest.raises(ValueError):
        spec(FaultScope.MEMBERS)
    with pytest.raises(ValueError):
        spec(FaultScope.ALL, members=(1,))


def test_fault_spec_scope_round_trips_through_serialization():
    s = spec(FaultScope.MEMBERS, members=(0, 2))
    assert fault_spec_from_dict(fault_spec_to_dict(s)) == s


def test_fault_spec_from_dict_defaults_to_all_scope():
    # Pre-redundancy payloads (schema v1/v2) carry no scope keys.
    payload = fault_spec_to_dict(spec())
    del payload["scope"], payload["scope_members"]
    restored = fault_spec_from_dict(payload)
    assert restored.scope is FaultScope.ALL
    assert restored.scope_members == ()


# -- ImuBank ---------------------------------------------------------


def test_bank_member_zero_is_bit_identical_to_legacy_imu():
    bank = ImuBank(None, num_members=3, base_seed=42)
    legacy = Imu(seed=42)
    for i in range(20):
        t = i * 0.01
        samples = bank.sample(t, FORCE, RATE, 0.01)
        ref = legacy.sample(t, FORCE, RATE, 0.01)
        assert np.array_equal(samples[0].accel, ref.accel)
        assert np.array_equal(samples[0].gyro, ref.gyro)


def test_bank_members_have_independent_noise_streams():
    bank = ImuBank(None, num_members=3, base_seed=42)
    samples = bank.sample(0.0, FORCE, RATE, 0.01)
    assert not np.array_equal(samples[0].accel, samples[1].accel)
    assert not np.array_equal(samples[1].gyro, samples[2].gyro)


def test_bank_seed_stride_matches_contract():
    bank = ImuBank(None, num_members=2, base_seed=7)
    twin = Imu(seed=7 + MEMBER_SEED_STRIDE)
    got = bank.sample(0.0, FORCE, RATE, 0.01)[1]
    ref = twin.sample(0.0, FORCE, RATE, 0.01)
    assert np.array_equal(got.accel, ref.accel)


def test_bank_primary_only_fault_corrupts_only_member_zero():
    s = spec(FaultScope.PRIMARY_ONLY, fault_type=FaultType.ZEROS)
    bank = ImuBank(s, num_members=3, base_seed=1)
    inside = s.start_time_s + 1.0
    assert bank.corrupted_members(inside) == (0,)
    samples = bank.sample(inside, FORCE, RATE, 0.01)
    assert np.allclose(samples[0].accel, 0.0)
    assert not np.allclose(samples[1].accel, 0.0)
    assert bank.corrupted_members(s.start_time_s - 1.0) == ()


def test_bank_injector_seeds_are_member_unique():
    s = spec(FaultScope.ALL, fault_type=FaultType.RANDOM)
    bank = ImuBank(s, num_members=3, base_seed=1)
    inside = s.start_time_s + 1.0
    samples = bank.sample(inside, FORCE, RATE, 0.01)
    # RANDOM replaces the signal with seeded noise; distinct behaviour
    # seeds per member must give distinct corrupted streams.
    assert not np.array_equal(samples[0].accel, samples[1].accel)
    assert not np.array_equal(samples[1].accel, samples[2].accel)


def test_redundancy_config_validation():
    with pytest.raises(ValueError):
        RedundancyConfig(enabled=True, num_members=1)
    with pytest.raises(ValueError):
        RedundancyConfig(num_members=0)


# -- Voter -----------------------------------------------------------


def clean_bank_samples(n=3):
    return [sample_at([0.0, 0.0, -9.81], [0.0, 0.0, 0.0]) for _ in range(n)]


def corrupted_bank_samples(bad_index, offset=50.0, n=3):
    samples = clean_bank_samples(n)
    bad = samples[bad_index]
    samples[bad_index] = sample_at(bad.accel + offset, bad.gyro, bad.time_s)
    return samples


def test_voter_clean_bank_is_healthy():
    voter = Voter(num_members=3)
    report = voter.update(clean_bank_samples(), dt=0.01)
    assert report.unhealthy == (False, False, False)
    assert report.healthy_members == (0, 1, 2)


def test_voter_mismatch_needs_debounce():
    voter = Voter(VoterParams(mismatch_debounce_s=0.15), num_members=3)
    report = voter.update(corrupted_bank_samples(1), dt=0.01)
    assert report.mismatched[1] and not report.unhealthy[1]
    for _ in range(20):
        report = voter.update(corrupted_bank_samples(1), dt=0.01)
    assert report.unhealthy[1]
    assert report.healthy_members == (0, 2)


def test_voter_readmission_is_slower_than_flagging():
    params = VoterParams(mismatch_debounce_s=0.1, readmit_debounce_s=0.5)
    voter = Voter(params, num_members=3)
    for _ in range(15):
        voter.update(corrupted_bank_samples(2), dt=0.01)
    report = voter.update(clean_bank_samples(), dt=0.01)
    assert report.unhealthy[2]  # one clean tick is not re-admission
    for _ in range(30):
        report = voter.update(clean_bank_samples(), dt=0.01)
    assert report.unhealthy[2]  # 0.3 s clean: still flagged
    for _ in range(25):
        report = voter.update(clean_bank_samples(), dt=0.01)
    assert not report.unhealthy[2]  # past 0.5 s: re-admitted


def test_voter_preferred_member_excludes_and_breaks_ties_low():
    voter = Voter(num_members=3)
    report = voter.update(clean_bank_samples(), dt=0.01)
    assert report.preferred_member() == 0
    assert report.preferred_member(exclude={0}) == 1
    assert report.preferred_member(exclude={0, 1, 2}) is None


def test_voter_rejects_wrong_sample_count_and_bad_dt():
    voter = Voter(num_members=3)
    with pytest.raises(ValueError):
        voter.update(clean_bank_samples(2), dt=0.01)
    with pytest.raises(ValueError):
        voter.update(clean_bank_samples(3), dt=0.0)


finite = st.floats(-50.0, 50.0, allow_nan=False)
triads = st.builds(lambda x, y, z: np.array([x, y, z]), finite, finite, finite)


@given(
    base_accel=triads,
    base_gyro=st.builds(lambda x, y, z: np.array([x, y, z]) * 0.05,
                        finite, finite, finite),
    bad_index=st.integers(0, 2),
    accel_offset=st.floats(10.0, 500.0),
    gyro_offset=st.floats(1.0, 30.0),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=100, deadline=None)
def test_voter_never_prefers_a_corrupted_minority_member(
    base_accel, base_gyro, bad_index, accel_offset, gyro_offset, seed
):
    """With one corrupted member out of three, the median is formed
    from healthy streams, so after the debounce the corrupted member is
    unhealthy and never preferred while a clean candidate exists."""
    rng = np.random.default_rng(seed)
    voter = Voter(num_members=3)
    report = None
    for _ in range(30):  # 0.3 s at 100 Hz: past the 0.15 s debounce
        samples = []
        for i in range(3):
            accel = base_accel + rng.normal(scale=0.05, size=3)
            gyro = base_gyro + rng.normal(scale=0.005, size=3)
            if i == bad_index:
                accel = accel + accel_offset
                gyro = gyro + gyro_offset
            samples.append(sample_at(accel, gyro))
        report = voter.update(samples, dt=0.01)
    assert report.unhealthy[bad_index]
    for exclude in (set(), {(bad_index + 1) % 3}):
        preferred = report.preferred_member(exclude=exclude)
        assert preferred is not None
        assert preferred != bad_index


# -- RedundancyManager -----------------------------------------------


def test_disabled_manager_is_a_passthrough():
    manager = RedundancyManager(None, num_members=1, enabled=False)
    samples = [sample_at([1.0, 2.0, 3.0], [0.1, 0.2, 0.3])]
    selection = manager.select(0.0, samples, 0.01, isolating=True)
    assert selection.sample is samples[0]
    assert selection.state is RecoveryState.NOMINAL
    assert not selection.switched and not selection.exhausted


def run_manager(manager, make_samples, ticks, isolating, t0=0.0):
    selection = None
    for i in range(ticks):
        selection = manager.select(t0 + i * 0.01, make_samples(), 0.01, isolating)
    return selection


def test_manager_does_not_switch_outside_isolation():
    manager = RedundancyManager(None, num_members=3, enabled=True)
    sel = run_manager(manager, lambda: corrupted_bank_samples(0), 50, isolating=False)
    assert manager.primary == 0
    assert sel.state is RecoveryState.NOMINAL
    assert not manager.events


def test_manager_switches_away_from_unhealthy_primary_when_isolating():
    manager = RedundancyManager(None, num_members=3, enabled=True)
    run_manager(manager, lambda: corrupted_bank_samples(0), 50, isolating=False)
    switched_ticks = []
    for i in range(10):
        sel = manager.select(1.0 + i * 0.01, corrupted_bank_samples(0), 0.01,
                             isolating=True)
        if sel.switched:
            switched_ticks.append(i)
    assert switched_ticks == [0]  # edge-triggered, exactly once
    assert manager.primary != 0
    assert manager.state is RecoveryState.SWITCHED
    assert manager.failed_members == {0}
    assert len(manager.events) == 1
    assert manager.events[0].from_member == 0


def all_corrupted_samples():
    # Three mutually disagreeing streams: every member mismatches the
    # bank median, so no healthy candidate exists.
    return [
        sample_at([100.0, 0.0, 0.0], [10.0, 0.0, 0.0]),
        sample_at([0.0, 100.0, 0.0], [0.0, 10.0, 0.0]),
        sample_at([0.0, 0.0, 100.0], [0.0, 0.0, 10.0]),
    ]


def test_manager_degrades_to_median_when_no_healthy_member_remains():
    manager = RedundancyManager(None, num_members=3, enabled=True)
    exhausted_count = 0
    sel = None
    for i in range(60):
        sel = manager.select(i * 0.01, all_corrupted_samples(), 0.01, isolating=True)
        exhausted_count += sel.exhausted
    assert manager.state is RecoveryState.DEGRADED
    assert exhausted_count == 1  # edge-triggered
    report = manager.last_report
    assert np.allclose(sel.sample.accel, report.median_accel)
    assert np.allclose(sel.sample.gyro, report.median_gyro)


def test_manager_leaves_degraded_when_primary_recovers():
    manager = RedundancyManager(None, num_members=3, enabled=True)
    run_manager(manager, all_corrupted_samples, 60, isolating=True)
    assert manager.degraded
    sel = run_manager(manager, clean_bank_samples, 60, isolating=False)
    assert not manager.degraded
    # No switchover ever succeeded, so recovery lands back on NOMINAL.
    assert sel.state is RecoveryState.NOMINAL


def test_manager_describe_is_total_over_states():
    manager = RedundancyManager(None, num_members=3, enabled=True)
    for state in RecoveryState:
        manager.state = state
        assert manager.describe()


# -- Failsafe isolation reporting ------------------------------------


HEALTHY = EstimatorHealth(False, False, False, 0.0)
SPINNING = np.array([2.0, 0.0, 0.0])
CALM = np.zeros(3)


def drive(fs, duration_s, gyro, start=0.0, dt=0.01):
    t = start
    while t < start + duration_s:
        fs.update(t, gyro, 0.0, HEALTHY, in_flight=True)
        t += dt
    return t


def isolating_engine():
    fs = FailsafeEngine(FlightParams())
    t = drive(fs, 1.0, SPINNING)
    assert fs.state == FailsafeState.ISOLATING
    return fs, t


def test_report_isolation_is_ignored_outside_isolating():
    fs = FailsafeEngine(FlightParams())
    fs.report_isolation(0.0, IsolationOutcome.SWITCHED)
    assert fs.isolation_outcome is IsolationOutcome.NOT_ATTEMPTED


def test_switchover_restarts_the_isolation_window():
    params = FlightParams()
    fs, t = isolating_engine()
    fs.report_isolation(t, IsolationOutcome.SWITCHED)
    assert fs.isolation_outcome is IsolationOutcome.SWITCHED
    # The fault persists: engagement now happens a full isolation
    # window after the switch, not after the original detection.
    drive(fs, params.fs_isolation_time_s - 0.2, SPINNING, start=t)
    assert fs.state == FailsafeState.ISOLATING
    drive(fs, 0.5, SPINNING, start=t + params.fs_isolation_time_s - 0.2)
    assert fs.state == FailsafeState.ENGAGED
    assert fs.isolation_succeeded is False


def test_condition_clearing_during_isolation_counts_as_success():
    fs, t = isolating_engine()
    fs.report_isolation(t, IsolationOutcome.SWITCHED)
    drive(fs, 1.5, CALM, start=t)
    assert fs.state == FailsafeState.NOMINAL
    assert fs.isolation_succeeded is True
    assert fs.status().isolation_outcome is IsolationOutcome.SWITCHED


def test_exhausted_isolation_still_engages():
    params = FlightParams()
    fs, t = isolating_engine()
    fs.report_isolation(t, IsolationOutcome.EXHAUSTED)
    drive(fs, params.fs_isolation_time_s + 1.5, SPINNING, start=t)
    assert fs.state == FailsafeState.ENGAGED
    assert fs.isolation_outcome is IsolationOutcome.EXHAUSTED
    assert fs.isolation_succeeded is False


def test_reentering_isolation_resets_the_outcome():
    fs, t = isolating_engine()
    fs.report_isolation(t, IsolationOutcome.SWITCHED)
    t = drive(fs, 1.5, CALM, start=t)  # recover to NOMINAL
    assert fs.isolation_succeeded is True
    drive(fs, 1.0, SPINNING, start=t)  # second episode begins
    assert fs.state == FailsafeState.ISOLATING
    assert fs.isolation_outcome is IsolationOutcome.NOT_ATTEMPTED
    assert fs.isolation_succeeded is None


# -- End-to-end acceptance -------------------------------------------


TINY = CampaignConfig(
    scale=0.1, mission_ids=(2,), durations_s=(2.0,), injection_time_s=15.0
)


def test_all_scope_campaign_matches_pre_redundancy_golden():
    """The acceptance criterion: with the default ALL scope and no
    mitigation, the campaign is bit-identical to the code before the
    redundancy subsystem existed (golden captured at that commit)."""
    golden = json.loads(GOLDEN.read_text())
    campaign = run_campaign(TINY)
    assert len(campaign.results) == len(golden["results"])
    for result, want in zip(campaign.results, golden["results"]):
        got = {
            "experiment_id": result.experiment_id,
            "fault_label": result.fault_label,
            "outcome": result.outcome.value,
            "inner_violations": result.inner_violations,
            "outer_violations": result.outer_violations,
            "flight_duration_s": round(result.flight_duration_s, 6),
            "distance_km": round(result.distance_km, 9),
            "max_deviation_m": round(result.max_deviation_m, 9),
        }
        assert got == want, f"case {result.experiment_id} diverged from golden"


def test_primary_only_mitigation_rescues_a_baseline_crash():
    """The acceptance criterion: a fault that crashes the single-IMU
    baseline completes its mission with the 3-member bank, via a real
    switchover and a successful isolation episode."""
    config = CampaignConfig(
        scale=0.1, mission_ids=(3,), durations_s=(10.0,),
        injection_time_s=15.0, include_gold=False,
        fault_scope=FaultScope.PRIMARY_ONLY,
    )
    specs = [
        s
        for s in build_experiment_matrix(
            mission_ids=[3], durations_s=(10.0,), injection_time_s=15.0,
            base_seed=0, include_gold=False, scope=FaultScope.PRIMARY_ONLY,
        )
        if s.label == "Gyro Fixed Value"
    ]
    assert len(specs) == 1
    baseline = run_campaign(config, specs=specs).results[0]
    mitigated = run_campaign(
        dataclasses.replace(config, mitigation=True), specs=specs
    ).results[0]

    assert baseline.crashed and not baseline.mitigated
    assert mitigated.completed and mitigated.mitigated
    assert mitigated.imu_switchovers == 1
    assert mitigated.isolation_succeeded is True
    assert mitigated.fault_scope == "primary_only"
