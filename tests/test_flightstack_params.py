"""Unit tests for the flight parameter system."""

import math

import pytest

from repro.flightstack import FlightParams


def test_paper_defaults():
    params = FlightParams()
    # The paper quotes PX4's 60 deg/s default gyro threshold and a
    # minimum 1900 ms isolation time before failsafe.
    assert math.isclose(params.fd_gyro_rate_threshold_rad_s, math.radians(60.0))
    assert params.fs_isolation_time_s == pytest.approx(1.9)


def test_get_by_field_name():
    params = FlightParams()
    assert params.get("takeoff_speed_m_s") == params.takeoff_speed_m_s


def test_get_by_px4_alias():
    params = FlightParams()
    assert params.get("FD_GYRO_RATE") == params.fd_gyro_rate_threshold_rad_s
    assert params.get("MPC_TKO_SPEED") == params.takeoff_speed_m_s


def test_set_by_alias():
    params = FlightParams()
    params.set("FD_GYRO_RATE", 1.0)
    assert params.fd_gyro_rate_threshold_rad_s == 1.0


def test_set_by_field_name():
    params = FlightParams()
    params.set("fs_isolation_time_s", 2.5)
    assert params.fs_isolation_time_s == 2.5


def test_unknown_parameter_rejected():
    params = FlightParams()
    with pytest.raises(KeyError):
        params.get("NOT_A_PARAM")
    with pytest.raises(KeyError):
        params.set("NOT_A_PARAM", 1.0)
