"""Integration tests: full missions through the complete stack.

These run the real 100 Hz loop, so they use small-scale missions to keep
the suite fast. Scale only shrinks geometry; every code path (takeoff,
cruise, turns, landing, fault windows, failsafe, crash handling) is the
same as at paper scale.
"""

import pytest

from repro import (
    FaultSpec,
    FaultTarget,
    FaultType,
    MissionOutcome,
    SystemConfig,
    UavSystem,
    valencia_missions,
)
from repro.telemetry import CoreBroker, Tracker

SCALE = 0.1


@pytest.fixture(scope="module")
def plans():
    return {p.mission_id: p for p in valencia_missions(scale=SCALE)}


@pytest.fixture(scope="module")
def gold_result(plans):
    return UavSystem(plans[4]).run()


def test_gold_mission_completes(gold_result):
    assert gold_result.outcome == MissionOutcome.COMPLETED


def test_gold_mission_zero_violations(gold_result):
    """The paper's baseline: gold runs never violate their bubbles."""
    assert gold_result.inner_violations == 0
    assert gold_result.outer_violations == 0


def test_gold_mission_metrics_sane(gold_result, plans):
    plan = plans[4]
    assert gold_result.flight_duration_s > 20.0
    # EKF-estimated distance close to the route length (within 35%:
    # the estimate integrates noise and vertical legs).
    assert gold_result.distance_km * 1000.0 > plan.cruise_length_m * 0.8
    assert gold_result.crash_time_s is None
    assert gold_result.failsafe_time_s is None
    assert gold_result.fault_label == "Gold Run"


def test_violent_fault_fails_mission(plans):
    fault = FaultSpec(FaultType.MIN, FaultTarget.IMU, start_time_s=20.0, duration_s=5.0)
    result = UavSystem(plans[4], fault=fault).run()
    assert result.outcome != MissionOutcome.COMPLETED


def test_gyro_random_triggers_failsafe_or_crash(plans):
    fault = FaultSpec(FaultType.RANDOM, FaultTarget.GYRO, start_time_s=20.0, duration_s=30.0)
    result = UavSystem(plans[4], fault=fault).run()
    assert result.outcome in (MissionOutcome.FAILSAFE, MissionOutcome.CRASHED)


def test_mild_accel_fault_survivable_with_violations(plans):
    fault = FaultSpec(FaultType.ZEROS, FaultTarget.ACCEL, start_time_s=20.0, duration_s=10.0)
    result = UavSystem(plans[4], fault=fault).run()
    assert result.inner_violations > 0  # the deviation is visible to U-space


def test_determinism_same_seed(plans):
    fault = FaultSpec(FaultType.RANDOM, FaultTarget.IMU, 20.0, 5.0, seed=11)
    a = UavSystem(plans[2], config=SystemConfig(seed=1), fault=fault).run()
    b = UavSystem(plans[2], config=SystemConfig(seed=1), fault=fault).run()
    assert a.outcome == b.outcome
    assert a.flight_duration_s == b.flight_duration_s
    assert a.inner_violations == b.inner_violations
    assert a.distance_km == b.distance_km


def test_telemetry_published_through_broker_tree(plans):
    core = CoreBroker()
    tracker = Tracker(core)
    system = UavSystem(plans[2], broker=core)
    result = system.run()
    assert result.outcome == MissionOutcome.COMPLETED
    # ~1 track per second of flight.
    count = tracker.track_count(2)
    assert count >= int(result.flight_duration_s * 0.8)
    latest = tracker.latest(2)
    assert latest is not None
    assert latest.airspeed_m_s >= 0.0


def test_recorder_captures_fault_window(plans):
    fault = FaultSpec(FaultType.NOISE, FaultTarget.ACCEL, start_time_s=20.0, duration_s=10.0)
    system = UavSystem(plans[4], fault=fault)
    system.run()
    flags = [s.fault_active for s in system.recorder.samples]
    assert any(flags)
    assert not flags[0]  # clean at takeoff


def test_run_respects_max_time(plans):
    system = UavSystem(plans[4])
    result = system.run(max_time_s=5.0)
    assert result.outcome == MissionOutcome.TIMEOUT
    assert result.flight_duration_s <= 6.0


def test_tracking_instances_about_one_hz(plans, gold_result):
    assert gold_result.tracking_instances == pytest.approx(
        gold_result.flight_duration_s, rel=0.15
    )
