"""Unit tests for the experiment matrix (paper Sec. III-B)."""

import pytest

from repro.core import build_experiment_matrix
from repro.core.experiments import PAPER_DURATIONS_S, PAPER_INJECTION_TIME_S
from repro.core.faults import FaultTarget, FaultType


def test_full_matrix_is_850_cases():
    specs = build_experiment_matrix()
    assert len(specs) == 850


def test_gold_runs_are_ten_and_first():
    specs = build_experiment_matrix()
    gold = [s for s in specs if s.is_gold]
    assert len(gold) == 10
    assert all(s.is_gold for s in specs[:10])


def test_faulty_cases_count_840():
    specs = build_experiment_matrix()
    faulty = [s for s in specs if not s.is_gold]
    # 7 fault types x 3 targets x 10 missions x 4 durations (paper: 840).
    assert len(faulty) == 840


def test_injection_time_default_is_paper_90s():
    specs = build_experiment_matrix()
    assert all(
        s.fault.start_time_s == PAPER_INJECTION_TIME_S for s in specs if not s.is_gold
    )


def test_durations_cover_paper_sweep():
    specs = build_experiment_matrix()
    durations = {s.fault.duration_s for s in specs if not s.is_gold}
    assert durations == set(PAPER_DURATIONS_S)


def test_each_cell_unique():
    specs = build_experiment_matrix()
    cells = {
        (s.mission_id, s.fault.fault_type, s.fault.target, s.fault.duration_s)
        for s in specs
        if not s.is_gold
    }
    assert len(cells) == 840


def test_experiment_ids_unique_and_sequential():
    specs = build_experiment_matrix()
    ids = [s.experiment_id for s in specs]
    assert ids == list(range(850))


def test_seeds_deterministic_and_distinct_per_cell():
    a = build_experiment_matrix()
    b = build_experiment_matrix()
    assert all(
        x.fault.seed == y.fault.seed for x, y in zip(a, b) if not x.is_gold
    )
    seeds = [s.fault.seed for s in a if not s.is_gold]
    assert len(set(seeds)) == len(seeds)


def test_base_seed_changes_case_seeds():
    a = build_experiment_matrix(base_seed=0)
    b = build_experiment_matrix(base_seed=1)
    pairs = [(x.fault.seed, y.fault.seed) for x, y in zip(a, b) if not x.is_gold]
    assert all(x != y for x, y in pairs)


def test_subset_missions():
    specs = build_experiment_matrix(mission_ids=[1, 2])
    assert len(specs) == 2 + 2 * 21 * 4


def test_no_gold_option():
    specs = build_experiment_matrix(include_gold=False)
    assert len(specs) == 840
    assert not any(s.is_gold for s in specs)


def test_restricted_fault_types_and_targets():
    specs = build_experiment_matrix(
        fault_types=(FaultType.ZEROS,), targets=(FaultTarget.GYRO,), include_gold=False
    )
    assert len(specs) == 10 * 4
    assert all(s.fault.fault_type == FaultType.ZEROS for s in specs)


def test_labels():
    specs = build_experiment_matrix()
    assert specs[0].label == "Gold Run"
    assert specs[0].duration_s is None
    faulty = [s for s in specs if not s.is_gold][0]
    assert faulty.label != "Gold Run"


def test_negative_injection_time_rejected():
    with pytest.raises(ValueError):
        build_experiment_matrix(injection_time_s=-1.0)
