"""reprolint over the real tree — the tier-1 enforcement gate.

The first test is the contract: ``src/repro`` must be clean under the
full rule registry, so any change that reintroduces a banned pattern
fails the ordinary test run. The mutation tests prove the gate has
teeth: deliberately breaking an invariant in a copy of the real source
must produce the corresponding violation.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.staticcheck import all_rules, render_json, render_text, run_reprolint
from repro.staticcheck.__main__ import main as staticcheck_main
from repro.staticcheck.rules_faultmodel import ExhaustiveDispatchRule, SpecRoundTripRule

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_TREE = REPO_ROOT / "src" / "repro"


def test_repro_tree_is_clean():
    report = run_reprolint([SRC_TREE])
    assert report.clean, "\n" + render_text(report)
    assert report.files_scanned > 50
    assert len(report.rule_ids) == 11


def test_cli_exits_zero_and_emits_json_on_clean_tree(capsys):
    exit_code = staticcheck_main([str(SRC_TREE), "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert exit_code == 0
    assert payload["clean"] is True
    assert payload["violation_count"] == 0
    assert len(payload["rules"]) == 11


def test_cli_exit_codes_on_violation_and_error(tmp_path, capsys):
    bad = tmp_path / "sim"
    bad.mkdir()
    (bad / "mod.py").write_text("import time\n\ndef f():\n    return time.time()\n")
    assert staticcheck_main([str(tmp_path)]) == 1
    assert "DET002" in capsys.readouterr().out
    assert staticcheck_main([str(tmp_path / "missing")]) == 2


def test_cli_list_rules(capsys):
    assert staticcheck_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in all_rules():
        assert rule.rule_id in out


def _mutated_tree(
    tmp_path: Path, filename: str, old: str, new: str, subdir: str = "core"
) -> Path:
    """Copy one real source package with one file textually mutated."""
    dest_root = tmp_path / subdir
    dest_root.mkdir()
    for src_file in sorted((SRC_TREE / subdir).glob("*.py")):
        text = src_file.read_text()
        if src_file.name == filename:
            assert old in text, f"mutation anchor missing from {filename}"
            text = text.replace(old, new)
        (dest_root / src_file.name).write_text(text)
    return tmp_path


def test_removing_a_fault_branch_fails_fm001(tmp_path):
    """The acceptance criterion: delete one FaultType branch from
    FaultBehavior.apply and the dispatch-exhaustiveness rule must fire."""
    root = _mutated_tree(
        tmp_path,
        "faults.py",
        "        if kind == FaultType.MIN:\n            return np.full(3, -r)\n",
        "",
    )
    report = run_reprolint([root], rules=[ExhaustiveDispatchRule()])
    fm001 = [v for v in report.violations if v.rule_id == "FM001"]
    assert fm001, render_json(report)
    assert any("FaultType.MIN" in v.message for v in fm001)


def test_removing_a_fault_scope_branch_fails_fm001(tmp_path):
    """FaultScope.affects_member is an FM001-guarded dispatch: a new
    scope member without an explicit branch must fail the lint."""
    root = _mutated_tree(
        tmp_path,
        "faults.py",
        "        if self.scope is FaultScope.PRIMARY_ONLY:\n"
        "            return member_index == 0\n",
        "",
    )
    report = run_reprolint([root], rules=[ExhaustiveDispatchRule()])
    fm001 = [v for v in report.violations if v.rule_id == "FM001"]
    assert fm001, render_json(report)
    assert any("FaultScope.PRIMARY_ONLY" in v.message for v in fm001)


def test_removing_a_recovery_state_description_fails_fm001(tmp_path):
    """RECOVERY_STATE_DESCRIPTIONS is a dict-literal dispatch over
    RecoveryState; dropping an entry must fail the lint."""
    root = _mutated_tree(
        tmp_path,
        "recovery.py",
        '    RecoveryState.DEGRADED: "no healthy member; median + '
        'complementary attitude fallback",\n',
        "",
        subdir="redundancy",
    )
    report = run_reprolint([root], rules=[ExhaustiveDispatchRule()])
    fm001 = [v for v in report.violations if v.rule_id == "FM001"]
    assert fm001, render_json(report)
    assert any("RecoveryState.DEGRADED" in v.message for v in fm001)


def test_dropping_a_spec_field_from_serializer_fails_fm002(tmp_path):
    root = _mutated_tree(
        tmp_path,
        "results.py",
        '        "noise_fraction": spec.noise_fraction,\n',
        "",
    )
    report = run_reprolint([root], rules=[SpecRoundTripRule()])
    fm002 = [v for v in report.violations if v.rule_id == "FM002"]
    assert fm002, render_json(report)
    assert any("noise_fraction" in v.message for v in fm002)
