"""Property-based tests for bubble formulas, geodesy, and aggregation."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import failure_analysis, summarize
from repro.core.results import ExperimentResult
from repro.flightstack.commander import MissionOutcome
from repro.mathutils import GeoPoint, GeodeticReference
from repro.uspace import OuterBubble, inner_bubble_radius

positive = st.floats(0.0, 100.0, allow_nan=False)
radii = st.floats(0.1, 50.0, allow_nan=False)
speeds = st.floats(0.0, 30.0, allow_nan=False)
distances = st.floats(0.0, 30.0, allow_nan=False)


# ------------------------------------------------------------------ Eq. 1-3


@given(positive, positive, positive)
def test_inner_bubble_lower_bounds(d_o, d_s, d_m):
    inner = inner_bubble_radius(d_o, d_s, d_m)
    assert inner >= d_o
    assert inner >= max(d_s, d_m)
    assert math.isclose(inner, d_o + max(d_s, d_m))


@given(radii, st.floats(1.0, 5.0), st.lists(st.tuples(speeds, distances), min_size=1, max_size=30))
def test_outer_never_below_inner_and_r_monotone(inner, r, track):
    """Outer >= inner always holds (paper: inner is the minimum)."""
    plain = OuterBubble(inner, 1.0)
    scaled = OuterBubble(inner, r)
    for airspeed, covered in track:
        outer_plain = plain.update(airspeed, covered)
        outer_scaled = scaled.update(airspeed, covered)
        assert outer_plain >= inner - 1e-9
        assert outer_scaled >= outer_plain - 1e-9


@given(radii, st.lists(st.tuples(speeds, distances), min_size=1, max_size=30))
def test_outer_bubble_finite_and_positive(inner, track):
    bubble = OuterBubble(inner)
    for airspeed, covered in track:
        out = bubble.update(airspeed, covered)
        assert math.isfinite(out)
        assert out > 0.0


# ----------------------------------------------------------------- Geodesy


coords = st.tuples(
    st.floats(-80.0, 80.0, allow_nan=False),
    st.floats(-179.0, 179.0, allow_nan=False),
    st.floats(-100.0, 1000.0, allow_nan=False),
)


@given(coords, st.tuples(st.floats(-5000, 5000), st.floats(-5000, 5000), st.floats(-500, 500)))
@settings(max_examples=100)
def test_geodesy_round_trip(origin, ned):
    ref = GeodeticReference(GeoPoint(*origin))
    ned_arr = np.array(ned)
    back = ref.to_local(ref.to_geodetic(ned_arr))
    assert np.allclose(back, ned_arr, atol=1e-5)


@given(coords)
def test_origin_projects_to_zero(origin):
    ref = GeodeticReference(GeoPoint(*origin))
    assert np.allclose(ref.to_local(ref.origin), 0.0, atol=1e-9)


# ------------------------------------------------------------- Aggregation


outcomes = st.sampled_from(list(MissionOutcome))


def make_result(index, outcome, inner, outer, duration, distance):
    return ExperimentResult(
        experiment_id=index,
        mission_id=1,
        fault_label="Acc Zeros",
        fault_type="zeros",
        target="accel",
        injection_duration_s=2.0,
        outcome=outcome,
        flight_duration_s=duration,
        distance_km=distance,
        inner_violations=inner,
        outer_violations=outer,
        max_deviation_m=0.0,
    )


result_lists = st.lists(
    st.builds(
        make_result,
        st.integers(0, 10_000),
        outcomes,
        st.integers(0, 100),
        st.integers(0, 100),
        st.floats(0.0, 1000.0, allow_nan=False),
        st.floats(0.0, 10.0, allow_nan=False),
    ),
    min_size=1,
    max_size=50,
)


@given(result_lists)
def test_summary_averages_bounded_by_extremes(results):
    row = summarize("x", results)
    inners = [r.inner_violations for r in results]
    assert min(inners) - 1e-9 <= row.inner_violations_avg <= max(inners) + 1e-9
    assert 0.0 <= row.completed_pct <= 100.0
    assert row.runs == len(results)


@given(result_lists)
def test_failure_split_always_sums_to_100_when_failures_exist(results):
    row = failure_analysis("x", results)
    assert 0.0 <= row.failed_pct <= 100.0
    if row.failed_pct > 0.0:
        assert math.isclose(
            row.crash_pct_of_failed + row.failsafe_pct_of_failed, 100.0, abs_tol=1e-6
        )
    else:
        assert row.crash_pct_of_failed == row.failsafe_pct_of_failed == 0.0


@given(result_lists)
def test_completion_consistent_with_failure(results):
    summary = summarize("x", results)
    failure = failure_analysis("x", results)
    assert math.isclose(summary.completed_pct + failure.failed_pct, 100.0, abs_tol=1e-6)
