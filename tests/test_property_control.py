"""Property-based tests for control-stack invariants."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control import AttitudeController, Mixer, PositionController
from repro.mathutils import quat_from_euler, quat_to_euler

angles = st.floats(-math.pi, math.pi, allow_nan=False)
accels = st.floats(-50.0, 50.0, allow_nan=False)
torques = st.floats(-2.0, 2.0, allow_nan=False)
collectives = st.floats(0.0, 1.0, allow_nan=False)


@given(
    st.builds(lambda x, y, z: np.array([x, y, z]), accels, accels, accels),
    angles,
)
@settings(max_examples=200)
def test_thrust_and_attitude_always_valid(accel_sp, yaw_sp):
    """Any acceleration demand yields a unit quaternion, a collective in
    limits, and a tilt below the configured maximum."""
    ctrl = PositionController()
    collective, q_sp = ctrl.thrust_and_attitude(accel_sp, yaw_sp)
    assert ctrl.params.min_thrust <= collective <= ctrl.params.max_thrust
    assert math.isclose(float(q_sp @ q_sp), 1.0, rel_tol=1e-9)
    roll, pitch, _ = quat_to_euler(q_sp)
    # Tilt limit with a small numerical margin.
    tilt = math.acos(max(-1.0, min(1.0, math.cos(roll) * math.cos(pitch))))
    assert tilt <= ctrl.params.max_tilt_rad + 0.05


@given(angles, angles, angles, angles, angles, angles, st.floats(0.13, 1.0))
@settings(max_examples=200)
def test_rate_setpoint_bounded(r1, p1, y1, r2, p2, y2, confidence):
    ctrl = AttitudeController()
    q_est = quat_from_euler(r1, p1, y1)
    q_sp = quat_from_euler(r2, p2, y2)
    rate = ctrl.rate_setpoint(q_est, q_sp, confidence=confidence)
    assert np.all(np.isfinite(rate))
    assert abs(rate[0]) <= ctrl.params.max_rate_rad_s * confidence + 1e-9
    assert abs(rate[1]) <= ctrl.params.max_rate_rad_s * confidence + 1e-9
    assert abs(rate[2]) <= ctrl.params.max_yaw_rate_rad_s * confidence + 1e-9


@given(collectives, st.builds(lambda a, b, c: np.array([a, b, c]), torques, torques, torques))
@settings(max_examples=200)
def test_mixer_outputs_always_valid_commands(collective, torque):
    mixer = Mixer()
    cmds = mixer.mix(collective, torque)
    assert cmds.shape == (4,)
    assert np.all(cmds >= 0.0)
    assert np.all(cmds <= 1.0)
    assert np.all(np.isfinite(cmds))


@given(collectives, st.builds(lambda a, b, c: np.array([a, b, c]), torques, torques, torques))
@settings(max_examples=200)
def test_mixer_torque_sign_preserved_under_saturation(collective, torque):
    """Desaturation shifts collective, never flips a torque direction."""
    mixer = Mixer()
    cmds = mixer.mix(collective, torque)
    fractions = cmds**2
    roll_produced = (fractions[1] + fractions[2]) - (fractions[0] + fractions[3])
    clipped = float(np.clip(torque[0], -1.0, 1.0))
    if abs(clipped) > 0.05 and 0.1 < collective < 0.9:
        assert roll_produced * clipped >= -1e-9
