"""Fast API-surface tests: config validation, rendering helpers, exports."""

import numpy as np
import pytest

import repro
from repro import SystemConfig
from repro.core.ablations import AblationPoint, render_ablation
from repro.core.faults import FaultTarget, FaultType
from repro.core.figures import FIGURE_3, FigureResult, render_ascii_trajectory
from repro.flightstack.commander import MissionOutcome
from repro.system import MissionResult


def test_public_api_exports_exist():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.{name} missing"


def test_system_config_validation():
    with pytest.raises(ValueError):
        SystemConfig(physics_dt_s=0.0)


def test_mission_result_completed_property():
    kwargs = dict(
        mission_id=1,
        flight_duration_s=10.0,
        distance_km=0.1,
        inner_violations=0,
        outer_violations=0,
        tracking_instances=10,
        max_deviation_m=0.5,
        crash_time_s=None,
        failsafe_time_s=None,
        fault_label="Gold Run",
    )
    ok = MissionResult(outcome=MissionOutcome.COMPLETED, **kwargs)
    bad = MissionResult(outcome=MissionOutcome.CRASHED, **kwargs)
    assert ok.completed and not bad.completed


def test_render_ablation_format():
    points = [
        AblationPoint("fs_isolation_time_s", 0.5, 4, 25.0, 50.0, 25.0, 3.0, 1.0),
        AblationPoint("fs_isolation_time_s", 1.9, 4, 25.0, 25.0, 50.0, 3.0, 1.0),
    ]
    text = render_ablation(points, "sweep")
    assert "sweep" in text
    assert "0.5" in text and "1.9" in text
    assert text.count("%") >= 6


def test_render_ascii_trajectory_empty():
    result = FigureResult(
        scenario=FIGURE_3,
        outcome=MissionOutcome.CRASHED,
        route_ned=np.zeros((2, 3)),
        flown_true_ned=np.zeros((0, 3)),
        flown_est_ned=np.zeros((0, 3)),
        times_s=np.zeros(0),
        injection_start_s=10.0,
        injection_end_s=40.0,
        flight_duration_s=0.0,
    )
    assert "no trajectory" in render_ascii_trajectory(result)


def test_render_ascii_trajectory_marks():
    route = np.array([[0.0, 0.0, -15.0], [100.0, 0.0, -15.0]])
    flown = np.array([[float(i * 10), 1.0, -15.0] for i in range(10)])
    times = np.linspace(0.0, 90.0, 10)
    result = FigureResult(
        scenario=FIGURE_3,
        outcome=MissionOutcome.FAILSAFE,
        route_ned=route,
        flown_true_ned=flown,
        flown_est_ned=flown,
        times_s=times,
        injection_start_s=30.0,
        injection_end_s=60.0,
        flight_duration_s=90.0,
    )
    art = render_ascii_trajectory(result)
    assert "#" in art  # injected span marked
    assert "X" in art  # end point
    assert "failsafe" in art


def test_fault_type_and_target_enums_complete():
    assert {t.value for t in FaultType} == {
        "fixed", "zeros", "freeze", "random", "min", "max", "noise",
    }
    assert {t.value for t in FaultTarget} == {"accel", "gyro", "imu"}


def test_version_string():
    assert repro.__version__.count(".") == 2
