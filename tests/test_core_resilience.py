"""Tests for the resilient campaign engine: retries, timeouts, and
harness-error degradation under injected harness failures.

The fake runners live at module level so the process-pool tests can
pickle them into worker processes.
"""

import os
import time

import pytest

from repro.core.analysis import harness_error_report
from repro.core.campaign import CampaignConfig, run_campaign
from repro.core.experiments import build_experiment_matrix
from repro.core.faults import FaultTarget, FaultType
from repro.core.resilience import (
    NO_RETRY,
    CaseTimeoutError,
    RetryPolicy,
    campaign_fingerprint,
    run_with_timeout,
)
from repro.core.results import CampaignResult, ExperimentResult, harness_error_result
from repro.core.tables import harness_error_note, table2_by_duration, table3_by_fault
from repro.flightstack.commander import MissionOutcome

CONFIG = CampaignConfig(
    scale=0.1, mission_ids=(2,), durations_s=(2.0,), injection_time_s=15.0
)


def small_specs():
    """1 gold + 4 gyro faults on mission 2 (experiment ids 0..4)."""
    return build_experiment_matrix(
        mission_ids=[2],
        durations_s=(2.0,),
        injection_time_s=15.0,
        fault_types=(FaultType.ZEROS, FaultType.MIN, FaultType.MAX, FaultType.NOISE),
        targets=(FaultTarget.GYRO,),
        include_gold=True,
    )


def fake_runner(spec, config):
    """Deterministic synthetic result — no simulator, instant."""
    return ExperimentResult(
        experiment_id=spec.experiment_id,
        mission_id=spec.mission_id,
        fault_label=spec.label,
        fault_type=spec.fault.fault_type.value if spec.fault else None,
        target=spec.fault.target.value if spec.fault else None,
        injection_duration_s=spec.duration_s,
        outcome=MissionOutcome.COMPLETED,
        flight_duration_s=100.0 + spec.experiment_id,
        distance_km=1.0,
        inner_violations=spec.experiment_id,
        outer_violations=0,
        max_deviation_m=0.5,
    )


def raise_on_2(spec, config):
    if spec.experiment_id == 2:
        raise RuntimeError("injected boom 2")
    return fake_runner(spec, config)


FLAKY_CALLS = {}


def flaky_runner(spec, config):
    """Fails case 1 twice, then succeeds (serial-only: in-process state)."""
    n = FLAKY_CALLS.get(spec.experiment_id, 0) + 1
    FLAKY_CALLS[spec.experiment_id] = n
    if spec.experiment_id == 1 and n < 3:
        raise RuntimeError("transient flake")
    return fake_runner(spec, config)


def sleepy_runner(spec, config):
    if spec.experiment_id == 1:
        time.sleep(30.0)
    return fake_runner(spec, config)


def exit_runner(spec, config):
    """Case 1 kills its worker process outright (breaks the pool)."""
    if spec.experiment_id == 1:
        os._exit(3)
    return fake_runner(spec, config)


def slow_first_runner(spec, config):
    if spec.experiment_id == 0:
        time.sleep(0.7)
    return fake_runner(spec, config)


# ---------------------------------------------------------- RetryPolicy


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_base_s=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_factor=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter_frac=1.5)
    with pytest.raises(ValueError):
        RetryPolicy(timeout_s=0.0)
    with pytest.raises(ValueError):
        NO_RETRY.delay_s(0)


def test_retry_policy_delay_deterministic_and_bounded():
    policy = RetryPolicy(
        max_attempts=5, backoff_base_s=1.0, backoff_factor=2.0,
        backoff_max_s=3.0, jitter_frac=0.1,
    )
    # Pure function of (attempt, key): identical across calls.
    assert policy.delay_s(1, key=7) == policy.delay_s(1, key=7)
    # Different keys jitter differently.
    assert policy.delay_s(1, key=7) != policy.delay_s(1, key=8)
    # Exponential growth until the cap.
    assert policy.delay_s(2, key=7) > policy.delay_s(1, key=7)
    for attempt in range(1, 6):
        assert policy.delay_s(attempt, key=7) <= 3.0 * 1.1
    # Zero base disables sleeping entirely.
    assert NO_RETRY.delay_s(1, key=0) == 0.0


def test_run_with_timeout():
    assert run_with_timeout(lambda x: x + 1, (1,), None) == 2
    assert run_with_timeout(lambda x: x + 1, (1,), 5.0) == 2
    with pytest.raises(RuntimeError, match="inner"):
        run_with_timeout(lambda: (_ for _ in ()).throw(RuntimeError("inner")), (), 5.0)
    with pytest.raises(CaseTimeoutError):
        run_with_timeout(time.sleep, (10.0,), 0.1)


# ---------------------------------------------------------- fingerprint


def test_fingerprint_ignores_workers_but_not_seed():
    import dataclasses

    specs = small_specs()
    base = campaign_fingerprint(CONFIG, specs)
    assert base == campaign_fingerprint(CONFIG, specs)
    assert base == campaign_fingerprint(
        dataclasses.replace(CONFIG, workers=4), specs
    )
    assert base != campaign_fingerprint(
        dataclasses.replace(CONFIG, base_seed=1), specs
    )
    assert base != campaign_fingerprint(
        dataclasses.replace(CONFIG, scale=0.2), specs
    )
    assert base != campaign_fingerprint(CONFIG, specs[:-1])


# ------------------------------------------------- harness-error records


def test_harness_error_result_shape():
    spec = small_specs()[2]
    record = harness_error_result(spec, RuntimeError("kaput"), attempts=3)
    assert record.is_harness_error
    assert not record.is_gold
    assert not record.completed
    assert record.attempts == 3
    assert "RuntimeError" in record.error and "kaput" in record.error
    assert record.experiment_id == spec.experiment_id


def test_raising_case_degrades_to_harness_error_serial():
    specs = small_specs()
    campaign = run_campaign(
        CONFIG,
        specs=specs,
        runner=raise_on_2,
        retry_policy=RetryPolicy(max_attempts=2),
    )
    assert len(campaign.results) == len(specs)
    errors = campaign.harness_errors
    assert [r.experiment_id for r in errors] == [2]
    assert errors[0].attempts == 2
    assert "injected boom 2" in errors[0].error
    # Harness errors never leak into the paper's statistics.
    assert len(campaign.ok) == len(specs) - 1
    assert all(not r.is_harness_error for r in campaign.gold + campaign.faulty)
    table_labels = {row.label for row in table3_by_fault(campaign)}
    assert "Gyro Min" not in table_labels  # id 2 is the Gyro Min case
    assert table2_by_duration(campaign)  # tables still render
    assert "excluded" in harness_error_note(campaign)
    report = harness_error_report(campaign)
    assert "#2" in report and "injected boom 2" in report


def test_retry_recovers_transient_failure():
    FLAKY_CALLS.clear()
    specs = small_specs()
    campaign = run_campaign(
        CONFIG,
        specs=specs,
        runner=flaky_runner,
        retry_policy=RetryPolicy(max_attempts=3),
    )
    assert not campaign.harness_errors
    by_id = {r.experiment_id: r for r in campaign.results}
    assert by_id[1].attempts == 3  # two flakes + one success
    assert by_id[0].attempts == 1
    assert FLAKY_CALLS[1] == 3


def test_retry_exhaustion_counts_attempts():
    campaign = run_campaign(
        CONFIG,
        specs=small_specs(),
        runner=raise_on_2,
        retry_policy=RetryPolicy(max_attempts=3),
    )
    assert campaign.harness_errors[0].attempts == 3


def test_timeout_enforced_serial():
    campaign = run_campaign(
        CONFIG,
        specs=small_specs(),
        runner=sleepy_runner,
        retry_policy=RetryPolicy(max_attempts=1, timeout_s=0.2),
    )
    errors = campaign.harness_errors
    assert [r.experiment_id for r in errors] == [1]
    assert "wall-clock" in errors[0].error
    assert len(campaign.ok) == 4


# ------------------------------------------------------- parallel chaos


def _parallel_config():
    import dataclasses

    return dataclasses.replace(CONFIG, workers=2)


def test_raising_case_degrades_to_harness_error_parallel():
    specs = small_specs()
    campaign = run_campaign(
        _parallel_config(),
        specs=specs,
        runner=raise_on_2,
        retry_policy=RetryPolicy(max_attempts=2),
    )
    assert len(campaign.results) == len(specs)
    assert [r.experiment_id for r in campaign.harness_errors] == [2]
    assert "injected boom 2" in campaign.harness_errors[0].error


def test_timeout_kills_wedged_worker_parallel():
    specs = small_specs()
    campaign = run_campaign(
        _parallel_config(),
        specs=specs,
        runner=sleepy_runner,
        retry_policy=RetryPolicy(max_attempts=1, timeout_s=1.0),
    )
    errors = campaign.harness_errors
    assert [r.experiment_id for r in errors] == [1]
    assert "wall-clock" in errors[0].error
    # Innocent cases in flight during the teardown still completed.
    assert sorted(r.experiment_id for r in campaign.ok) == [0, 2, 3, 4]


def test_broken_pool_rebuilt_and_offender_excluded():
    specs = small_specs()
    campaign = run_campaign(
        _parallel_config(),
        specs=specs,
        runner=exit_runner,
        retry_policy=RetryPolicy(max_attempts=2),
    )
    errors = campaign.harness_errors
    assert [r.experiment_id for r in errors] == [1]
    assert errors[0].attempts == 2
    # Every innocent case survived the pool breaks.
    assert sorted(r.experiment_id for r in campaign.ok) == [0, 2, 3, 4]


def test_results_spec_ordered_despite_completion_order():
    specs = small_specs()
    campaign = run_campaign(
        _parallel_config(), specs=specs, runner=slow_first_runner
    )
    # Case 0 finishes last but is still reported first.
    assert [r.experiment_id for r in campaign.results] == [
        s.experiment_id for s in specs
    ]


# ------------------------------------------------- config hardening


def test_config_rejects_bad_durations():
    with pytest.raises(ValueError, match="durations_s"):
        CampaignConfig(durations_s=(2.0, -5.0))
    with pytest.raises(ValueError, match="durations_s"):
        CampaignConfig(durations_s=(0.0,))
    with pytest.raises(ValueError, match="durations_s"):
        CampaignConfig(durations_s=())


def test_config_rejects_bad_mission_ids():
    with pytest.raises(ValueError, match="mission_ids"):
        CampaignConfig(mission_ids=(0,))
    with pytest.raises(ValueError, match="mission_ids"):
        CampaignConfig(mission_ids=(1, 11))
    with pytest.raises(ValueError, match="mission_ids"):
        CampaignConfig(mission_ids=())


def test_config_rejects_negative_injection_time():
    with pytest.raises(ValueError, match="injection_time_s"):
        CampaignConfig(injection_time_s=-1.0)
    # Zero and positive remain valid.
    assert CampaignConfig(injection_time_s=0.0).effective_injection_time_s == 0.0


# ------------------------------------------------------- atomic writes


def test_save_campaign_is_atomic(tmp_path, monkeypatch):
    from repro.core import io as campaign_io

    campaign = CampaignResult(
        results=[fake_runner(s, CONFIG) for s in small_specs()],
        scale=0.1,
        injection_time_s=15.0,
    )
    path = tmp_path / "results.json"
    campaign_io.save_campaign(campaign, path)
    original = path.read_text()

    # A crash mid-write (simulated at the atomic rename) must leave the
    # existing file untouched and no temp droppings behind.
    def exploding_replace(src, dst):
        raise OSError("disk full")

    monkeypatch.setattr(campaign_io.os, "replace", exploding_replace)
    with pytest.raises(OSError):
        campaign_io.save_campaign(campaign, path)
    monkeypatch.undo()
    assert path.read_text() == original
    assert [p for p in tmp_path.iterdir()] == [path]


def test_save_load_round_trip_with_harness_errors(tmp_path):
    from repro.core.io import load_campaign, save_campaign

    specs = small_specs()
    results = [fake_runner(s, CONFIG) for s in specs[:-1]]
    results.append(harness_error_result(specs[-1], RuntimeError("lost"), 3))
    campaign = CampaignResult(results=results, scale=0.1, injection_time_s=15.0)
    path = tmp_path / "campaign.json"
    save_campaign(campaign, path)
    loaded = load_campaign(path)
    assert loaded.results == campaign.results
    assert len(loaded.harness_errors) == 1
    assert loaded.harness_errors[0].error == "RuntimeError: lost"


def test_load_campaign_accepts_legacy_v1(tmp_path):
    import json

    from repro.core.io import load_campaign

    payload = {
        "schema_version": 1,
        "scale": 0.2,
        "injection_time_s": 20.0,
        "results": [
            {
                "experiment_id": 0,
                "mission_id": 2,
                "fault_label": "Gold Run",
                "fault_type": None,
                "target": None,
                "injection_duration_s": None,
                "outcome": "completed",
                "flight_duration_s": 100.0,
                "distance_km": 1.0,
                "inner_violations": 0,
                "outer_violations": 0,
                "max_deviation_m": 0.5,
            }
        ],
    }
    path = tmp_path / "v1.json"
    path.write_text(json.dumps(payload))
    loaded = load_campaign(path)
    assert loaded.results[0].attempts == 1
    assert loaded.results[0].error is None
    assert loaded.results[0].completed
