"""Unit tests for the innovation monitor and estimator health flags."""

from repro.estimation.health import ChannelHealth, EstimatorHealth, InnovationMonitor


def test_channel_records_statistics():
    ch = ChannelHealth()
    ch.record(0.5, True)
    ch.record(2.0, False)
    assert ch.total_updates == 2
    assert ch.total_rejections == 1
    assert ch.peak_test_ratio == 2.0
    assert ch.last_test_ratio == 2.0


def test_consecutive_rejections_reset_on_accept():
    ch = ChannelHealth()
    for _ in range(5):
        ch.record(2.0, False)
    assert ch.consecutive_rejections == 5
    ch.record(0.1, True)
    assert ch.consecutive_rejections == 0


def test_rejection_fraction_rolling_window():
    ch = ChannelHealth()
    for _ in range(25):
        ch.record(2.0, False)
    assert ch.rejection_fraction == 1.0
    for _ in range(25):
        ch.record(0.1, True)
    assert ch.rejection_fraction == 0.0  # old rejections aged out


def test_failed_requires_sustained_rejection():
    ch = ChannelHealth()
    for _ in range(10):
        ch.record(2.0, False)
    assert not ch.failed  # not enough samples yet
    for _ in range(10):
        ch.record(2.0, False)
    assert ch.failed


def test_failed_not_triggered_by_mixed_window():
    ch = ChannelHealth()
    for i in range(25):
        ch.record(1.0, i % 2 == 0)  # 50% rejections
    assert not ch.failed


def test_monitor_group_queries():
    mon = InnovationMonitor()
    for _ in range(20):
        mon.record("gps_vel_2", 0.0, 2.0, False)
        mon.record("gps_vel_0", 0.0, 0.1, True)
    assert mon.group_failed("gps_vel")
    assert not mon.group_failed("gps_pos")
    assert mon.group_max_consecutive("gps_vel") == 20
    assert mon.any_velocity_position_failed()


def test_monitor_clear_group_streaks_keeps_window():
    mon = InnovationMonitor()
    for _ in range(20):
        mon.record("gps_vel_1", 0.0, 2.0, False)
    mon.clear_group_streaks("gps_vel")
    assert mon.group_max_consecutive("gps_vel") == 0
    # The rolling window persists: channel still failed.
    assert mon.group_failed("gps_vel")


def test_estimator_health_from_monitor():
    mon = InnovationMonitor()
    for _ in range(20):
        mon.record("mag", 0.0, 3.0, False)
    health = EstimatorHealth.from_monitor(mon)
    assert health.yaw_aiding_failed
    assert health.degraded
    assert not health.velocity_aiding_failed


def test_attitude_invalid_threshold():
    health = EstimatorHealth(False, False, False, 0.0, attitude_std_rad=0.6)
    assert health.attitude_invalid
    assert health.degraded
    ok = EstimatorHealth(False, False, False, 0.0, attitude_std_rad=0.3)
    assert not ok.attitude_invalid
    assert not ok.degraded


def test_imu_stale_degrades():
    health = EstimatorHealth(False, False, False, 0.0, imu_stale=True)
    assert health.degraded


def test_healthy_monitor_not_degraded():
    mon = InnovationMonitor()
    for _ in range(50):
        mon.record("gps_vel_0", 0.0, 0.1, True)
        mon.record("gps_pos_0", 0.0, 0.1, True)
    assert not EstimatorHealth.from_monitor(mon).degraded
