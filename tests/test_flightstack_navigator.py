"""Unit tests for the waypoint navigator."""

import math

import numpy as np

from repro.flightstack import Navigator
from repro.missions import MissionPlan, Waypoint
from repro.missions.spec import DroneSpec


def simple_plan(waypoints=None, speed=4.0):
    drone = DroneSpec(1, "UAV-01", cruise_speed_m_s=speed, top_speed_m_s=speed * 1.4, mass_kg=1.5)
    wps = waypoints or [
        Waypoint((0.0, 0.0, -15.0)),
        Waypoint((100.0, 0.0, -15.0)),
        Waypoint((100.0, 100.0, -15.0)),
    ]
    return MissionPlan(mission_id=1, drone=drone, waypoints=wps)


def test_initial_yaw_faces_first_leg():
    nav = Navigator(simple_plan())
    out = nav.update(np.array([0.0, 0.0, -15.0]))
    assert abs(out.yaw_sp_rad) < 1e-6  # first leg is due north


def test_carrot_ahead_of_vehicle():
    nav = Navigator(simple_plan())
    nav.update(np.array([0.0, 0.0, -15.0]))  # sequence onto the first leg
    pos = np.array([10.0, 0.0, -15.0])
    out = nav.update(pos)
    assert out.position_sp_ned[0] > pos[0]


def test_velocity_feedforward_along_track():
    nav = Navigator(simple_plan())
    nav.update(np.array([0.0, 0.0, -15.0]))
    out = nav.update(np.array([20.0, 0.0, -15.0]))
    assert out.velocity_ff_ned[0] > 0.0
    assert abs(out.velocity_ff_ned[1]) < 1e-9


def test_waypoint_sequencing_on_acceptance():
    nav = Navigator(simple_plan())
    nav.update(np.array([0.0, 0.0, -15.0]))
    assert nav.active_index >= 1
    nav.update(np.array([99.0, 0.0, -15.0]))  # inside wp1 acceptance radius
    assert nav.active_index == 2


def test_overshoot_also_sequences():
    nav = Navigator(simple_plan())
    nav.update(np.array([0.0, 0.0, -15.0]))
    nav.update(np.array([110.0, 0.0, -15.0]))  # flew past wp1
    assert nav.active_index == 2


def test_mission_done_at_last_waypoint():
    nav = Navigator(simple_plan())
    nav.update(np.array([0.0, 0.0, -15.0]))
    nav.update(np.array([100.0, 0.0, -15.0]))
    nav.update(np.array([100.0, 99.5, -15.0]))
    assert nav.mission_done


def test_yaw_follows_turn():
    nav = Navigator(simple_plan())
    nav.update(np.array([0.0, 0.0, -15.0]))
    out = nav.update(np.array([101.0, 10.0, -15.0]))  # past wp1, turning east
    assert math.isclose(out.yaw_sp_rad, math.pi / 2, abs_tol=0.05)


def test_final_approach_slows_down():
    nav = Navigator(simple_plan(speed=10.0))
    nav.update(np.array([0.0, 0.0, -15.0]))
    nav.update(np.array([100.0, 0.0, -15.0]))
    out = nav.update(np.array([100.0, 95.0, -15.0]))  # 5 m from the end
    assert out.cruise_speed_m_s < 10.0


def test_reset_restarts_mission():
    nav = Navigator(simple_plan())
    nav.update(np.array([100.0, 99.5, -15.0]))
    nav.update(np.array([100.0, 99.5, -15.0]))
    nav.reset()
    assert nav.active_index == 0
    assert not nav.mission_done


def test_done_navigator_holds_last_waypoint():
    nav = Navigator(simple_plan())
    nav.update(np.array([0.0, 0.0, -15.0]))
    nav.update(np.array([100.0, 0.0, -15.0]))
    nav.update(np.array([100.0, 99.5, -15.0]))
    assert nav.mission_done
    for _ in range(3):
        out = nav.update(np.array([100.0, 99.5, -15.0]))
    assert np.allclose(out.position_sp_ned, [100.0, 100.0, -15.0])
    assert np.allclose(out.velocity_ff_ned, 0.0)
