"""Integration tests for the campaign runner and figures."""

import pytest

from repro import CampaignConfig, run_campaign, run_experiment
from repro.core.campaign import quick_config
from repro.core.experiments import ExperimentSpec, build_experiment_matrix
from repro.core.faults import FaultSpec, FaultTarget, FaultType
from repro.core.figures import (
    FIGURE_3,
    FIGURE_4,
    FIGURE_5,
    render_ascii_trajectory,
    run_figure_scenario,
)
from repro.flightstack.commander import MissionOutcome


TINY = CampaignConfig(
    scale=0.1,
    mission_ids=(2,),
    durations_s=(2.0,),
    injection_time_s=15.0,
)


def test_config_validation():
    with pytest.raises(ValueError):
        CampaignConfig(scale=0.0)
    with pytest.raises(ValueError):
        CampaignConfig(workers=0)


def test_effective_injection_time_scales():
    assert CampaignConfig(scale=1.0).effective_injection_time_s == 90.0
    assert CampaignConfig(scale=0.5).effective_injection_time_s == 45.0
    # Floor keeps the injection after the takeoff transient.
    assert CampaignConfig(scale=0.01).effective_injection_time_s == 20.0
    assert CampaignConfig(injection_time_s=33.0).effective_injection_time_s == 33.0


def test_quick_config_shape():
    cfg = quick_config(workers=2, base_seed=7)
    assert cfg.scale == 0.2
    assert cfg.workers == 2
    assert cfg.base_seed == 7


def test_single_experiment_gold():
    spec = ExperimentSpec(0, 2, None)
    result = run_experiment(spec, TINY)
    assert result.is_gold
    assert result.completed
    assert result.inner_violations == 0


def test_single_experiment_faulty():
    fault = FaultSpec(FaultType.MIN, FaultTarget.GYRO, 15.0, 2.0, seed=1)
    spec = ExperimentSpec(1, 2, fault)
    result = run_experiment(spec, TINY)
    assert result.fault_label == "Gyro Min"
    assert result.injection_duration_s == 2.0
    assert result.outcome != MissionOutcome.COMPLETED


def test_tiny_campaign_end_to_end():
    campaign = run_campaign(TINY)
    # 1 mission: 1 gold + 21 faults x 1 duration.
    assert len(campaign.results) == 22
    assert len(campaign.gold) == 1
    assert len(campaign.faulty) == 21
    assert campaign.gold[0].completed
    labels = {r.fault_label for r in campaign.faulty}
    assert len(labels) == 21


def test_campaign_deterministic():
    a = run_campaign(TINY)
    b = run_campaign(TINY)
    for x, y in zip(a.results, b.results):
        assert x.outcome == y.outcome
        assert x.inner_violations == y.inner_violations


def test_explicit_specs_subset():
    specs = build_experiment_matrix(
        mission_ids=[2],
        durations_s=(2.0,),
        injection_time_s=15.0,
        fault_types=(FaultType.ZEROS,),
        targets=(FaultTarget.GYRO,),
        include_gold=False,
    )
    campaign = run_campaign(TINY, specs=specs)
    assert len(campaign.results) == 1
    assert campaign.results[0].fault_label == "Gyro Zeros"


@pytest.mark.parametrize("scenario", [FIGURE_3, FIGURE_4, FIGURE_5])
def test_figure_scenarios_run(scenario):
    result = run_figure_scenario(scenario, scale=0.1, injection_time_s=15.0)
    assert result.flown_true_ned.shape[0] > 10
    assert result.route_ned.shape[1] == 3
    assert result.injection_end_s > result.injection_start_s
    art = render_ascii_trajectory(result)
    assert "outcome" in art
    assert "#" in art or "*" in art


def test_figure_mission_choices_match_paper():
    # Fig. 3 uses the fastest drone (25 km/h -> mission 10).
    assert FIGURE_3.mission_id == 10
    assert FIGURE_3.target is FaultTarget.ACCEL
    # Figs. 4 and 5 inject before waypoints on turning missions.
    assert FIGURE_4.target is FaultTarget.GYRO
    assert FIGURE_5.target is FaultTarget.IMU
    assert all(s.duration_s == 30.0 for s in (FIGURE_3, FIGURE_4, FIGURE_5))


def test_parallel_workers_match_serial():
    """The process-pool path must produce identical results to serial."""
    import dataclasses

    cfg_serial = dataclasses.replace(TINY, workers=1)
    cfg_parallel = dataclasses.replace(TINY, workers=2)
    specs = build_experiment_matrix(
        mission_ids=[2],
        durations_s=(2.0,),
        injection_time_s=15.0,
        fault_types=(FaultType.ZEROS, FaultType.MIN),
        targets=(FaultTarget.GYRO,),
        include_gold=True,
    )
    serial = run_campaign(cfg_serial, specs=specs)
    parallel = run_campaign(cfg_parallel, specs=specs)
    assert len(serial.results) == len(parallel.results)
    for a, b in zip(serial.results, parallel.results):
        assert a == b
