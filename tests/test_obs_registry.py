"""Unit tests for the metrics registry and the Prometheus exporter."""

import pytest

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Histogram,
    MetricsRegistry,
    get_default_registry,
    set_default_registry,
)
from repro.obs.export import parse_prometheus, render_prometheus, write_prometheus


# ------------------------------------------------------------- instruments


def test_counter_counts_and_rejects_decrements():
    reg = MetricsRegistry()
    c = reg.counter("steps_total", "Steps.").default
    c.inc()
    c.inc(2.5)
    assert reg.value("steps_total") == 3.5
    with pytest.raises(ValueError):
        c.inc(-1.0)


def test_gauge_moves_both_ways():
    reg = MetricsRegistry()
    g = reg.gauge("altitude_m").default
    g.set(15.0)
    g.inc(5.0)
    g.dec(2.0)
    assert reg.value("altitude_m") == 18.0


def test_histogram_cumulative_buckets():
    h = Histogram(buckets=(1.0, 5.0, 10.0))
    for v in (0.5, 0.7, 3.0, 7.0, 100.0):
        h.observe(v)
    assert h.bucket_counts == [2, 3, 4]  # cumulative: <=1, <=5, <=10
    assert h.count == 5
    assert h.total == pytest.approx(111.2)


def test_histogram_validates_buckets():
    with pytest.raises(ValueError):
        Histogram(buckets=())
    with pytest.raises(ValueError):
        Histogram(buckets=(5.0, 1.0))
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


# ------------------------------------------------------------- families


def test_labelled_family_children_and_default_guard():
    reg = MetricsRegistry()
    fam = reg.counter("runs_total", "Runs.", labels=("outcome",))
    fam.labels(outcome="crashed").inc()
    fam.labels(outcome="crashed").inc()
    fam.labels(outcome="completed").inc()
    assert reg.value("runs_total", outcome="crashed") == 2.0
    assert reg.value("runs_total", outcome="completed") == 1.0
    with pytest.raises(ValueError):
        fam.default  # labelled family has no unlabelled child
    with pytest.raises(ValueError):
        fam.labels(wrong="x")


def test_get_or_create_is_kind_checked():
    reg = MetricsRegistry()
    first = reg.counter("x_total")
    assert reg.counter("x_total") is first
    with pytest.raises(ValueError):
        reg.gauge("x_total")
    with pytest.raises(ValueError):
        reg.counter("x_total", labels=("a",))


def test_as_dict_snapshot():
    reg = MetricsRegistry()
    reg.counter("b_total", labels=("k",)).labels(k="v").inc(3)
    reg.gauge("a_gauge").default.set(1.5)
    reg.histogram("h_seconds", buckets=(1.0,)).default.observe(0.5)
    snap = reg.as_dict()
    assert list(snap) == ["a_gauge", "b_total", "h_seconds"]  # sorted
    assert snap["b_total"] == {"k=v": 3.0}
    assert snap["h_seconds"] == {"#count": 1.0, "#sum": 0.5}


# ------------------------------------------------------------- null mode


def test_null_registry_is_branchless_and_inert():
    before = NULL_REGISTRY.families()
    NULL_REGISTRY.counter("anything_total", labels=("x",)).labels(x="1").inc()
    NULL_REGISTRY.gauge("g").default.set(99.0)
    NULL_REGISTRY.histogram("h").default.observe(1.0)
    assert NULL_REGISTRY.families() == before == []
    # The same chain of calls works on a real registry — call sites
    # never branch on which registry they hold.
    real = MetricsRegistry()
    real.counter("anything_total", labels=("x",)).labels(x="1").inc()
    assert real.value("anything_total", x="1") == 1.0


def test_default_registry_swap_restores():
    original = get_default_registry()
    mine = MetricsRegistry()
    try:
        assert set_default_registry(mine) is original
        assert get_default_registry() is mine
    finally:
        set_default_registry(original)
    assert get_default_registry() is original


# ------------------------------------------------------------- exposition


def _populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("runs_total", "Runs by outcome.", labels=("outcome",)).labels(
        outcome="crashed"
    ).inc(4)
    reg.gauge("flight_distance_m", "Distance.").default.set(123.5)
    hist = reg.histogram("dur_seconds", "Durations.", buckets=(1.0, 10.0))
    hist.default.observe(0.5)
    hist.default.observe(5.0)
    return reg


def test_prometheus_render_and_parse_round_trip():
    text = render_prometheus(_populated_registry())
    assert "# TYPE runs_total counter" in text
    assert "# HELP flight_distance_m Distance." in text
    samples = parse_prometheus(text)
    assert samples['runs_total{outcome="crashed"}'] == 4.0
    assert samples["flight_distance_m"] == 123.5
    assert samples['dur_seconds_bucket{le="1"}'] == 1.0
    assert samples['dur_seconds_bucket{le="10"}'] == 2.0
    assert samples['dur_seconds_bucket{le="+Inf"}'] == 2.0
    assert samples["dur_seconds_sum"] == 5.5
    assert samples["dur_seconds_count"] == 2.0


def test_prometheus_label_escaping_and_name_validation():
    reg = MetricsRegistry()
    reg.counter("e_total", labels=("msg",)).labels(msg='a"b\\c\nd').inc()
    text = render_prometheus(reg)
    assert r'msg="a\"b\\c\nd"' in text
    bad = MetricsRegistry()
    bad.counter("bad-name")
    with pytest.raises(ValueError):
        render_prometheus(bad)


def test_parse_prometheus_rejects_malformed_sample():
    with pytest.raises(ValueError, match="line 1"):
        parse_prometheus("not a sample line\n")


def test_write_prometheus_file(tmp_path):
    path = tmp_path / "metrics.prom"
    write_prometheus(_populated_registry(), path)
    samples = parse_prometheus(path.read_text())
    assert samples["flight_distance_m"] == 123.5
