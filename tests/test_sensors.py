"""Unit tests for the sensor models (IMU, GPS, baro, mag)."""

import math

import numpy as np
import pytest

from repro.mathutils import quat_from_euler
from repro.sensors import (
    Barometer,
    GpsModel,
    GpsParams,
    Imu,
    Magnetometer,
    TriadSensorParams,
)


# ---------------------------------------------------------------------- IMU


def test_imu_sample_close_to_truth():
    imu = Imu(seed=1)
    truth_f = np.array([0.1, -0.2, -9.8])
    truth_w = np.array([0.01, 0.02, -0.01])
    sample = imu.sample(0.0, truth_f, truth_w, dt=0.01)
    assert np.allclose(sample.accel, truth_f, atol=0.5)
    assert np.allclose(sample.gyro, truth_w, atol=0.05)
    assert sample.time_s == 0.0


def test_imu_saturates_at_range():
    imu = Imu(seed=1)
    huge = np.full(3, 1e6)
    sample = imu.sample(0.0, huge, huge, dt=0.01)
    assert np.all(sample.accel <= imu.accel_range)
    assert np.all(sample.gyro <= imu.gyro_range)


def test_imu_ranges_match_datasheet_defaults():
    imu = Imu()
    assert math.isclose(imu.accel_range, 16.0 * 9.80665, rel_tol=1e-9)
    assert math.isclose(imu.gyro_range, math.radians(2000.0), rel_tol=1e-9)


def test_imu_noise_statistics():
    imu = Imu(seed=5)
    truth = np.zeros(3)
    samples = np.array(
        [imu.sample(i * 0.01, truth, truth, dt=0.01).gyro for i in range(5000)]
    )
    # Std close to configured noise density (bias adds a small offset).
    assert abs(samples.std() - imu.params.gyro.noise_density) < 0.002


def test_imu_deterministic_per_seed():
    a = Imu(seed=9).sample(0.0, np.zeros(3), np.zeros(3), dt=0.01)
    b = Imu(seed=9).sample(0.0, np.zeros(3), np.zeros(3), dt=0.01)
    assert np.allclose(a.accel, b.accel)
    assert np.allclose(a.gyro, b.gyro)


def test_imu_sample_copy_independent():
    imu = Imu(seed=1)
    s = imu.sample(0.0, np.zeros(3), np.zeros(3), dt=0.01)
    c = s.copy()
    c.accel[0] = 99.0
    assert s.accel[0] != 99.0


def test_triad_params_validation():
    with pytest.raises(ValueError):
        TriadSensorParams(measurement_range=0.0, noise_density=0.1, bias_sigma=0.1)
    with pytest.raises(ValueError):
        TriadSensorParams(measurement_range=1.0, noise_density=-0.1, bias_sigma=0.1)


# ---------------------------------------------------------------------- GPS


def test_gps_rate_limiting():
    gps = GpsModel(GpsParams(rate_hz=5.0), seed=2)
    fixes = 0
    for i in range(1000):  # 10 s at 100 Hz
        if gps.maybe_sample(i * 0.01, np.zeros(3), np.zeros(3)) is not None:
            fixes += 1
    assert 48 <= fixes <= 52


def test_gps_noise_close_to_spec():
    gps = GpsModel(GpsParams(rate_hz=100.0, horizontal_noise_m=0.4), seed=3)
    errors = []
    for i in range(2000):
        fix = gps.maybe_sample(i * 0.01, np.zeros(3), np.zeros(3))
        if fix is not None:
            errors.append(fix.position_ned[0])
    std = np.std(errors)
    assert 0.3 < std < 0.5


def test_gps_params_validation():
    with pytest.raises(ValueError):
        GpsParams(rate_hz=0.0)


# ---------------------------------------------------------------------- Baro


def test_baro_rate_and_noise():
    baro = Barometer(seed=4)
    readings = []
    for i in range(2000):
        alt = baro.maybe_sample(i * 0.01, 15.0)
        if alt is not None:
            readings.append(alt)
    assert len(readings) == pytest.approx(400, abs=5)
    assert abs(np.mean(readings) - 15.0) < 0.5


# ---------------------------------------------------------------------- Mag


def test_mag_measures_yaw():
    mag = Magnetometer(seed=5)
    q = quat_from_euler(0.0, 0.0, 1.2)
    yaw = mag.maybe_sample(0.0, q)
    assert yaw is not None
    assert abs(yaw - 1.2) < 0.1


def test_mag_output_wrapped():
    mag = Magnetometer(seed=6)
    q = quat_from_euler(0.0, 0.0, math.pi - 0.001)
    yaw = mag.maybe_sample(0.0, q)
    assert -math.pi < yaw <= math.pi
