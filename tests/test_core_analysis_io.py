"""Unit tests for analysis utilities, persistence, and paper reference data."""

import pytest

from repro.core.analysis import (
    by_mission,
    check_paper_shapes,
    duration_fault_grid,
    render_shape_checks,
    severity_ranking,
)
from repro.core.io import export_csv, load_campaign, save_campaign
from repro.core.paper_reference import (
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    paper_component_order,
    paper_table3_row,
)
from repro.core.results import CampaignResult, ExperimentResult
from repro.core.tables import _fault_label
from repro.core.faults import FaultTarget, FaultType
from repro.flightstack.commander import MissionOutcome


def _label(target, fault):
    return _fault_label(target, fault)


def synthetic_campaign():
    """A campaign whose shape mirrors the paper's qualitative findings."""
    results = []
    eid = 0
    for mission in (1, 2):
        results.append(
            ExperimentResult(eid, mission, "Gold Run", None, None, None,
                             MissionOutcome.COMPLETED, 400.0, 3.0, 0, 0, 0.5)
        )
        eid += 1
    # Completion recipe per fault family.
    complete_labels = {"Acc Zeros", "Acc Noise", "Gyro Zeros"}
    for duration in (2.0, 30.0):
        for target in FaultTarget:
            for fault in FaultType:
                label = _label(target, fault)
                for mission in (1, 2):
                    completes = label in complete_labels and duration == 2.0
                    outcome = (
                        MissionOutcome.COMPLETED if completes else (
                            MissionOutcome.CRASHED if mission == 1 else MissionOutcome.FAILSAFE
                        )
                    )
                    inner = 20 if target is FaultTarget.ACCEL else 10
                    inner += 5 if duration == 30.0 else 0
                    results.append(
                        ExperimentResult(
                            eid, mission, label, fault.value, target.value, duration,
                            outcome, 150.0, 0.8, inner, inner // 2, 30.0,
                        )
                    )
                    eid += 1
    return CampaignResult(results=results, scale=0.2, injection_time_s=20.0)


def test_by_mission_rows():
    rows = by_mission(synthetic_campaign())
    assert len(rows) == 2
    assert rows[0].label == "mission 1"
    assert rows[0].runs == 42  # 21 faults x 2 durations


def test_duration_fault_grid_complete():
    grid = duration_fault_grid(synthetic_campaign())
    assert len(grid) == 42  # 21 labels x 2 durations
    assert grid[("Acc Zeros", 2.0)] == 100.0
    assert grid[("Acc Zeros", 30.0)] == 0.0


def test_severity_ranking_sorted():
    rows = severity_ranking(synthetic_campaign())
    assert len(rows) == 21
    pcts = [r.completed_pct for r in rows]
    assert pcts == sorted(pcts)
    assert rows[-1].label in ("Acc Zeros", "Acc Noise", "Gyro Zeros")


def test_shape_checks_pass_on_paper_shaped_campaign():
    checks = check_paper_shapes(synthetic_campaign())
    names = {c.name for c in checks}
    assert "gold-baseline" in names
    assert "component-ordering" in names
    by_name = {c.name: c for c in checks}
    assert by_name["gold-baseline"].holds
    assert by_name["duration-severity"].holds
    assert by_name["acc-zeros-noise-survivable"].holds
    assert by_name["gyro-zeros-vs-min"].holds
    assert by_name["acc-heaviest-violations"].holds


def test_render_shape_checks():
    text = render_shape_checks(check_paper_shapes(synthetic_campaign()))
    assert "qualitative findings reproduced" in text
    assert "[PASS]" in text


# ------------------------------------------------------------------ io


def test_save_load_round_trip(tmp_path):
    campaign = synthetic_campaign()
    path = tmp_path / "campaign.json"
    save_campaign(campaign, path)
    loaded = load_campaign(path)
    assert loaded.scale == campaign.scale
    assert loaded.injection_time_s == campaign.injection_time_s
    assert len(loaded.results) == len(campaign.results)
    for a, b in zip(loaded.results, campaign.results):
        assert a == b


def test_load_rejects_unknown_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"schema_version": 99, "results": []}')
    with pytest.raises(ValueError):
        load_campaign(path)


def test_export_csv(tmp_path):
    campaign = synthetic_campaign()
    path = tmp_path / "campaign.csv"
    export_csv(campaign, path)
    lines = path.read_text().strip().split("\n")
    assert len(lines) == len(campaign.results) + 1
    assert lines[0].startswith("experiment_id,mission_id")
    assert "Gold Run" in lines[1]


# -------------------------------------------------------- paper reference


def test_paper_tables_complete():
    assert len(PAPER_TABLE2) == 5  # gold + 4 durations
    assert len(PAPER_TABLE3) == 22  # gold + 21 faults
    assert len(PAPER_TABLE4) == 8  # gold + 4 durations + 3 components


def test_paper_table3_lookup():
    row = paper_table3_row("Gyro Zeros")
    assert row.completed_pct == 40.0
    with pytest.raises(KeyError):
        paper_table3_row("Nope")


def test_paper_component_order():
    assert paper_component_order() == ["Acc", "Gyro", "IMU"]


def test_paper_table4_splits_sum_to_100():
    for row in PAPER_TABLE4:
        if row.failed_pct > 0:
            assert row.crash_pct + row.failsafe_pct == pytest.approx(100.0)


def test_paper_table3_zero_rows():
    zero_rows = [r.label for r in PAPER_TABLE3 if r.completed_pct == 0.0]
    assert set(zero_rows) == {"Gyro Min", "IMU Min", "IMU Freeze"}
