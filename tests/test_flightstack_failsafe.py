"""Unit tests for the failure-detection / failsafe state machine."""

import math

import numpy as np

from repro.estimation.health import EstimatorHealth
from repro.flightstack import FailsafeEngine, FailsafeState, FailsafeTrigger, FlightParams


HEALTHY = EstimatorHealth(False, False, False, 0.0)
SICK = EstimatorHealth(True, False, False, 5.0)

CALM = np.zeros(3)
SPINNING = np.array([2.0, 0.0, 0.0])  # ~115 deg/s, above the 60 deg/s default


def engine(**overrides):
    params = FlightParams()
    for key, value in overrides.items():
        setattr(params, key, value)
    return FailsafeEngine(params)


def run_condition(fs, duration_s, gyro, tilt=0.0, health=HEALTHY, start=0.0, dt=0.01):
    t = start
    while t < start + duration_s:
        fs.update(t, gyro, tilt, health, in_flight=True)
        t += dt
    return t


def test_nominal_stays_nominal():
    fs = engine()
    run_condition(fs, 5.0, CALM)
    assert fs.state == FailsafeState.NOMINAL
    assert not fs.engaged


def test_gyro_rate_trigger_engages_after_isolation():
    fs = engine()
    run_condition(fs, 3.5, SPINNING)
    assert fs.engaged
    assert fs.trigger == FailsafeTrigger.GYRO_RATE
    # Paper: failsafe takes a minimum of ~1900 ms (isolation) plus the
    # detection debounce before engaging.
    assert fs.engaged_time_s >= FlightParams().fs_isolation_time_s


def test_short_blip_does_not_even_isolate():
    fs = engine()
    run_condition(fs, 0.3, SPINNING)  # below the 0.5 s debounce
    run_condition(fs, 1.0, CALM, start=0.3)
    assert fs.state == FailsafeState.NOMINAL


def test_condition_clearing_during_isolation_recovers():
    fs = engine()
    run_condition(fs, 0.8, SPINNING)  # enough to enter isolation
    assert fs.state == FailsafeState.ISOLATING
    run_condition(fs, 1.5, CALM, start=0.8)  # clears and stays clear
    assert fs.state == FailsafeState.NOMINAL
    assert not fs.engaged


def test_attitude_trigger():
    fs = engine()
    run_condition(fs, 3.5, CALM, tilt=math.radians(80.0))
    assert fs.engaged
    assert fs.trigger == FailsafeTrigger.ATTITUDE


def test_ekf_health_trigger():
    fs = engine()
    run_condition(fs, 3.5, CALM, health=SICK)
    assert fs.engaged
    assert fs.trigger == FailsafeTrigger.EKF_HEALTH


def test_not_in_flight_never_triggers():
    fs = engine()
    for i in range(500):
        fs.update(i * 0.01, SPINNING, math.radians(80.0), SICK, in_flight=False)
    assert fs.state == FailsafeState.NOMINAL


def test_engaged_is_terminal():
    fs = engine()
    run_condition(fs, 3.5, SPINNING)
    assert fs.engaged
    run_condition(fs, 2.0, CALM, start=3.5)
    assert fs.engaged  # no automatic disengage


def test_configurable_threshold():
    fs = engine(fd_gyro_rate_threshold_rad_s=math.radians(300.0))
    run_condition(fs, 3.5, SPINNING)  # 115 deg/s < 300 deg/s threshold
    assert not fs.engaged


def test_isolation_time_respected():
    fs = engine(fs_isolation_time_s=3.0)
    run_condition(fs, 3.0, SPINNING)
    assert not fs.engaged  # 0.5 debounce + 3.0 isolation not yet elapsed
    run_condition(fs, 1.0, SPINNING, start=3.0)
    assert fs.engaged


def test_status_snapshot():
    fs = engine()
    status = fs.status()
    assert status.state == FailsafeState.NOMINAL
    assert status.trigger == FailsafeTrigger.NONE
    assert status.engaged_time_s is None
