"""Unit tests for the environment and wind models."""

import numpy as np
import pytest

from repro.sim import Environment, WindModel


def test_gravity_vector_points_down():
    env = Environment()
    assert np.allclose(env.gravity_ned, [0.0, 0.0, 9.80665])


def test_wind_zero_sigma_is_constant():
    wind = WindModel(mean_wind_ned=np.array([1.0, 2.0, 0.0]), gust_sigma_m_s=0.0)
    for _ in range(100):
        out = wind.step(0.01)
    assert np.allclose(out, [1.0, 2.0, 0.0])


def test_wind_gusts_are_bounded_and_stationary():
    wind = WindModel(gust_sigma_m_s=0.5, gust_tau_s=2.0, seed=42)
    # step() returns a reused buffer; copy each sample before stacking.
    samples = np.array([wind.step(0.02).copy() for _ in range(20000)])
    # Stationary std close to sigma; mean close to zero.
    assert abs(samples.mean()) < 0.1
    std = samples.std()
    assert 0.3 < std < 0.7


def test_wind_deterministic_for_seed():
    w1 = WindModel(gust_sigma_m_s=0.5, seed=7)
    w2 = WindModel(gust_sigma_m_s=0.5, seed=7)
    for _ in range(50):
        a = w1.step(0.01)
        b = w2.step(0.01)
    assert np.allclose(a, b)


def test_wind_differs_across_seeds():
    w1 = WindModel(gust_sigma_m_s=0.5, seed=1)
    w2 = WindModel(gust_sigma_m_s=0.5, seed=2)
    for _ in range(50):
        a = w1.step(0.01)
        b = w2.step(0.01)
    assert not np.allclose(a, b)


def test_wind_validation():
    with pytest.raises(ValueError):
        WindModel(gust_sigma_m_s=-0.1)
    with pytest.raises(ValueError):
        WindModel(gust_tau_s=0.0)


def test_current_wind_matches_last_step():
    wind = WindModel(gust_sigma_m_s=0.3, seed=3)
    out = wind.step(0.01)
    assert np.allclose(wind.current_wind_ned, out)
