"""Unit tests for spans/events, the black-box ring, and the exporters."""

import json

import numpy as np
import pytest

from repro.obs.blackbox import (
    BLACKBOX_SCHEMA,
    COLUMNS,
    BlackBox,
    blackbox_column,
    load_blackbox,
)
from repro.obs.export import (
    chrome_trace_events,
    read_events_jsonl,
    write_chrome_trace,
    write_events_jsonl,
)
from repro.obs.trace import (
    NULL_SINK,
    TraceCollector,
    TraceEvent,
    build_span_tree,
    iter_spans,
    render_span_tree,
)


# ------------------------------------------------------------- collector


def test_spans_nest_and_close_in_order():
    tc = TraceCollector()
    outer = tc.begin_span("campaign", 0.0, workers=1)
    inner = tc.begin_span("case", 1.0)
    assert outer != inner
    tc.end_span(2.0)
    tc.end_span(3.0)
    kinds = [(e.kind, e.name) for e in tc.events]
    assert kinds == [
        ("B", "campaign"), ("B", "case"), ("E", "case"), ("E", "campaign"),
    ]
    begin_case = tc.events[1]
    assert begin_case.parent_id == outer


def test_end_span_without_open_raises():
    with pytest.raises(ValueError):
        TraceCollector().end_span(0.0)


def test_end_all_flushes_every_open_span():
    tc = TraceCollector()
    tc.begin_span("run", 0.0)
    tc.phase(1.0, "takeoff")
    tc.end_all(5.0)
    assert [e.kind for e in tc.events] == ["B", "B", "E", "E"]
    assert all(e.time_s == 5.0 for e in tc.events if e.kind == "E")


def test_phase_transitions_end_previous_phase():
    tc = TraceCollector()
    tc.begin_span("run", 0.0)
    tc.phase(1.0, "takeoff")
    tc.phase(4.0, "mission")
    tc.end_all(9.0)
    roots, _ = build_span_tree(tc.events)
    run = roots[0]
    assert [c.name for c in run.children] == ["phase:takeoff", "phase:mission"]
    assert run.children[0].end_s == 4.0  # closed when the next phase began
    assert run.children[1].end_s == 9.0


def test_points_attach_to_open_span_and_tap_fires():
    tapped = []
    tc = TraceCollector()
    tc.on_point = tapped.append
    tc.begin_span("run", 0.0)
    tc.emit("imu.switchover", 2.5, from_member=0, to_member=1)
    tc.end_all(3.0)
    tc.emit("orphan.note", 4.0)
    roots, orphans = build_span_tree(tc.events)
    assert [p.name for p in roots[0].points] == ["imu.switchover"]
    assert [o.name for o in orphans] == ["orphan.note"]
    assert [e.name for e in tapped] == ["imu.switchover", "orphan.note"]
    assert tc.points("imu.switchover")[0].attrs == {
        "from_member": 0, "to_member": 1,
    }


def test_null_sink_accepts_everything_silently():
    NULL_SINK.emit("anything", 0.0, detail=1)
    NULL_SINK.phase(0.0, "takeoff")


def test_render_span_tree_orders_timeline():
    tc = TraceCollector()
    tc.begin_span("run", 0.0, mission_id=3)
    tc.phase(0.5, "takeoff")
    tc.emit("injection.start", 1.0, fault="Gyro Fixed Value")
    tc.end_all(2.0)
    text = render_span_tree(*build_span_tree(tc.events))
    lines = text.splitlines()
    assert lines[0].startswith("run  0.00s +2.00s")
    assert "mission_id=3" in lines[0]
    # The phase span begins before the point event, so it renders first.
    assert lines[1].strip().startswith("phase:takeoff")
    assert "* injection.start @ 1.00s" in text


def test_iter_spans_depth_first():
    tc = TraceCollector()
    tc.begin_span("a", 0.0)
    tc.begin_span("b", 1.0)
    tc.end_span(2.0)
    tc.begin_span("c", 3.0)
    tc.end_all(4.0)
    roots, _ = build_span_tree(tc.events)
    assert [n.name for n in iter_spans(roots)] == ["a", "b", "c"]


def test_trace_event_dict_round_trip():
    event = TraceEvent("i", "x", 1.5, 7, 3, {"k": "v"})
    assert TraceEvent.from_dict(event.to_dict()) == event
    bare = TraceEvent("B", "run", 0.0, 1)
    assert TraceEvent.from_dict(bare.to_dict()) == bare


# ------------------------------------------------------------- black box


class _Stub:
    """Attribute bag for faking the system object the ring reads."""

    def __init__(self, **kw):
        self.__dict__.update(kw)


def _fake_system(t: float, phase: str = "mission", failsafe: str = "nominal"):
    state = _Stub(
        position_ned=np.array([1.0, 2.0, -15.0]) * (1 + t),
        velocity_ned=np.zeros(3),
        quaternion=np.array([1.0, 0.0, 0.0, 0.0]),
        angular_rate_body=np.zeros(3),
    )
    return _Stub(
        physics=_Stub(
            time_s=t,
            state=state,
            airframe=_Stub(motors=_Stub(effective_commands=np.full(4, 0.5))),
        ),
        ekf=_Stub(
            position_ned=np.array([1.0, 2.0, -15.0]),
            velocity_ned=np.zeros(3),
            quaternion=np.array([1.0, 0.0, 0.0, 0.0]),
            attitude_std_rad=0.01,
        ),
        _last_gyro=np.zeros(3),
        commander=_Stub(phase=_Stub(value=phase)),
        failsafe=_Stub(state=_Stub(value=failsafe)),
        redundancy=_Stub(primary=0),
    )


def test_ring_wraparound_keeps_newest_rows_in_order():
    bb = BlackBox(seconds=0.05, dt_s=0.01)  # capacity 5
    for i in range(8):
        bb.record(_fake_system(float(i)), fault_active=False)
    assert bb.capacity == 5
    assert len(bb) == 5
    assert bb.total_recorded == 8
    assert list(bb.column("time_s")) == [3.0, 4.0, 5.0, 6.0, 7.0]


def test_ring_partial_fill():
    bb = BlackBox(seconds=1.0, dt_s=0.01)
    bb.record(_fake_system(0.0), fault_active=True)
    assert len(bb) == 1
    assert bb.column("fault_active")[0] == 1.0


def test_blackbox_validation():
    with pytest.raises(ValueError):
        BlackBox(seconds=0.0)
    with pytest.raises(ValueError):
        BlackBox(dt_s=-1.0)


def test_categorical_code_tables_are_first_sight():
    bb = BlackBox(seconds=0.1, dt_s=0.01)
    bb.record(_fake_system(0.0, phase="takeoff"), False)
    bb.record(_fake_system(1.0, phase="mission"), False)
    bb.record(_fake_system(2.0, phase="takeoff"), False)
    payload = bb.to_payload()
    assert payload["phase_codes"] == {"takeoff": 0, "mission": 1}
    assert list(blackbox_payload_column(payload, "phase_code")) == [0.0, 1.0, 0.0]


def blackbox_payload_column(payload, name):
    rows = np.asarray(payload["rows"], dtype=float)
    return rows[:, payload["columns"].index(name)]


def test_dump_load_round_trip(tmp_path):
    bb = BlackBox(seconds=0.05, dt_s=0.01)
    for i in range(3):
        bb.record(_fake_system(float(i)), fault_active=(i == 1))
    events = [TraceEvent("i", "injection.start", 1.0).to_dict()]
    path = bb.dump(tmp_path / "sub" / "bb.json", metadata={"mission_id": 3},
                   events=events)
    payload = load_blackbox(path)
    assert payload["schema"] == BLACKBOX_SCHEMA
    assert payload["columns"] == list(COLUMNS)
    assert payload["metadata"] == {"mission_id": 3}
    assert payload["events"] == events
    assert payload["rows"].shape == (3, len(COLUMNS))
    assert list(blackbox_column(payload, "fault_active")) == [0.0, 1.0, 0.0]


def test_load_blackbox_rejects_bad_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": 999}))
    with pytest.raises(ValueError, match="schema"):
        load_blackbox(path)


# ------------------------------------------------------------- exporters


def _sample_events():
    tc = TraceCollector()
    tc.begin_span("run", 0.0, mission_id=3)
    tc.emit("injection.start", 1.0, fault="Gyro Min")
    tc.end_all(2.0)
    return tc.events


def test_jsonl_round_trip(tmp_path):
    path = tmp_path / "events.jsonl"
    events = _sample_events()
    write_events_jsonl(events, path)
    assert read_events_jsonl(path) == events
    # One dict per line, stable key order.
    lines = path.read_text().splitlines()
    assert len(lines) == len(events)
    assert json.loads(lines[0])["kind"] == "B"


def test_jsonl_malformed_line_reports_location(tmp_path):
    path = tmp_path / "events.jsonl"
    path.write_text('{"kind": "i", "name": "x", "time_s": 0.0}\nnot json\n')
    with pytest.raises(ValueError, match=r"2: malformed"):
        read_events_jsonl(path)


def test_chrome_trace_mapping(tmp_path):
    events = _sample_events()
    records = chrome_trace_events(events, pid=7, tid=9)
    begin, instant, end = records
    assert begin == {
        "name": "run", "ph": "B", "ts": 0.0, "pid": 7, "tid": 9,
        "args": {"mission_id": 3},
    }
    assert instant["ph"] == "i"
    assert instant["s"] == "t"
    assert instant["ts"] == pytest.approx(1e6)
    assert end["ph"] == "E"
    path = tmp_path / "trace.json"
    write_chrome_trace(events, path)
    payload = json.loads(path.read_text())
    assert payload["displayTimeUnit"] == "ms"
    assert len(payload["traceEvents"]) == 3
