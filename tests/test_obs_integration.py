"""Integration tests: obs threaded through the vehicle and the campaign.

The two contracts that make the observability plane safe to leave on:

* **Bit-exactness** — the golden per-step traces (recorded with no
  observer) must match with the full observer attached; an observer
  that changed a single mantissa bit anywhere fails here.
* **Post-mortem coverage** — every non-completed case of an observed
  campaign leaves a readable black box, surfaced on the result row.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.core.campaign import CampaignConfig, run_campaign, run_experiment
from repro.core.experiments import ExperimentSpec, build_experiment_matrix
from repro.core.faults import FaultSpec, FaultTarget, FaultType
from repro.core.io import export_csv, load_campaign, save_campaign
from repro.core.resilience import EtaEstimator
from repro.core.results import CampaignResult, ExperimentResult
from repro.flightstack.commander import MissionOutcome
from repro.obs import (
    MetricsRegistry,
    Observer,
    load_blackbox,
    write_events_jsonl,
)
from repro.obs.__main__ import main as obs_main
from repro.obs.trace import TraceCollector
from repro.perf.trace import GOLDEN_TRACE_SPECS, build_trace_system, run_traced

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_step_traces.json"

TINY = CampaignConfig(
    scale=0.1,
    mission_ids=(2,),
    durations_s=(2.0,),
    injection_time_s=15.0,
)


# ------------------------------------------------------- bit-exactness


@pytest.mark.parametrize("name", sorted(GOLDEN_TRACE_SPECS))
def test_golden_step_traces_identical_with_obs_enabled(name):
    """The strongest read-only check: per-step SHA-256 of every
    metric-bearing quantity, unchanged by a full observer."""
    expected = json.loads(GOLDEN_PATH.read_text())[name]
    system = build_trace_system(
        GOLDEN_TRACE_SPECS[name], obs=Observer(registry=MetricsRegistry())
    )
    got = run_traced(system)
    assert got["final_digest"] == expected["final_digest"], (
        f"observer changed the {name!r} run"
    )


def test_observed_experiment_result_is_bit_identical(tmp_path):
    spec = ExperimentSpec(1, 2, FaultSpec(FaultType.MIN, FaultTarget.GYRO, 15.0, 2.0, seed=1))
    plain = run_experiment(spec, TINY)
    observed = run_experiment(
        spec, dataclasses.replace(TINY, obs_dir=str(tmp_path))
    )
    assert observed.blackbox_path is not None
    assert dataclasses.replace(observed, blackbox_path=None) == plain


# ------------------------------------------------------- black boxes


@pytest.fixture(scope="module")
def observed_campaign(tmp_path_factory):
    """A tiny real campaign with black boxes on: gold + two gyro faults."""
    obs_dir = tmp_path_factory.mktemp("blackboxes")
    config = dataclasses.replace(TINY, obs_dir=str(obs_dir))
    specs = build_experiment_matrix(
        mission_ids=[2],
        durations_s=(2.0,),
        injection_time_s=15.0,
        fault_types=(FaultType.MIN, FaultType.ZEROS),
        targets=(FaultTarget.GYRO,),
        include_gold=True,
    )
    return run_campaign(config, specs=specs), obs_dir


def test_every_noncompleted_case_leaves_a_readable_blackbox(observed_campaign):
    campaign, _obs_dir = observed_campaign
    noncompleted = [
        r for r in campaign.results if r.outcome is not MissionOutcome.COMPLETED
    ]
    assert noncompleted, "fixture needs at least one failing case"
    for result in campaign.results:
        if result.outcome is MissionOutcome.COMPLETED:
            assert result.blackbox_path is None
            continue
        assert result.blackbox_path is not None
        payload = load_blackbox(result.blackbox_path)
        assert payload["rows"].shape[0] > 0
        assert payload["metadata"]["mission_id"] == result.mission_id
        assert payload["metadata"]["fault"] == result.fault_label
        assert payload["metadata"]["outcome"] == result.outcome.value
        # The embedded trace reaches the terminal transition.
        names = {e["name"] for e in payload["events"]}
        assert "injection.start" in names
        assert "mission.outcome" in names


def test_blackbox_filenames_follow_experiment_ids(observed_campaign):
    campaign, obs_dir = observed_campaign
    for result in campaign.results:
        if result.blackbox_path is not None:
            assert (
                Path(result.blackbox_path).name
                == f"blackbox_exp{result.experiment_id:04d}.json"
            )
            assert Path(result.blackbox_path).parent == obs_dir


# ------------------------------------------------------- campaign tracing


def _fake_runner(spec: ExperimentSpec, config: CampaignConfig) -> ExperimentResult:
    return ExperimentResult(
        spec.experiment_id, spec.mission_id, spec.label, None, None, None,
        MissionOutcome.COMPLETED, 10.0, 1.0, 0, 0, 0.0,
    )


def _fake_specs(n: int) -> list[ExperimentSpec]:
    return [ExperimentSpec(i, 2, None) for i in range(n)]


def test_serial_campaign_nests_case_spans():
    obs = Observer(registry=MetricsRegistry(), trace=TraceCollector())
    run_campaign(TINY, specs=_fake_specs(3), runner=_fake_runner, obs=obs)
    events = obs.trace.events
    begins = [e for e in events if e.kind == "B"]
    assert [b.name for b in begins] == ["campaign", "case", "case", "case"]
    assert begins[0].attrs["total_cases"] == 3
    case_ids = [b.attrs["experiment_id"] for b in begins[1:]]
    assert case_ids == [0, 1, 2]
    # Every span closed, campaign last.
    ends = [e for e in events if e.kind == "E"]
    assert len(ends) == 4 and ends[-1].name == "campaign"
    done = [e for e in events if e.name == "case.done"]
    assert [e.attrs["outcome"] for e in done] == ["completed"] * 3
    assert obs.metrics.value("campaign_cases_total", status="ok") == 3.0


def test_parallel_campaign_emits_points_not_case_spans():
    obs = Observer(registry=MetricsRegistry(), trace=TraceCollector())
    config = dataclasses.replace(TINY, workers=2)
    run_campaign(config, specs=_fake_specs(4), runner=_fake_runner, obs=obs)
    events = obs.trace.events
    assert [e.name for e in events if e.kind == "B"] == ["campaign"]
    assert len([e for e in events if e.name == "case.done"]) == 4
    assert obs.metrics.value("campaign_cases_total", status="ok") == 4.0


def test_progress_ticker_prints_eta_without_obs(capsys):
    run_campaign(TINY, specs=_fake_specs(10), runner=_fake_runner, progress=True)
    out = capsys.readouterr().out
    assert "10/10 experiments done" in out
    assert "ETA" in out


# ------------------------------------------------------- ETA estimator


def test_eta_estimator_with_fake_clock():
    now = {"t": 100.0}
    eta = EtaEstimator(total=10, already_done=2, clock=lambda: now["t"])
    assert eta.eta_s() is None
    assert eta.format() == "ETA --"
    now["t"] = 110.0
    eta.update(4)  # 2 fresh cases in 10 s; 6 remain -> 30 s
    assert eta.eta_s() == pytest.approx(30.0)
    assert eta.format() == "ETA 30s"
    eta.update(9)  # 7 fresh in 10 s; 1 remains
    assert eta.eta_s() == pytest.approx(10.0 / 7.0)
    eta.update(10)
    assert eta.eta_s() == 0.0


def test_eta_format_ranges():
    now = {"t": 0.0}
    eta = EtaEstimator(total=100, clock=lambda: now["t"])
    now["t"] = 90.0
    eta.update(1)  # 90 s/case, 99 remaining -> 8910 s
    assert eta.format() == "ETA 2h28m"
    eta.update(99)  # 99 in 90 s, 1 remaining -> ~0.9 s
    assert eta.format() == "ETA 1s"
    eta.update(50)  # 50 in 90 s, 50 remaining -> 90 s
    assert eta.format() == "ETA 1m30s"
    with pytest.raises(ValueError):
        EtaEstimator(total=-1)


# ------------------------------------------------------- persistence v4


def _tiny_campaign() -> CampaignResult:
    results = [
        ExperimentResult(0, 1, "Gold Run", None, None, None,
                         MissionOutcome.COMPLETED, 400.0, 3.0, 0, 0, 0.5),
        ExperimentResult(1, 1, "Gyro Min", "min", "gyro", 2.0,
                         MissionOutcome.CRASHED, 150.0, 0.8, 12, 3, 30.0,
                         blackbox_path="/tmp/obs/blackbox_exp0001.json"),
    ]
    return CampaignResult(results=results, scale=0.2, injection_time_s=20.0)


def test_schema_v4_round_trips_blackbox_path(tmp_path):
    path = tmp_path / "campaign.json"
    save_campaign(_tiny_campaign(), path)
    assert json.loads(path.read_text())["schema_version"] == 4
    loaded = load_campaign(path)
    assert loaded.results[0].blackbox_path is None
    assert loaded.results[1].blackbox_path == "/tmp/obs/blackbox_exp0001.json"
    assert loaded.results == _tiny_campaign().results


def test_csv_export_carries_blackbox_path(tmp_path):
    path = tmp_path / "campaign.csv"
    export_csv(_tiny_campaign(), path)
    header, gold_row, crash_row = path.read_text().splitlines()
    assert header.endswith(",blackbox_path")
    assert gold_row.endswith(",")
    assert crash_row.endswith(",/tmp/obs/blackbox_exp0001.json")


# ------------------------------------------------------- CLI


def test_cli_summarize_blackbox(observed_campaign, capsys):
    campaign, _ = observed_campaign
    crashed = next(r for r in campaign.results if r.blackbox_path)
    assert obs_main(["summarize", crashed.blackbox_path]) == 0
    out = capsys.readouterr().out
    assert "run metadata:" in out
    assert "span tree:" in out
    assert "injection.start" in out
    assert "point events:" in out


def test_cli_render_blackbox(observed_campaign, capsys):
    campaign, _ = observed_campaign
    crashed = next(r for r in campaign.results if r.blackbox_path)
    assert obs_main(["render", crashed.blackbox_path, "--width", "40"]) == 0
    out = capsys.readouterr().out
    assert "top-down" in out
    assert "altitude" in out
    assert "#" in out  # the injection window is visible on the plot


def test_cli_diff_two_traces(tmp_path, capsys):
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    ta, tb = TraceCollector(), TraceCollector()
    ta.begin_span("run", 0.0)
    ta.emit("bubble.inner_violation", 1.0)
    ta.end_all(2.0)
    tb.begin_span("run", 0.0)
    tb.emit("bubble.inner_violation", 1.0)
    tb.emit("bubble.inner_violation", 1.5)
    tb.emit("imu.switchover", 1.2)
    tb.end_all(4.0)
    write_events_jsonl(ta.events, a)
    write_events_jsonl(tb.events, b)
    assert obs_main(["diff", str(a), str(b)]) == 0
    out = capsys.readouterr().out
    assert "+ bubble.inner_violation: 1 -> 2" in out
    assert "+ imu.switchover: 0 -> 1" in out
    assert "run: 2.00 -> 4.00 (+2.00)" in out


def test_cli_errors_exit_2(tmp_path, capsys):
    assert obs_main(["summarize", str(tmp_path / "missing.jsonl")]) == 2
    bad = tmp_path / "bad.json"
    bad.write_text("{}")
    assert obs_main(["render", str(bad)]) == 2
    err = capsys.readouterr().err
    assert "error:" in err
