"""Unit tests for the airframe force/torque map."""

import numpy as np
import pytest

from repro.sim import Environment, QuadrotorAirframe, WindModel
from repro.mathutils import quat_identity, quat_from_euler


@pytest.fixture
def airframe():
    return QuadrotorAirframe()


@pytest.fixture
def still_env():
    return Environment(wind=WindModel(gust_sigma_m_s=0.0))


def forces(airframe, env, thrusts, quat=None, vel=None, rates=None):
    return airframe.forces_and_torques(
        np.asarray(thrusts, dtype=float),
        quat if quat is not None else quat_identity(),
        vel if vel is not None else np.zeros(3),
        rates if rates is not None else np.zeros(3),
        env,
    )


def test_zero_thrust_force_is_weight(airframe, still_env):
    force, torque = forces(airframe, still_env, [0.0] * 4)
    assert np.allclose(force, [0, 0, airframe.params.mass_kg * 9.80665])
    assert np.allclose(torque, 0.0)


def test_equal_thrust_no_roll_pitch_torque(airframe, still_env):
    _, torque = forces(airframe, still_env, [2.0] * 4)
    assert abs(torque[0]) < 1e-12
    assert abs(torque[1]) < 1e-12


def test_equal_thrust_cancels_yaw(airframe, still_env):
    _, torque = forces(airframe, still_env, [2.0] * 4)
    # Two CCW + two CW rotors at equal thrust: reaction torques cancel.
    assert abs(torque[2]) < 1e-12


def test_right_side_thrust_rolls_left(airframe, still_env):
    # Motors 0 (front-right) and 3 (back-right) sit at y > 0.
    _, torque = forces(airframe, still_env, [3.0, 1.0, 1.0, 3.0])
    assert torque[0] < 0.0  # negative roll torque (right side up)


def test_front_thrust_pitches_down(airframe, still_env):
    # Motors 0 and 2 are the front pair (x > 0): more front thrust
    # produces a positive pitch torque (nose up) about +y.
    _, torque = forces(airframe, still_env, [3.0, 1.0, 3.0, 1.0])
    assert torque[1] > 0.0


def test_ccw_pair_produces_net_yaw(airframe, still_env):
    # Motors 0 and 1 are the CCW pair: spinning them harder yields a
    # positive yaw reaction.
    _, torque = forces(airframe, still_env, [3.0, 3.0, 1.0, 1.0])
    assert torque[2] > 0.0


def test_thrust_rotates_with_attitude(airframe, still_env):
    quat = quat_from_euler(0.0, 0.3, 0.0)  # nose up
    force, _ = forces(airframe, still_env, [2.0] * 4, quat=quat)
    # Tilted thrust has a horizontal (negative-north) component.
    assert force[0] < -0.5


def test_drag_opposes_velocity(airframe, still_env):
    vel = np.array([5.0, 0.0, 0.0])
    force, _ = forces(airframe, still_env, [0.0] * 4, vel=vel)
    assert force[0] < 0.0


def test_drag_relative_to_wind(airframe):
    env = Environment(wind=WindModel(mean_wind_ned=np.array([5.0, 0.0, 0.0]),
                                     gust_sigma_m_s=0.0))
    env.wind.step(0.01)
    # Hovering in a 5 m/s tailwind: drag pushes the vehicle along.
    force, _ = forces(airframe, env, [0.0] * 4)
    assert force[0] > 0.0


def test_angular_damping_opposes_rates(airframe, still_env):
    rates = np.array([3.0, 0.0, 0.0])
    _, torque = forces(airframe, still_env, [0.0] * 4, rates=rates)
    assert torque[0] < 0.0
