"""Unit tests for rotation matrices and angle helpers."""

import math

import numpy as np
import pytest

from repro.mathutils import (
    angle_difference,
    rotation_x,
    rotation_y,
    rotation_z,
    skew,
    unskew,
    wrap_angle,
)


@pytest.mark.parametrize("factory", [rotation_x, rotation_y, rotation_z])
def test_rotation_matrices_are_orthonormal(factory):
    rot = factory(0.73)
    assert np.allclose(rot @ rot.T, np.eye(3), atol=1e-12)
    assert math.isclose(np.linalg.det(rot), 1.0, rel_tol=1e-12)


def test_rotation_z_rotates_x_to_y():
    out = rotation_z(math.pi / 2) @ np.array([1.0, 0.0, 0.0])
    assert np.allclose(out, [0.0, 1.0, 0.0], atol=1e-12)


def test_rotation_x_rotates_y_to_z():
    out = rotation_x(math.pi / 2) @ np.array([0.0, 1.0, 0.0])
    assert np.allclose(out, [0.0, 0.0, 1.0], atol=1e-12)


def test_rotation_y_rotates_z_to_x():
    out = rotation_y(math.pi / 2) @ np.array([0.0, 0.0, 1.0])
    assert np.allclose(out, [1.0, 0.0, 0.0], atol=1e-12)


def test_skew_cross_product_equivalence():
    a = np.array([1.0, -2.0, 3.0])
    b = np.array([0.5, 4.0, -1.0])
    assert np.allclose(skew(a) @ b, np.cross(a, b))


def test_skew_antisymmetric():
    m = skew(np.array([1.0, 2.0, 3.0]))
    assert np.allclose(m, -m.T)


def test_unskew_inverts_skew():
    v = np.array([0.3, -0.7, 1.9])
    assert np.allclose(unskew(skew(v)), v)


@pytest.mark.parametrize(
    "angle,expected",
    [
        (0.0, 0.0),
        (math.pi, math.pi),
        (-math.pi, math.pi),  # wraps to (-pi, pi]
        (3 * math.pi, math.pi),
        (2 * math.pi, 0.0),
        (math.pi + 0.1, -math.pi + 0.1),
    ],
)
def test_wrap_angle(angle, expected):
    assert math.isclose(wrap_angle(angle), expected, abs_tol=1e-12)


def test_angle_difference_shortest_path():
    assert math.isclose(angle_difference(3.0, -3.0), -0.2831853071795862, abs_tol=1e-9)
    assert math.isclose(angle_difference(0.1, -0.1), 0.2, abs_tol=1e-12)
