"""Unit tests for mission plans and the Valencia scenario."""

import math

import numpy as np
import pytest

from repro.missions import (
    MissionPlan,
    Waypoint,
    polyline_length,
    route_polyline,
    valencia_missions,
)
from repro.missions.plan import distance_to_polyline
from repro.missions.spec import DroneSpec, kmh


def test_kmh_conversion():
    assert math.isclose(kmh(3.6), 1.0)
    assert math.isclose(kmh(25.0), 6.9444, rel_tol=1e-4)


def test_drone_spec_validation():
    with pytest.raises(ValueError):
        DroneSpec(1, "x", cruise_speed_m_s=0.0, top_speed_m_s=1.0, mass_kg=1.0)
    with pytest.raises(ValueError):
        DroneSpec(1, "x", cruise_speed_m_s=2.0, top_speed_m_s=1.0, mass_kg=1.0)
    with pytest.raises(ValueError):
        DroneSpec(1, "x", cruise_speed_m_s=1.0, top_speed_m_s=2.0, mass_kg=0.0)


def test_max_distance_per_track():
    drone = DroneSpec(1, "x", cruise_speed_m_s=5.0, top_speed_m_s=7.0, mass_kg=1.5)
    assert drone.max_distance_per_track_m(1.0) == 7.0
    assert drone.max_distance_per_track_m(0.5) == 3.5
    with pytest.raises(ValueError):
        drone.max_distance_per_track_m(0.0)


def test_mission_plan_needs_two_waypoints():
    drone = DroneSpec(1, "x", cruise_speed_m_s=3.0, top_speed_m_s=4.0, mass_kg=1.5)
    with pytest.raises(ValueError):
        MissionPlan(1, drone, [Waypoint((0, 0, -15))])


def test_home_and_landing_on_ground():
    plans = valencia_missions(scale=0.2)
    for plan in plans:
        assert plan.home_ned[2] == 0.0
        assert plan.landing_ned[2] == 0.0
        assert np.allclose(plan.home_ned[:2], plan.waypoints[0].array[:2])
        assert np.allclose(plan.landing_ned[:2], plan.waypoints[-1].array[:2])


def test_valencia_has_ten_missions_with_paper_speed_mix():
    plans = valencia_missions()
    assert len(plans) == 10
    speeds = sorted(round(p.drone.cruise_speed_m_s * 3.6) for p in plans)
    assert speeds == [5, 5, 10, 12, 12, 12, 14, 14, 14, 25]


def test_valencia_four_missions_have_turns():
    plans = valencia_missions()
    assert sum(p.has_turns for p in plans) == 4


def test_valencia_cruise_below_ceiling():
    from repro.missions.valencia import CEILING_M

    for plan in valencia_missions():
        assert plan.cruise_altitude_m < CEILING_M


def test_valencia_scale_shrinks_geometry():
    full = valencia_missions(scale=1.0)
    small = valencia_missions(scale=0.1)
    for f, s in zip(full, small):
        assert math.isclose(s.cruise_length_m, f.cruise_length_m * 0.1, rel_tol=1e-6)


def test_valencia_full_scale_duration_near_paper_gold():
    # The paper's gold runs average 491.26 s; the generated scenario
    # should estimate in that neighbourhood at full scale.
    durations = [p.estimated_duration_s() for p in valencia_missions(scale=1.0)]
    avg = sum(durations) / len(durations)
    assert 420.0 < avg < 560.0


def test_valencia_within_operating_area():
    # 25 km^2 zone: everything within ~2.6 km of the origin.
    for plan in valencia_missions(scale=1.0):
        for wp in plan.waypoints:
            assert abs(wp.position_ned[0]) < 2600.0
            assert abs(wp.position_ned[1]) < 2600.0


def test_valencia_scale_validation():
    with pytest.raises(ValueError):
        valencia_missions(scale=0.0)


def test_route_polyline_includes_climb_and_descent():
    plan = valencia_missions(scale=0.2)[0]
    route = route_polyline(plan)
    assert np.allclose(route[0], plan.home_ned)
    assert np.allclose(route[-1], plan.landing_ned)
    assert len(route) == len(plan.waypoints) + 2


def test_polyline_length():
    pts = [np.zeros(3), np.array([3.0, 4.0, 0.0]), np.array([3.0, 4.0, 5.0])]
    assert math.isclose(polyline_length(pts), 10.0)


def test_total_length_adds_vertical_legs():
    plan = valencia_missions(scale=0.2)[0]
    assert math.isclose(
        plan.total_length_m, plan.cruise_length_m + 2 * plan.cruise_altitude_m
    )


def test_distance_to_polyline_on_segment():
    poly = [np.zeros(3), np.array([10.0, 0.0, 0.0])]
    assert distance_to_polyline(np.array([5.0, 3.0, 0.0]), poly) == pytest.approx(3.0)


def test_distance_to_polyline_beyond_endpoint():
    poly = [np.zeros(3), np.array([10.0, 0.0, 0.0])]
    assert distance_to_polyline(np.array([14.0, 3.0, 0.0]), poly) == pytest.approx(5.0)


def test_distance_to_polyline_degenerate_segment():
    poly = [np.zeros(3), np.zeros(3)]
    assert distance_to_polyline(np.array([0.0, 1.0, 0.0]), poly) == pytest.approx(1.0)


def test_waypoint_array_cached():
    # `array` is cached and shared (hot-loop contract): repeated access
    # returns the same object and never re-reads position_ned.
    wp = Waypoint((1.0, 2.0, -3.0))
    arr = wp.array
    assert wp.array is arr
    assert tuple(arr) == (1.0, 2.0, -3.0)
    assert wp.position_ned == (1.0, 2.0, -3.0)
