"""Unit tests for the sensor fault injector."""

import numpy as np

from repro.core import FaultSpec, FaultTarget, FaultType, SensorFaultInjector
from repro.sensors.imu import ImuSample

ACCEL_RANGE = 150.0
GYRO_RANGE = 35.0


def make_injector(fault_type, target, start=10.0, duration=5.0, seed=0):
    spec = FaultSpec(fault_type, target, start_time_s=start, duration_s=duration, seed=seed)
    return SensorFaultInjector(spec, ACCEL_RANGE, GYRO_RANGE)


def sample(t, accel=(0.0, 0.0, -9.8), gyro=(0.01, 0.02, 0.03)):
    return ImuSample(t, np.array(accel), np.array(gyro))


def test_no_fault_passthrough():
    inj = SensorFaultInjector(None, ACCEL_RANGE, GYRO_RANGE)
    s = sample(0.0)
    assert inj.apply(s) is s
    assert not inj.is_active(0.0)


def test_clean_before_window():
    inj = make_injector(FaultType.ZEROS, FaultTarget.IMU)
    s = sample(5.0)
    assert inj.apply(s) is s


def test_clean_after_window():
    inj = make_injector(FaultType.ZEROS, FaultTarget.IMU)
    inj.apply(sample(12.0))  # inside
    out = inj.apply(sample(16.0))  # after
    assert np.allclose(out.gyro, [0.01, 0.02, 0.03])


def test_accel_target_leaves_gyro_clean():
    inj = make_injector(FaultType.ZEROS, FaultTarget.ACCEL)
    out = inj.apply(sample(12.0))
    assert np.allclose(out.accel, 0.0)
    assert np.allclose(out.gyro, [0.01, 0.02, 0.03])


def test_gyro_target_leaves_accel_clean():
    inj = make_injector(FaultType.MAX, FaultTarget.GYRO)
    out = inj.apply(sample(12.0))
    assert np.allclose(out.gyro, GYRO_RANGE)
    assert np.allclose(out.accel, [0.0, 0.0, -9.8])


def test_imu_target_corrupts_both():
    inj = make_injector(FaultType.MIN, FaultTarget.IMU)
    out = inj.apply(sample(12.0))
    assert np.allclose(out.accel, -ACCEL_RANGE)
    assert np.allclose(out.gyro, -GYRO_RANGE)


def test_freeze_latches_last_clean_sample():
    inj = make_injector(FaultType.FREEZE, FaultTarget.IMU)
    inj.apply(sample(9.99, accel=(1.0, 2.0, 3.0), gyro=(0.1, 0.2, 0.3)))
    out = inj.apply(sample(10.0, accel=(9.0, 9.0, 9.0), gyro=(9.0, 9.0, 9.0)))
    assert np.allclose(out.accel, [9.0, 9.0, 9.0]) or np.allclose(out.accel, [1.0, 2.0, 3.0])
    # Freeze must latch the value from the activation edge and hold it.
    later = inj.apply(sample(11.0, accel=(5.0, 5.0, 5.0), gyro=(5.0, 5.0, 5.0)))
    assert np.allclose(later.accel, out.accel)
    assert np.allclose(later.gyro, out.gyro)


def test_input_sample_not_mutated():
    inj = make_injector(FaultType.ZEROS, FaultTarget.IMU)
    s = sample(12.0)
    inj.apply(s)
    assert np.allclose(s.accel, [0.0, 0.0, -9.8])


def test_fixed_constant_for_whole_window():
    inj = make_injector(FaultType.FIXED, FaultTarget.ACCEL)
    a = inj.apply(sample(10.5)).accel
    b = inj.apply(sample(14.9)).accel
    assert np.allclose(a, b)


def test_deterministic_for_seed():
    a = make_injector(FaultType.RANDOM, FaultTarget.IMU, seed=7).apply(sample(12.0))
    b = make_injector(FaultType.RANDOM, FaultTarget.IMU, seed=7).apply(sample(12.0))
    assert np.allclose(a.accel, b.accel)
    assert np.allclose(a.gyro, b.gyro)


def test_accel_and_gyro_random_streams_differ():
    inj = make_injector(FaultType.RANDOM, FaultTarget.IMU, seed=3)
    out = inj.apply(sample(12.0))
    assert not np.allclose(out.accel / ACCEL_RANGE, out.gyro / GYRO_RANGE)


def test_is_active_tracks_window():
    inj = make_injector(FaultType.ZEROS, FaultTarget.IMU, start=10.0, duration=5.0)
    assert not inj.is_active(9.9)
    assert inj.is_active(10.0)
    assert inj.is_active(14.99)
    assert not inj.is_active(15.0)
