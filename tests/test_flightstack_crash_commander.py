"""Unit tests for the crash detector and the commander phase machine."""

import math

import numpy as np
import pytest

from repro.flightstack import Commander, CrashDetector, FlightPhase, MissionOutcome
from repro.flightstack.params import FlightParams
from repro.missions import MissionPlan, Waypoint
from repro.missions.spec import DroneSpec
from repro.sim.dynamics import GroundContact


def contact(speed=1.0, vertical=1.0, tilt_deg=5.0, t=10.0):
    return GroundContact(
        time_s=t,
        impact_speed_m_s=speed,
        vertical_speed_m_s=vertical,
        tilt_rad=math.radians(tilt_deg),
    )


# ------------------------------------------------------------ CrashDetector


def test_soft_landing_not_a_crash():
    det = CrashDetector()
    det.assess_contact(contact(speed=0.8, vertical=0.8), landing_expected=True)
    assert not det.crashed


def test_hard_landing_is_a_crash():
    det = CrashDetector()
    det.assess_contact(contact(speed=5.0, vertical=5.0), landing_expected=True)
    assert det.crashed
    assert det.report.reason == "hard landing impact"


def test_tipped_landing_is_a_crash():
    det = CrashDetector()
    det.assess_contact(contact(speed=1.0, vertical=1.0, tilt_deg=40.0), landing_expected=True)
    assert det.crashed


def test_unexpected_ground_contact_is_a_crash():
    det = CrashDetector()
    det.assess_contact(contact(speed=2.0, vertical=1.5), landing_expected=False)
    assert det.crashed
    assert det.report.reason == "uncontrolled ground impact"


def test_same_contact_not_reassessed():
    det = CrashDetector()
    touch = contact(speed=0.5, vertical=0.5)
    det.assess_contact(touch, landing_expected=True)
    # Same event later under different expectations: still not a crash.
    det.assess_contact(touch, landing_expected=False)
    assert not det.crashed


def test_none_contact_ignored():
    det = CrashDetector()
    det.assess_contact(None, landing_expected=False)
    assert not det.crashed


def test_first_crash_latches():
    det = CrashDetector()
    det.assess_contact(contact(speed=9.0, vertical=9.0, t=5.0), landing_expected=False)
    first = det.report
    det.assess_contact(contact(speed=20.0, vertical=20.0, t=6.0), landing_expected=False)
    assert det.report is first


# --------------------------------------------------------------- Commander


def make_plan():
    drone = DroneSpec(1, "UAV-01", cruise_speed_m_s=4.0, top_speed_m_s=6.0, mass_kg=1.5)
    return MissionPlan(
        mission_id=1,
        drone=drone,
        waypoints=[Waypoint((0.0, 0.0, -15.0)), Waypoint((50.0, 0.0, -15.0))],
    )


def test_commander_initial_phase():
    cmd = Commander(make_plan())
    assert cmd.phase == FlightPhase.PREFLIGHT
    assert not cmd.terminal


def test_takeoff_requires_preflight():
    cmd = Commander(make_plan())
    cmd.arm_and_takeoff(0.0)
    with pytest.raises(RuntimeError):
        cmd.arm_and_takeoff(1.0)


def test_takeoff_output_climbs():
    cmd = Commander(make_plan())
    cmd.arm_and_takeoff(0.0)
    out = cmd.update(0.1, np.zeros(3), on_ground=True, failsafe_engaged=False, crashed=False)
    assert out.position_sp_ned[2] == -15.0
    assert out.velocity_ff_ned[2] < 0.0


def test_takeoff_transitions_to_mission_at_altitude():
    cmd = Commander(make_plan())
    cmd.arm_and_takeoff(0.0)
    cmd.update(5.0, np.array([0.0, 0.0, -15.0]), False, False, False)
    assert cmd.phase == FlightPhase.MISSION


def test_mission_to_landing_to_completed():
    cmd = Commander(make_plan())
    cmd.arm_and_takeoff(0.0)
    cmd.update(5.0, np.array([0.0, 0.0, -15.0]), False, False, False)
    cmd.update(20.0, np.array([50.0, 0.0, -15.0]), False, False, False)
    assert cmd.phase == FlightPhase.LANDING
    # Dwell on the ground long enough to disarm.
    cmd.update(30.0, np.array([50.0, 0.0, 0.0]), True, False, False)
    cmd.update(32.0, np.array([50.0, 0.0, 0.0]), True, False, False)
    assert cmd.outcome == MissionOutcome.COMPLETED


def test_crash_is_terminal():
    cmd = Commander(make_plan())
    cmd.arm_and_takeoff(0.0)
    cmd.update(5.0, np.zeros(3), False, False, crashed=True)
    assert cmd.outcome == MissionOutcome.CRASHED
    assert cmd.terminal


def test_failsafe_routes_to_emergency_land():
    cmd = Commander(make_plan())
    cmd.arm_and_takeoff(0.0)
    cmd.update(5.0, np.array([10.0, 0.0, -15.0]), False, failsafe_engaged=True, crashed=False)
    assert cmd.phase == FlightPhase.FAILSAFE_LAND
    # Emergency landing completes -> FAILSAFE verdict, not COMPLETED.
    cmd.update(30.0, np.array([10.0, 0.0, 0.0]), True, True, False)
    cmd.update(32.0, np.array([10.0, 0.0, 0.0]), True, True, False)
    assert cmd.outcome == MissionOutcome.FAILSAFE


def test_crash_during_failsafe_keeps_failsafe_verdict():
    cmd = Commander(make_plan())
    cmd.arm_and_takeoff(0.0)
    cmd.update(5.0, np.array([10.0, 0.0, -15.0]), False, True, False)
    assert cmd.phase == FlightPhase.FAILSAFE_LAND
    cmd.update(6.0, np.array([10.0, 0.0, -5.0]), False, True, crashed=True)
    assert cmd.outcome == MissionOutcome.FAILSAFE


def test_timeout_verdict():
    params = FlightParams(mission_timeout_min_s=10.0, mission_timeout_factor=0.01)
    cmd = Commander(make_plan(), params)
    cmd.arm_and_takeoff(0.0)
    cmd.update(11.0, np.zeros(3), False, False, False)
    assert cmd.outcome == MissionOutcome.TIMEOUT


def test_yaw_hold_faces_first_leg():
    cmd = Commander(make_plan())
    cmd.arm_and_takeoff(0.0)
    out = cmd.update(0.1, np.zeros(3), True, False, False)
    assert abs(out.yaw_sp_rad) < 1e-6  # first leg due north


def test_idle_output_when_terminal():
    cmd = Commander(make_plan())
    cmd.arm_and_takeoff(0.0)
    cmd.update(5.0, np.zeros(3), False, False, crashed=True)
    out = cmd.update(6.0, np.array([1.0, 2.0, -3.0]), False, False, True)
    assert out.thrust_idle
