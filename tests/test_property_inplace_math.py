"""Property tests: in-place hot-loop math equals its allocating original.

The performance pass replaced allocating numpy expressions with
preallocated-buffer variants. These hypothesis properties pin the
*bit-level* contract between each pair — not approximate closeness —
because the differential/golden-trace harness relies on the optimised
step reproducing the reference step exactly:

* every ``quat_*_into`` variant vs its allocating counterpart
  (including the aliasing patterns the EKF and controllers use);
* the buffered :class:`repro.control.mixer.Mixer` vs the allocating
  ``ReferenceMixer``;
* the in-place EKF scalar Kalman update vs the allocating
  ``ReferenceEkf._scalar_update``.
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.mixer import Mixer
from repro.estimation.ekf import Ekf
from repro.mathutils import (
    quat_conjugate,
    quat_conjugate_into,
    quat_from_axis_angle,
    quat_from_axis_angle_into,
    quat_from_euler,
    quat_from_rotation_matrix,
    quat_from_rotation_matrix_into,
    quat_integrate,
    quat_integrate_into,
    quat_multiply,
    quat_multiply_into,
    quat_normalize,
    quat_normalize_into,
    quat_rotate,
    quat_rotate_into,
    quat_to_rotation_matrix,
    quat_to_rotation_matrix_into,
)
from repro.perf.reference import ReferenceEkf, ReferenceMixer

angles = st.floats(-math.pi, math.pi, allow_nan=False)
coords = st.floats(-100.0, 100.0, allow_nan=False)
rates = st.floats(-30.0, 30.0, allow_nan=False)


def unit_quats():
    return st.builds(quat_from_euler, angles, angles, angles)


def raw_quats():
    """Arbitrary 4-vectors, including the near-zero degenerate branch."""
    return st.builds(lambda w, x, y, z: np.array([w, x, y, z]), coords, coords, coords, coords)


def vectors(elements=coords):
    return st.builds(lambda x, y, z: np.array([x, y, z]), elements, elements, elements)


def _bits(a: np.ndarray) -> bytes:
    return np.asarray(a, dtype=float).tobytes()


# ---------------------------------------------------------------------------
# Quaternion _into variants
# ---------------------------------------------------------------------------


@given(raw_quats())
def test_normalize_into_matches(q):
    out = np.empty(4)
    assert _bits(quat_normalize_into(q.copy(), out)) == _bits(quat_normalize(q))


@given(raw_quats())
def test_normalize_into_aliasing(q):
    """``quat_normalize_into(q, q)`` — the EKF's self-normalise pattern."""
    aliased = q.copy()
    quat_normalize_into(aliased, aliased)
    assert _bits(aliased) == _bits(quat_normalize(q))


@given(unit_quats(), unit_quats())
def test_multiply_into_matches(q1, q2):
    out = np.empty(4)
    assert _bits(quat_multiply_into(q1, q2, out)) == _bits(quat_multiply(q1, q2))


@given(unit_quats(), unit_quats())
def test_multiply_into_aliases_first_operand(q1, q2):
    """``quat_multiply_into(q, dq, q)`` — the error-injection pattern."""
    aliased = q1.copy()
    quat_multiply_into(aliased, q2, aliased)
    assert _bits(aliased) == _bits(quat_multiply(q1, q2))


@given(unit_quats())
def test_conjugate_into_matches(q):
    out = np.empty(4)
    assert _bits(quat_conjugate_into(q, out)) == _bits(quat_conjugate(q))


@given(unit_quats(), vectors())
def test_rotate_into_matches(q, v):
    out = np.empty(3)
    assert _bits(quat_rotate_into(q, v, out)) == _bits(quat_rotate(q, v))
    aliased = v.copy()
    quat_rotate_into(q, aliased, aliased)
    assert _bits(aliased) == _bits(quat_rotate(q, v))


@given(vectors(), st.floats(-10.0, 10.0, allow_nan=False))
def test_from_axis_angle_into_matches(axis, angle):
    out = np.empty(4)
    assert _bits(quat_from_axis_angle_into(axis, angle, out)) == _bits(
        quat_from_axis_angle(axis, angle)
    )


@given(raw_quats())
def test_to_rotation_matrix_into_matches(q):
    out = np.empty((3, 3))
    assert _bits(quat_to_rotation_matrix_into(q, out)) == _bits(quat_to_rotation_matrix(q))


@given(unit_quats())
def test_from_rotation_matrix_into_matches(q):
    rot = quat_to_rotation_matrix(q)
    out = np.empty(4)
    assert _bits(quat_from_rotation_matrix_into(rot, out)) == _bits(
        quat_from_rotation_matrix(rot)
    )


@given(unit_quats(), vectors(rates), st.floats(1e-4, 0.1, allow_nan=False))
def test_integrate_into_matches(q, omega, dt):
    out = np.empty(4)
    assert _bits(quat_integrate_into(q, omega, dt, out)) == _bits(
        quat_integrate(q, omega, dt)
    )
    aliased = q.copy()
    quat_integrate_into(aliased, omega, dt, aliased)
    assert _bits(aliased) == _bits(quat_integrate(q, omega, dt))


# ---------------------------------------------------------------------------
# Mixer desaturation
# ---------------------------------------------------------------------------


@given(
    st.floats(-0.5, 2.0, allow_nan=False),
    vectors(st.floats(-3.0, 3.0, allow_nan=False)),
)
def test_mixer_matches_reference(collective, torque_cmd):
    """Buffered mix == allocating mix through every desaturation branch."""
    fast = Mixer().mix(collective, torque_cmd)
    slow = ReferenceMixer().mix(collective, torque_cmd)
    assert _bits(fast) == _bits(slow)


# ---------------------------------------------------------------------------
# EKF scalar Kalman update
# ---------------------------------------------------------------------------


def _paired_ekfs(diag, quaternion):
    """Two EKFs in identical state; one demoted to the reference class."""
    fast = Ekf()
    slow = Ekf()
    slow.__class__ = ReferenceEkf
    for ekf in (fast, slow):
        ekf.covariance = np.diag(diag).copy()
        ekf.quaternion = quaternion.copy()
    return fast, slow


@given(
    st.lists(st.floats(1e-6, 2.0, allow_nan=False), min_size=15, max_size=15),
    unit_quats(),
    st.lists(st.floats(-2.0, 2.0, allow_nan=False), min_size=15, max_size=15),
    st.floats(-5.0, 5.0, allow_nan=False),
    st.floats(1e-6, 10.0, allow_nan=False),
    st.floats(0.1, 20.0, allow_nan=False),
)
@settings(max_examples=50)
def test_scalar_update_matches_reference(diag, quaternion, h, innovation, meas_var, gate):
    """In-place gated update == allocating update, accepted or rejected."""
    fast, slow = _paired_ekfs(np.array(diag), quaternion)
    h = np.array(h)
    fast._scalar_update(innovation, h, meas_var, gate, "prop")
    slow._scalar_update(innovation, h, meas_var, gate, "prop")
    assert _bits(fast.quaternion) == _bits(slow.quaternion)
    assert _bits(fast.velocity_ned) == _bits(slow.velocity_ned)
    assert _bits(fast.position_ned) == _bits(slow.position_ned)
    assert _bits(fast.gyro_bias) == _bits(slow.gyro_bias)
    assert _bits(fast.accel_bias) == _bits(slow.accel_bias)
    assert _bits(fast.covariance) == _bits(slow.covariance)
    fast_ratio = fast.monitor.test_ratio("prop")
    slow_ratio = slow.monitor.test_ratio("prop")
    assert fast_ratio == slow_ratio
