"""Bench: the gold-run baseline (Table II/III first row).

Paper reference: 10 fault-free missions averaging 491.26 s and 3.65 km
at full scale, with zero bubble violations. This bench times one full
closed-loop gold mission end to end (physics + sensors + EKF + control
at 100 Hz) and checks the baseline invariants on all benched missions.
"""

from repro import UavSystem, valencia_missions


def test_gold_run_baseline(benchmark, bench_config):
    plans = {p.mission_id: p for p in valencia_missions(scale=bench_config.scale)}
    mission_ids = bench_config.mission_ids

    def fly_gold(mission_id):
        return UavSystem(plans[mission_id]).run()

    result = benchmark.pedantic(fly_gold, args=(mission_ids[0],), rounds=1, iterations=1)
    results = [result] + [fly_gold(mid) for mid in mission_ids[1:]]

    print()
    print(f"{'mission':>8} {'outcome':>10} {'duration (s)':>13} {'distance (km)':>14} {'violations':>11}")
    for mid, res in zip(mission_ids, results):
        print(
            f"{mid:>8} {res.outcome.value:>10} {res.flight_duration_s:>13.2f} "
            f"{res.distance_km:>14.3f} {res.inner_violations:>11d}"
        )

    for res in results:
        assert res.completed
        assert res.inner_violations == 0
        assert res.outer_violations == 0
        assert res.crash_time_s is None
        assert res.failsafe_time_s is None
