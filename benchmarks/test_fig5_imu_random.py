"""Bench: regenerate Figure 5 — random values into the whole IMU.

Paper reference (Fig. 5): random values injected into both the
accelerometer and the gyrometer for 30 s shortly before a waypoint; the
drone is lost very quickly and "very forcefully" because neither sensor
is available to stabilise it.
"""

from repro.core.figures import FIGURE_3, FIGURE_5, render_ascii_trajectory, run_figure_scenario
from repro.flightstack.commander import MissionOutcome


def test_fig5_imu_random_fast_loss(benchmark, bench_config):
    result = benchmark.pedantic(
        run_figure_scenario,
        args=(FIGURE_5,),
        kwargs={"scale": bench_config.scale},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_ascii_trajectory(result))

    assert result.outcome != MissionOutcome.COMPLETED
    # "Crashes very quickly": the time from injection to end of flight is
    # short — the vehicle is lost within seconds of the fault window
    # opening, well before the 30 s injection even completes.
    loss_latency = result.times_s[-1] - result.injection_start_s
    assert loss_latency < FIGURE_5.duration_s

    # Compare against Fig. 3 (accel-only): the full-IMU loss is at least
    # as fast as the accelerometer-only loss on the same scale.
    acc_result = run_figure_scenario(FIGURE_3, scale=bench_config.scale)
    acc_latency = acc_result.times_s[-1] - acc_result.injection_start_s
    assert loss_latency <= acc_latency + 5.0
