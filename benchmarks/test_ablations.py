"""Benches: ablations of the design choices DESIGN.md calls out.

These are not paper tables; they quantify how much each reproduced
mechanism contributes to the paper-shaped results (and would let a
reviewer see which mechanism a divergence traces back to).
"""

from repro.core.ablations import (
    confidence_scheduling_ablation,
    fusion_reset_ablation,
    render_ablation,
)


def test_fusion_reset_matters_for_accel_faults(benchmark):
    points = benchmark.pedantic(fusion_reset_ablation, rounds=1, iterations=1)
    print()
    print(render_ablation(points, "EKF fusion-timeout reset on/off (accel faults)"))
    enabled = next(p for p in points if p.value is True)
    disabled = next(p for p in points if p.value is False)
    # Without the reset the filter cannot recover after divergence, so
    # completion cannot improve; typically it collapses.
    assert disabled.completed_pct <= enabled.completed_pct


def test_confidence_scheduling_matters_for_gyro_dead(benchmark):
    points = benchmark.pedantic(confidence_scheduling_ablation, rounds=1, iterations=1)
    print()
    print(render_ablation(points, "Attitude-confidence gain scheduling on/off (gyro dead)"))
    enabled = next(p for p in points if p.value is True)
    disabled = next(p for p in points if p.value is False)
    # Full-gain control on a stale attitude estimate loses the vehicle;
    # derated control keeps gyro-dead windows flyable (paper: Gyro Zeros
    # is the most survivable gyro fault).
    assert enabled.completed_pct > disabled.completed_pct
