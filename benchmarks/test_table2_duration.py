"""Bench: regenerate Table II — averages grouped by injection duration.

Paper reference (Table II): gold runs complete 100% with 0 violations;
completion falls from ~20% at 2 s injections to ~10.5% at 30 s, while
inner/outer bubble violations rise with duration.
"""

from repro import render_table, table2_by_duration


def test_table2_by_duration(benchmark, campaign):
    rows = benchmark.pedantic(table2_by_duration, args=(campaign,), rounds=3, iterations=1)
    print()
    print(render_table(rows, "TABLE II: average summary grouped by injection duration"))

    gold = rows[0]
    assert gold.label == "Gold Run"
    assert gold.completed_pct == 100.0
    assert gold.inner_violations_avg == 0.0
    assert gold.outer_violations_avg == 0.0

    by_label = {r.label: r for r in rows}
    shortest = by_label["2 seconds"]
    longest = by_label["30 seconds"]
    # Paper shape: every duration fails most missions, the longest
    # injection completes the fewest and violates the most.
    assert shortest.completed_pct < 60.0
    assert longest.completed_pct <= shortest.completed_pct
    assert longest.inner_violations_avg >= shortest.inner_violations_avg
    # Faulty flights are cut short relative to gold. (No such assertion
    # for the distance column: it is *EKF-estimated* distance, per the
    # paper's metric definition, and violent faults inflate it by
    # thrashing the estimate — at reduced mission scale that inflation
    # can exceed the short gold route.)
    assert longest.duration_avg_s < gold.duration_avg_s
