"""Bench: raw simulator throughput (not a paper table).

Times the full closed-loop step (physics + sensors + injector + EKF +
control cascade) to document the real-time factor of the substrate the
campaign runs on.

Budget asserts use the *median* round, not the mean — a single
scheduler hiccup in one round must not fail the suite — and the budget
itself is overridable via ``REPRO_BENCH_BUDGET_S`` for slow CI runners
(the fault case gets 1.5x the budget). ``python -m repro.perf`` is the
richer profiling entry point; this file is only the pytest-visible
smoke check.
"""

import os

from repro import FaultSpec, FaultTarget, FaultType, SystemConfig, UavSystem, valencia_missions

#: Seconds allowed for 100 steps (1 simulated second) in the gold run.
BUDGET_S = float(os.environ.get("REPRO_BENCH_BUDGET_S", "1.0"))


def _stepper(fault=None):
    plan = valencia_missions(scale=0.1)[3]
    system = UavSystem(plan, config=SystemConfig(), fault=fault)
    system.commander.arm_and_takeoff(0.0)
    # Get airborne first so the benched steps are steady-state cruise.
    for _ in range(1000):
        system.step()
    return system


def test_closed_loop_step_rate(benchmark):
    system = _stepper()

    def step_100():
        for _ in range(100):
            system.step()

    benchmark.pedantic(step_100, rounds=20, iterations=1)
    # 100 steps = 1 simulated second; the budget check documents that the
    # simulator is fast enough to run the 850-case campaign. Skipped
    # under --benchmark-disable, where no stats exist.
    if benchmark.enabled:
        assert benchmark.stats.stats.median < BUDGET_S  # faster than real time


def test_closed_loop_step_rate_under_fault(benchmark):
    # Fault onset at warmup end so the benched rounds measure the active
    # fault response (injector + gated EKF + failsafe + desaturating
    # mixer), not cheap post-crash idle steps. A Random IMU fault drives
    # the vehicle terminal within ~4 s of onset, so only the first few
    # rounds are in the violent regime — the median still reflects it
    # with rounds=3.
    fault = FaultSpec(FaultType.RANDOM, FaultTarget.IMU, start_time_s=10.0, duration_s=1e6)
    system = _stepper(fault)

    def step_100():
        for _ in range(100):
            system.step()

    benchmark.pedantic(step_100, rounds=3, iterations=1)
    if benchmark.enabled:
        assert benchmark.stats.stats.median < BUDGET_S * 1.5
