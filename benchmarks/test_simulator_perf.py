"""Bench: raw simulator throughput (not a paper table).

Times the full closed-loop step (physics + sensors + injector + EKF +
control cascade) to document the real-time factor of the substrate the
campaign runs on.
"""

from repro import FaultSpec, FaultTarget, FaultType, SystemConfig, UavSystem, valencia_missions


def _stepper(fault=None):
    plan = valencia_missions(scale=0.1)[3]
    system = UavSystem(plan, config=SystemConfig(), fault=fault)
    system.commander.arm_and_takeoff(0.0)
    # Get airborne first so the benched steps are steady-state cruise.
    for _ in range(1000):
        system.step()
    return system


def test_closed_loop_step_rate(benchmark):
    system = _stepper()

    def step_100():
        for _ in range(100):
            system.step()

    benchmark.pedantic(step_100, rounds=20, iterations=1)
    # 100 steps = 1 simulated second; the budget check documents that the
    # simulator is fast enough to run the 850-case campaign.
    assert benchmark.stats.stats.mean < 1.0  # faster than real time


def test_closed_loop_step_rate_under_fault(benchmark):
    fault = FaultSpec(FaultType.RANDOM, FaultTarget.IMU, start_time_s=0.0, duration_s=1e6)
    system = _stepper(fault)

    def step_100():
        for _ in range(100):
            system.step()

    benchmark.pedantic(step_100, rounds=10, iterations=1)
    assert benchmark.stats.stats.mean < 1.5
