"""Bench: regenerate Table III — averages grouped by fault type.

Paper reference (Table III): Acc Zeros/Noise complete most (60-67.5%)
despite high violations, Gyro Zeros is the most survivable gyro fault
(40%), the violent gyro faults (Min/Max/Random) are near-total failures,
and full-IMU faults are the worst group with several 0% rows.
"""

from repro import render_table, table3_by_fault


def _pct(rows, label):
    return {r.label: r for r in rows}[label].completed_pct


def test_table3_by_fault(benchmark, campaign):
    rows = benchmark.pedantic(table3_by_fault, args=(campaign,), rounds=3, iterations=1)
    print()
    print(render_table(rows, "TABLE III: average summary grouped by fault type"))

    assert rows[0].label == "Gold Run"
    assert rows[0].completed_pct == 100.0
    assert len(rows) == 22  # gold + 21 fault rows

    # Benign accelerometer faults survive far more often than violent ones.
    acc_benign = max(_pct(rows, "Acc Zeros"), _pct(rows, "Acc Noise"))
    acc_violent = max(
        _pct(rows, "Acc Min"), _pct(rows, "Acc Max"), _pct(rows, "Acc Random")
    )
    assert acc_benign > acc_violent

    # Gyro Zeros is the most survivable gyro fault (paper Sec. IV-D:
    # "Zeros were better handled ... than the Min and Max values").
    gyro_rows = [r for r in rows if r.label.startswith("Gyro")]
    best_gyro = max(gyro_rows, key=lambda r: r.completed_pct)
    assert best_gyro.label in ("Gyro Zeros", "Gyro Freeze")
    assert _pct(rows, "Gyro Zeros") > _pct(rows, "Gyro Min")
    assert _pct(rows, "Gyro Min") <= 20.0
    assert _pct(rows, "Gyro Max") <= 20.0
    assert _pct(rows, "Gyro Random") <= 20.0

    # Full-IMU faults are the worst component overall.
    imu_avg = sum(r.completed_pct for r in rows if r.label.startswith("IMU")) / 7.0
    acc_avg = sum(r.completed_pct for r in rows if r.label.startswith("Acc")) / 7.0
    gyro_avg = sum(r.completed_pct for r in gyro_rows) / 7.0
    assert imu_avg < acc_avg
    assert imu_avg <= gyro_avg + 1e-9
