"""Bench: regenerate Figure 3 — fixed value into Acc of the fastest drone.

Paper reference (Fig. 3): a random-but-constant value injected into the
accelerometer of the 25 km/h drone for 30 s, mid-leg; the drone leaves
its trajectory and crashes.
"""

from repro.core.figures import FIGURE_3, render_ascii_trajectory, run_figure_scenario
from repro.flightstack.commander import MissionOutcome


def test_fig3_acc_fixed_value_crash(benchmark, bench_config):
    result = benchmark.pedantic(
        run_figure_scenario,
        args=(FIGURE_3,),
        kwargs={"scale": bench_config.scale},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_ascii_trajectory(result))

    # The paper's outcome: the drone does not complete the mission.
    assert result.outcome != MissionOutcome.COMPLETED
    # It physically departs the assigned route (off-trajectory excursion).
    from repro.missions.plan import distance_to_polyline

    max_true_dev = max(
        distance_to_polyline(p, list(result.route_ned)) for p in result.flown_true_ned
    )
    assert max_true_dev > 5.0
    # And the flight ends early relative to the injection-free route.
    assert result.times_s[-1] > result.injection_start_s
