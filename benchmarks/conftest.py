"""Shared fixtures for the benchmark harness.

The benches regenerate the paper's tables and figures. Because every
experiment is a full closed-loop simulation, the campaign used by the
table benches is executed once per session (session-scoped fixture) at a
reduced geometric scale, and each bench then reduces it to its table.

Knobs (environment variables):

* ``REPRO_BENCH_SCALE``    — mission geometry scale (default 0.12).
* ``REPRO_BENCH_MISSIONS`` — comma-separated mission ids (default
  ``2,5,10``: a straight slow courier, a zig-zag delivery, and the fast
  turning mission — one per speed regime).

Set ``REPRO_BENCH_MISSIONS=1,2,3,4,5,6,7,8,9,10`` and
``REPRO_BENCH_SCALE=1.0`` to reproduce at full paper scale (hours).
"""

from __future__ import annotations

import os

import pytest

from repro import CampaignConfig, run_campaign


def _bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.12"))


def _bench_missions() -> tuple[int, ...]:
    raw = os.environ.get("REPRO_BENCH_MISSIONS", "2,5,10")
    return tuple(int(x) for x in raw.split(","))


@pytest.fixture(scope="session")
def bench_config() -> CampaignConfig:
    return CampaignConfig(scale=_bench_scale(), mission_ids=_bench_missions())


@pytest.fixture(scope="session")
def campaign(bench_config):
    """The shared fault-injection campaign behind Tables II-IV."""
    return run_campaign(bench_config)
