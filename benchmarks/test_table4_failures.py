"""Bench: regenerate Table IV — mission failure / crash / failsafe rates.

Paper reference (Table IV): even 2 s injections fail ~80% of missions;
failure rises with duration (~90% at 30 s). Per component, Acc fails
least (73%), Gyro more (87.5%), and the full IMU most (96%), with the
IMU showing the largest failsafe share (52.8%) because either sensor's
threshold can trigger it.
"""

from repro import render_table, table4_failure_analysis


def _row(rows, label):
    return {r.label: r for r in rows}[label]


def test_table4_failure_analysis(benchmark, campaign):
    rows = benchmark.pedantic(
        table4_failure_analysis, args=(campaign,), rounds=3, iterations=1
    )
    print()
    print(render_table(rows, "TABLE IV: mission failure analysis"))

    gold = _row(rows, "Gold Run")
    assert gold.failed_pct == 0.0

    # Even the shortest injection fails most missions (paper: 80% at 2 s).
    assert _row(rows, "2 seconds").failed_pct > 50.0
    # Longest injection fails at least as much as the shortest.
    assert _row(rows, "30 seconds").failed_pct >= _row(rows, "2 seconds").failed_pct

    acc = _row(rows, "Acc")
    gyro = _row(rows, "Gyro")
    imu = _row(rows, "IMU")
    # Component ordering: Acc < Gyro < IMU failure rates.
    assert acc.failed_pct < gyro.failed_pct < imu.failed_pct
    assert imu.failed_pct > 90.0

    # Crash + failsafe split always accounts for all failures.
    for row in rows:
        if row.failed_pct > 0.0:
            total = row.crash_pct_of_failed + row.failsafe_pct_of_failed
            assert abs(total - 100.0) < 1e-6
