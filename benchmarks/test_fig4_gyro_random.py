"""Bench: regenerate Figure 4 — random values into the gyro near a turn.

Paper reference (Fig. 4): random values injected into the gyrometer for
30 s just before a waypoint of a turning mission; the drone reaches the
waypoint but cannot stabilise for the turn and the failsafe engages.
"""

from repro.core.figures import FIGURE_4, render_ascii_trajectory, run_figure_scenario
from repro.flightstack.commander import MissionOutcome


def test_fig4_gyro_random_failsafe(benchmark, bench_config):
    result = benchmark.pedantic(
        run_figure_scenario,
        args=(FIGURE_4,),
        kwargs={"scale": bench_config.scale},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_ascii_trajectory(result))

    # A violent gyro fault never completes; the paper's run ends in
    # failsafe (ours may also crash depending on the seed, but the
    # mission is lost either way and usually via failsafe).
    assert result.outcome in (MissionOutcome.FAILSAFE, MissionOutcome.CRASHED)
    # The mission used must be a turning mission, as in the figure.
    from repro.missions.valencia import valencia_missions

    plan = {p.mission_id: p for p in valencia_missions(scale=bench_config.scale)}[
        FIGURE_4.mission_id
    ]
    assert plan.has_turns
