"""Flight-log persistence: the recorder's samples as JSON-lines.

The paper's platform "records all flights, capturing data from both
fault-injected and fault-free scenarios"; this module is the disk
format. JSONL keeps logs appendable and streamable, one sample per
line, with a header line carrying run metadata.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.atomicio import atomic_write_text
from repro.telemetry.recorder import FlightRecorder, FlightSample

_SCHEMA_VERSION = 1


def save_flight_log(
    recorder: FlightRecorder,
    path: str | Path,
    metadata: dict | None = None,
) -> None:
    """Write a recorder's samples (plus metadata) as JSONL."""
    lines = [
        json.dumps(
            {
                "schema_version": _SCHEMA_VERSION,
                "type": "header",
                "sample_count": len(recorder.samples),
                "estimated_distance_m": recorder.estimated_distance_m,
                "metadata": metadata or {},
            }
        )
    ]
    for s in recorder.samples:
        lines.append(
            json.dumps(
                {
                    "t": round(s.time_s, 4),
                    "p_true": [round(float(x), 4) for x in s.position_true_ned],
                    "p_est": [round(float(x), 4) for x in s.position_est_ned],
                    "v_true": [round(float(x), 4) for x in s.velocity_true_ned],
                    "v_est": [round(float(x), 4) for x in s.velocity_est_ned],
                    "tilt": round(s.tilt_rad, 5),
                    "phase": s.phase,
                    "fault": s.fault_active,
                }
            )
        )
    atomic_write_text(Path(path), "\n".join(lines) + "\n")


def load_flight_log(path: str | Path) -> tuple[list[FlightSample], dict]:
    """Read a JSONL flight log; returns (samples, header metadata)."""
    lines = Path(path).read_text().strip().split("\n")
    header = json.loads(lines[0])
    if header.get("schema_version") != _SCHEMA_VERSION or header.get("type") != "header":
        raise ValueError(f"not a flight log (or unsupported version): {path}")
    samples = []
    for line in lines[1:]:
        row = json.loads(line)
        samples.append(
            FlightSample(
                time_s=row["t"],
                position_true_ned=np.array(row["p_true"]),
                position_est_ned=np.array(row["p_est"]),
                velocity_true_ned=np.array(row["v_true"]),
                velocity_est_ned=np.array(row["v_est"]),
                tilt_rad=row["tilt"],
                phase=row["phase"],
                fault_active=row["fault"],
            )
        )
    if len(samples) != header["sample_count"]:
        raise ValueError(
            f"truncated flight log: header says {header['sample_count']} samples, "
            f"found {len(samples)}"
        )
    return samples, header.get("metadata", {})
