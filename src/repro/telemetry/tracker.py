"""The tracker service: per-drone track histories from the broker tree."""

from __future__ import annotations

from collections import defaultdict

from repro.telemetry.broker import Broker
from repro.telemetry.messages import FlightEvent, TrackMessage


class Tracker:
    """Subscribes to track and event topics and stores the history.

    This is the surveillance picture U-space would hold: one track list
    per drone (reported, i.e. EKF-estimated, states) plus flight events.
    """

    def __init__(self, broker: Broker):
        self.tracks: dict[int, list[TrackMessage]] = defaultdict(list)
        self.events: dict[int, list[FlightEvent]] = defaultdict(list)
        broker.subscribe("track/*", self._on_track)
        broker.subscribe("event/*", self._on_event)

    def _on_track(self, topic: str, message: TrackMessage) -> None:
        if not isinstance(message, TrackMessage):
            raise TypeError(f"unexpected message on {topic}: {type(message)}")
        self.tracks[message.drone_id].append(message)

    def _on_event(self, topic: str, message: FlightEvent) -> None:
        if not isinstance(message, FlightEvent):
            raise TypeError(f"unexpected message on {topic}: {type(message)}")
        self.events[message.drone_id].append(message)

    def latest(self, drone_id: int) -> TrackMessage | None:
        """Most recent track for ``drone_id`` (None if never seen)."""
        tracks = self.tracks.get(drone_id)
        return tracks[-1] if tracks else None

    def track_count(self, drone_id: int) -> int:
        """Number of tracking instances recorded for ``drone_id``."""
        return len(self.tracks.get(drone_id, ()))
