"""Flight recorder: decimated time series of true and estimated state.

The platform in the paper "records all flights, capturing data from
both fault-injected and fault-free scenarios"; this recorder is that
log. It keeps both ground truth (for figures showing what actually
happened) and the EKF estimate (for the distance-travelled metric,
which the paper computes from estimated positions).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.obs.registry import NULL_REGISTRY, MetricsRegistry


@dataclass(slots=True)
class FlightSample:
    """One decimated log row."""

    time_s: float
    position_true_ned: np.ndarray
    position_est_ned: np.ndarray
    velocity_true_ned: np.ndarray
    velocity_est_ned: np.ndarray
    tilt_rad: float
    phase: str
    fault_active: bool


class FlightRecorder:
    """Fixed-rate sampler of the running system."""

    def __init__(
        self, rate_hz: float = 5.0, registry: MetricsRegistry | None = None
    ):
        if rate_hz <= 0.0:
            raise ValueError("rate_hz must be positive")
        self.interval_s = 1.0 / rate_hz
        self.samples: list[FlightSample] = []
        self._next_time = 0.0
        self._estimated_distance_m = 0.0
        self._prev_est_position: np.ndarray | None = None
        # Metrics hook: with the (default) null registry both
        # instruments are no-ops, so an unobserved recorder pays two
        # empty calls per decimated row.
        registry = registry if registry is not None else NULL_REGISTRY
        self._distance_gauge = registry.gauge(
            "flight_distance_m", "EKF-estimated distance travelled this run."
        )
        self._rows_total = registry.counter(
            "flight_recorder_rows_total", "Decimated log rows recorded."
        )

    def due(self, time_s: float) -> bool:
        """True when :meth:`maybe_record` would record at ``time_s``.

        Lets the caller skip computing expensive row inputs (e.g. the
        true tilt angle) on the ticks between samples.
        """
        return not (time_s + 1e-9 < self._next_time)

    def maybe_record(
        self,
        time_s: float,
        position_true_ned: np.ndarray,
        position_est_ned: np.ndarray,
        velocity_true_ned: np.ndarray,
        velocity_est_ned: np.ndarray,
        tilt_rad: float,
        phase: str,
        fault_active: bool,
    ) -> None:
        """Record a row if the decimation interval has elapsed.

        The estimated-distance integral is updated on every recorded row
        ("summing the differences between the positions of drones as
        estimated by the EKF", paper Sec. III-D.5).
        """
        if time_s + 1e-9 < self._next_time:
            return
        self._next_time = time_s + self.interval_s

        if self._prev_est_position is not None:
            delta = position_est_ned - self._prev_est_position
            self._estimated_distance_m += math.sqrt(float(delta @ delta))
        self._prev_est_position = position_est_ned.copy()

        self.samples.append(
            FlightSample(
                time_s=time_s,
                position_true_ned=position_true_ned.copy(),
                position_est_ned=position_est_ned.copy(),
                velocity_true_ned=velocity_true_ned.copy(),
                velocity_est_ned=velocity_est_ned.copy(),
                tilt_rad=tilt_rad,
                phase=phase,
                fault_active=fault_active,
            )
        )
        self._distance_gauge.default.set(self._estimated_distance_m)
        self._rows_total.default.inc()

    @property
    def estimated_distance_m(self) -> float:
        """EKF-estimated distance travelled so far (paper metric 5)."""
        return self._estimated_distance_m

    def positions_true(self) -> np.ndarray:
        """(N, 3) array of true positions, for trajectory figures."""
        if not self.samples:
            return np.zeros((0, 3))
        return np.vstack([s.position_true_ned for s in self.samples])

    def positions_estimated(self) -> np.ndarray:
        """(N, 3) array of estimated positions."""
        if not self.samples:
            return np.zeros((0, 3))
        return np.vstack([s.position_est_ned for s in self.samples])

    def times(self) -> np.ndarray:
        """(N,) array of sample times."""
        return np.array([s.time_s for s in self.samples])
