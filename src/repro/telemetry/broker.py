"""In-process pub/sub brokers mirroring the paper's tracking network.

The paper's environment deploys *edge brokers* near the vehicles that
forward to a *core broker* where the tracker subscribes. The same
topology is modelled here with synchronous in-process delivery:
``publish`` walks the subscriber list, then forwards upstream. Topic
matching supports a trailing ``*`` wildcard (``"track/*"``).

A subscriber callback that raises does not break delivery to the other
subscribers; the error is recorded on the broker for inspection, which
keeps one misbehaving consumer from silently killing the campaign's
telemetry (errors must never pass silently, but a fault-injection rig
cannot let a logging consumer take down the run either).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Callable

Subscriber = Callable[[str, Any], None]


@dataclass
class DeliveryError:
    """A subscriber exception captured during publish."""

    topic: str
    subscriber: str
    error: Exception


class Broker:
    """A single pub/sub node."""

    def __init__(self, name: str):
        self.name = name
        self._subscribers: dict[str, list[Subscriber]] = defaultdict(list)
        self._wildcard_subscribers: dict[str, list[Subscriber]] = defaultdict(list)
        self.delivery_errors: list[DeliveryError] = []
        self.published_count = 0

    def subscribe(self, topic: str, callback: Subscriber) -> None:
        """Register ``callback`` for ``topic`` (or ``prefix/*``)."""
        if topic.endswith("/*"):
            self._wildcard_subscribers[topic[:-2]].append(callback)
        else:
            self._subscribers[topic].append(callback)

    def publish(self, topic: str, message: Any) -> int:
        """Deliver ``message`` to all matching subscribers; return count."""
        self.published_count += 1
        delivered = 0
        for callback in self._subscribers.get(topic, ()):
            delivered += self._deliver(callback, topic, message)
        for prefix, callbacks in self._wildcard_subscribers.items():
            if topic.startswith(prefix + "/") or topic == prefix:
                for callback in callbacks:
                    delivered += self._deliver(callback, topic, message)
        return delivered

    def _deliver(self, callback: Subscriber, topic: str, message: Any) -> int:
        try:
            callback(topic, message)
            return 1
        except Exception as exc:  # noqa: BLE001 - isolated by design
            self.delivery_errors.append(
                DeliveryError(topic=topic, subscriber=repr(callback), error=exc)
            )
            return 0


class CoreBroker(Broker):
    """The root broker the tracker subscribes to."""

    def __init__(self, name: str = "core"):
        super().__init__(name)


class EdgeBroker(Broker):
    """A leaf broker that forwards everything upstream after local delivery."""

    def __init__(self, name: str, upstream: Broker):
        super().__init__(name)
        self.upstream = upstream

    def publish(self, topic: str, message: Any) -> int:
        delivered = super().publish(topic, message)
        delivered += self.upstream.publish(topic, message)
        return delivered
