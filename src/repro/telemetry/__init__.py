"""Telemetry: flight recording and the tracking broker tree.

Reproduces the communication side of the paper's experimental
environment (Fig. 1): each vehicle publishes track messages through an
edge broker to a core broker, where the tracker service maintains the
per-drone track history that U-space surveillance (and our bubble
monitor) consumes. Brokers are in-process but preserve the pub/sub
topology so multi-vehicle examples exercise the same data paths.
"""

from repro.telemetry.messages import TrackMessage, FlightEvent
from repro.telemetry.broker import Broker, EdgeBroker, CoreBroker
from repro.telemetry.tracker import Tracker
from repro.telemetry.recorder import FlightRecorder, FlightSample
from repro.telemetry.flightlog import save_flight_log, load_flight_log

__all__ = [
    "TrackMessage",
    "FlightEvent",
    "Broker",
    "EdgeBroker",
    "CoreBroker",
    "Tracker",
    "FlightRecorder",
    "FlightSample",
    "save_flight_log",
    "load_flight_log",
]
