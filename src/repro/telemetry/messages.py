"""Telemetry message types exchanged over the broker tree."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class TrackMessage:
    """One surveillance track report (the U-space tracking instance).

    Positions are the *reported* (EKF-estimated) values — U-space sees
    what the drone believes, which is exactly why IMU faults corrupt the
    picture surveillance has of the airspace.
    """

    drone_id: int
    time_s: float
    position_ned: tuple[float, float, float]
    velocity_ned: tuple[float, float, float]
    airspeed_m_s: float

    @property
    def position_array(self) -> np.ndarray:
        return np.array(self.position_ned)

    @property
    def velocity_array(self) -> np.ndarray:
        return np.array(self.velocity_ned)


@dataclass(frozen=True)
class FlightEvent:
    """A notable flight-stack event (phase change, failsafe, crash)."""

    drone_id: int
    time_s: float
    kind: str
    detail: str = ""
    data: dict = field(default_factory=dict)
