"""Persistence for campaign results.

Campaigns at paper scale take hours, so results must be storable and
re-analysable without re-running. Two formats live here:

* the **final JSON** (:func:`save_campaign` / :func:`load_campaign`):
  flat, versioned, written atomically (temp file + ``os.replace``) so
  an interrupted save can never corrupt an existing results file.
  Schema v2 adds harness-error rows (``outcome: null`` plus ``error``
  and ``attempts``); v3 adds the redundancy axis (``fault_scope``,
  ``mitigated``, ``imu_switchovers``, ``isolation_succeeded``); v4 adds
  the observability plane's ``blackbox_path``; older files remain
  loadable.
* the **JSONL checkpoint journal** (:class:`CampaignJournal`): one
  fsync'd line per completed case, written *while the campaign runs*,
  so a crash or kill loses at most the in-flight cases. The journal
  header carries a campaign fingerprint; resume refuses a checkpoint
  whose fingerprint does not match the requested config.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO, Any

from repro.core.atomicio import atomic_write_text
from repro.core.results import (
    HARNESS_ERROR_OUTCOME,
    CampaignResult,
    ExperimentResult,
)
from repro.flightstack.commander import MissionOutcome

_SCHEMA_VERSION = 4
_SUPPORTED_VERSIONS = (1, 2, 3, 4)

_JOURNAL_SCHEMA_VERSION = 1


def _result_to_dict(r: ExperimentResult) -> dict[str, Any]:
    return {
        "experiment_id": r.experiment_id,
        "mission_id": r.mission_id,
        "fault_label": r.fault_label,
        "fault_type": r.fault_type,
        "target": r.target,
        "injection_duration_s": r.injection_duration_s,
        "outcome": r.outcome.value if r.outcome is not None else None,
        "flight_duration_s": r.flight_duration_s,
        "distance_km": r.distance_km,
        "inner_violations": r.inner_violations,
        "outer_violations": r.outer_violations,
        "max_deviation_m": r.max_deviation_m,
        "error": r.error,
        "attempts": r.attempts,
        "fault_scope": r.fault_scope,
        "mitigated": r.mitigated,
        "imu_switchovers": r.imu_switchovers,
        "isolation_succeeded": r.isolation_succeeded,
        "blackbox_path": r.blackbox_path,
    }


def _result_from_dict(r: dict[str, Any]) -> ExperimentResult:
    outcome = r["outcome"]
    return ExperimentResult(
        experiment_id=r["experiment_id"],
        mission_id=r["mission_id"],
        fault_label=r["fault_label"],
        fault_type=r["fault_type"],
        target=r["target"],
        injection_duration_s=r["injection_duration_s"],
        outcome=MissionOutcome(outcome) if outcome is not None else None,
        flight_duration_s=r["flight_duration_s"],
        distance_km=r["distance_km"],
        inner_violations=r["inner_violations"],
        outer_violations=r["outer_violations"],
        max_deviation_m=r["max_deviation_m"],
        error=r.get("error"),
        attempts=r.get("attempts", 1),
        fault_scope=r.get("fault_scope"),
        mitigated=r.get("mitigated", False),
        imu_switchovers=r.get("imu_switchovers", 0),
        isolation_succeeded=r.get("isolation_succeeded"),
        blackbox_path=r.get("blackbox_path"),
    )


def save_campaign(campaign: CampaignResult, path: str | Path) -> None:
    """Write a campaign to ``path`` as JSON (atomically)."""
    payload = {
        "schema_version": _SCHEMA_VERSION,
        "scale": campaign.scale,
        "injection_time_s": campaign.injection_time_s,
        "results": [_result_to_dict(r) for r in campaign.results],
    }
    atomic_write_text(Path(path), json.dumps(payload, indent=1))


def load_campaign(path: str | Path) -> CampaignResult:
    """Read a campaign previously written by :func:`save_campaign`.

    Accepts schema v1 (pre-resilience files without harness-error
    fields) and v2; refuses unknown versions rather than guessing.
    """
    payload = json.loads(Path(path).read_text())
    version = payload.get("schema_version")
    if version not in _SUPPORTED_VERSIONS:
        raise ValueError(
            f"unsupported campaign schema version {version!r} in {path} "
            f"(expected one of {_SUPPORTED_VERSIONS})"
        )
    results = [_result_from_dict(r) for r in payload["results"]]
    return CampaignResult(
        results=results,
        specs=[],
        scale=payload["scale"],
        injection_time_s=payload["injection_time_s"],
    )


def export_csv(campaign: CampaignResult, path: str | Path) -> None:
    """Write the raw per-experiment rows as CSV (for pandas/R users)."""
    header = (
        "experiment_id,mission_id,fault_label,fault_type,target,"
        "injection_duration_s,outcome,flight_duration_s,distance_km,"
        "inner_violations,outer_violations,max_deviation_m,error,attempts,"
        "fault_scope,mitigated,imu_switchovers,isolation_succeeded,"
        "blackbox_path"
    )
    lines = [header]
    for r in campaign.results:
        label = r.fault_label.replace(",", ";")
        outcome = r.outcome.value if r.outcome is not None else HARNESS_ERROR_OUTCOME
        error = (r.error or "").replace(",", ";").replace("\n", " ")
        isolation = "" if r.isolation_succeeded is None else str(r.isolation_succeeded).lower()
        lines.append(
            f"{r.experiment_id},{r.mission_id},{label},{r.fault_type or ''},"
            f"{r.target or ''},{r.injection_duration_s if r.injection_duration_s is not None else ''},"
            f"{outcome},{r.flight_duration_s:.3f},{r.distance_km:.4f},"
            f"{r.inner_violations},{r.outer_violations},{r.max_deviation_m:.3f},"
            f"{error},{r.attempts},{r.fault_scope or ''},"
            f"{str(r.mitigated).lower()},{r.imu_switchovers},{isolation},"
            f"{(r.blackbox_path or '').replace(',', ';')}"
        )
    atomic_write_text(Path(path), "\n".join(lines) + "\n")


class JournalMismatchError(ValueError):
    """The checkpoint on disk belongs to a different campaign config."""


class CampaignJournal:
    """Crash-safe JSONL checkpoint of a running campaign.

    Line 1 is a header record (fingerprint + provenance); every further
    line is one completed :class:`ExperimentResult`. Appends are
    flushed and fsync'd, so after a crash the journal holds every case
    that finished — at worst the final line is truncated, which
    :meth:`load` tolerates by skipping it.

    On a clean campaign finish, :meth:`finalize` atomically rewrites
    the journal (``os.replace``) with ``complete: true`` in the header
    and exactly one record per case, de-duplicating any rows a
    crash/resume cycle may have repeated.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle: IO[str] | None = None

    def exists(self) -> bool:
        return self.path.exists()

    def create(
        self,
        fingerprint: str,
        scale: float,
        injection_time_s: float,
        total_cases: int,
    ) -> None:
        """Start a fresh journal (truncates any existing file)."""
        header = {
            "kind": "header",
            "journal_version": _JOURNAL_SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "scale": scale,
            "injection_time_s": injection_time_s,
            "total_cases": total_cases,
            "complete": False,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "w")
        self._write_line(header)

    def open_for_append(self) -> None:
        """Re-open an existing journal to continue a resumed campaign."""
        self._handle = open(self.path, "a")

    def append(self, result: ExperimentResult) -> None:
        """Durably record one completed case (flush + fsync)."""
        if self._handle is None:
            raise RuntimeError("journal is not open for writing")
        record = {"kind": "result", **_result_to_dict(result)}
        self._write_line(record)

    def load(
        self, expected_fingerprint: str | None = None
    ) -> tuple[dict[str, Any], dict[int, ExperimentResult]]:
        """Read the journal: (header, results keyed by experiment_id).

        A truncated or corrupt trailing line (crash mid-append) is
        skipped silently; corruption anywhere else raises. When
        ``expected_fingerprint`` is given, a mismatch raises
        :class:`JournalMismatchError` so a stale checkpoint can never
        silently mix campaigns.
        """
        lines = self.path.read_text().splitlines()
        if not lines:
            raise ValueError(f"empty campaign journal: {self.path}")
        header = json.loads(lines[0])
        if header.get("kind") != "header":
            raise ValueError(f"campaign journal {self.path} has no header line")
        if header.get("journal_version") != _JOURNAL_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported journal version {header.get('journal_version')!r} "
                f"in {self.path}"
            )
        if (
            expected_fingerprint is not None
            and header.get("fingerprint") != expected_fingerprint
        ):
            raise JournalMismatchError(
                f"checkpoint {self.path} was written by a different campaign "
                f"config (fingerprint {header.get('fingerprint')!r}); refusing "
                "to mix results — delete it or pass the original config"
            )
        results: dict[int, ExperimentResult] = {}
        for index, line in enumerate(lines[1:], start=2):
            try:
                record = json.loads(line)
                if record.get("kind") != "result":
                    raise ValueError("not a result record")
                result = _result_from_dict(record)
            except (ValueError, KeyError) as exc:
                if index == len(lines):
                    break  # torn final append from a crash — recoverable
                raise ValueError(
                    f"corrupt record at {self.path}:{index}: {exc}"
                ) from exc
            results[result.experiment_id] = result
        return header, results

    def finalize(self) -> None:
        """Atomically mark the journal complete (and compact it)."""
        self.close()
        header, results = self.load()
        header["complete"] = True
        ordered = sorted(results.values(), key=lambda r: r.experiment_id)
        text = "\n".join(
            [json.dumps(header, separators=(",", ":"))]
            + [
                json.dumps({"kind": "result", **_result_to_dict(r)},
                           separators=(",", ":"))
                for r in ordered
            ]
        )
        atomic_write_text(self.path, text + "\n")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def remove(self) -> None:
        """Delete the journal (after the final results file is saved)."""
        self.close()
        if self.path.exists():
            self.path.unlink()

    def _write_line(self, record: dict[str, Any]) -> None:
        assert self._handle is not None
        self._handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
