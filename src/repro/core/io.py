"""Persistence for campaign results.

Campaigns at paper scale take hours, so results must be storable and
re-analysable without re-running. The JSON schema is flat and versioned;
:func:`load_campaign` refuses unknown versions rather than guessing.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.results import CampaignResult, ExperimentResult
from repro.flightstack.commander import MissionOutcome

_SCHEMA_VERSION = 1


def save_campaign(campaign: CampaignResult, path: str | Path) -> None:
    """Write a campaign to ``path`` as JSON."""
    payload = {
        "schema_version": _SCHEMA_VERSION,
        "scale": campaign.scale,
        "injection_time_s": campaign.injection_time_s,
        "results": [
            {
                "experiment_id": r.experiment_id,
                "mission_id": r.mission_id,
                "fault_label": r.fault_label,
                "fault_type": r.fault_type,
                "target": r.target,
                "injection_duration_s": r.injection_duration_s,
                "outcome": r.outcome.value,
                "flight_duration_s": r.flight_duration_s,
                "distance_km": r.distance_km,
                "inner_violations": r.inner_violations,
                "outer_violations": r.outer_violations,
                "max_deviation_m": r.max_deviation_m,
            }
            for r in campaign.results
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def load_campaign(path: str | Path) -> CampaignResult:
    """Read a campaign previously written by :func:`save_campaign`."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("schema_version")
    if version != _SCHEMA_VERSION:
        raise ValueError(
            f"unsupported campaign schema version {version!r} in {path} "
            f"(expected {_SCHEMA_VERSION})"
        )
    results = [
        ExperimentResult(
            experiment_id=r["experiment_id"],
            mission_id=r["mission_id"],
            fault_label=r["fault_label"],
            fault_type=r["fault_type"],
            target=r["target"],
            injection_duration_s=r["injection_duration_s"],
            outcome=MissionOutcome(r["outcome"]),
            flight_duration_s=r["flight_duration_s"],
            distance_km=r["distance_km"],
            inner_violations=r["inner_violations"],
            outer_violations=r["outer_violations"],
            max_deviation_m=r["max_deviation_m"],
        )
        for r in payload["results"]
    ]
    return CampaignResult(
        results=results,
        specs=[],
        scale=payload["scale"],
        injection_time_s=payload["injection_time_s"],
    )


def export_csv(campaign: CampaignResult, path: str | Path) -> None:
    """Write the raw per-experiment rows as CSV (for pandas/R users)."""
    header = (
        "experiment_id,mission_id,fault_label,fault_type,target,"
        "injection_duration_s,outcome,flight_duration_s,distance_km,"
        "inner_violations,outer_violations,max_deviation_m"
    )
    lines = [header]
    for r in campaign.results:
        label = r.fault_label.replace(",", ";")
        lines.append(
            f"{r.experiment_id},{r.mission_id},{label},{r.fault_type or ''},"
            f"{r.target or ''},{r.injection_duration_s if r.injection_duration_s is not None else ''},"
            f"{r.outcome.value},{r.flight_duration_s:.3f},{r.distance_km:.4f},"
            f"{r.inner_violations},{r.outer_violations},{r.max_deviation_m:.3f}"
        )
    Path(path).write_text("\n".join(lines) + "\n")
