"""Result records produced by campaign runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.experiments import ExperimentSpec
from repro.core.faults import FaultScope, FaultSpec, FaultTarget, FaultType
from repro.flightstack.commander import MissionOutcome

#: Serialized ``outcome`` label for rows whose *harness* failed (the
#: experiment never produced a mission verdict). Kept distinct from the
#: :class:`MissionOutcome` values so vehicle-level statistics can never
#: absorb infrastructure failures.
HARNESS_ERROR_OUTCOME = "harness_error"


@dataclass(frozen=True)
class ExperimentResult:
    """Metrics of one executed experiment (one row of the raw data).

    ``outcome is None`` marks a *harness error*: the case raised, hung
    past its wall-clock budget, or lost its worker process and
    exhausted its retries. Such rows carry the exception text in
    ``error`` and are excluded from all paper statistics (they describe
    the harness, not the vehicle).
    """

    experiment_id: int
    mission_id: int
    fault_label: str
    fault_type: str | None
    target: str | None
    injection_duration_s: float | None
    outcome: MissionOutcome | None
    flight_duration_s: float
    distance_km: float
    inner_violations: int
    outer_violations: int
    max_deviation_m: float
    error: str | None = None
    attempts: int = 1
    #: Which bank members the fault corrupted ("all" = paper baseline).
    fault_scope: str | None = None
    #: True when the vehicle flew with the redundant IMU bank enabled.
    mitigated: bool = False
    #: Primary-IMU switchovers performed during the run.
    imu_switchovers: int = 0
    #: Verdict of the last failsafe isolation episode (None: never ran).
    isolation_succeeded: bool | None = None
    #: Black-box dump written for this case (None: obs off or the run
    #: completed without incident).
    blackbox_path: str | None = None

    @property
    def is_gold(self) -> bool:
        return self.fault_type is None and not self.is_harness_error

    @property
    def is_harness_error(self) -> bool:
        """True when the harness, not the vehicle, failed this case."""
        return self.outcome is None

    @property
    def completed(self) -> bool:
        """The paper's 'mission completed': neither crash nor failsafe."""
        return self.outcome == MissionOutcome.COMPLETED

    @property
    def failed(self) -> bool:
        return not self.completed

    @property
    def crashed(self) -> bool:
        return self.outcome == MissionOutcome.CRASHED

    @property
    def failsafed(self) -> bool:
        """Failsafe-activated runs; timeouts (vehicle lost without
        impact) are counted here for the failure-analysis split."""
        return self.outcome in (MissionOutcome.FAILSAFE, MissionOutcome.TIMEOUT)


def fault_spec_to_dict(spec: FaultSpec) -> dict[str, Any]:
    """Serialise a :class:`FaultSpec` losslessly (every field).

    This pair is the canonical FaultSpec wire format: the campaign
    fingerprint and any future persisted spec list go through it, so a
    field added to :class:`FaultSpec` must be added here (enforced by
    reprolint rule FM002).
    """
    return {
        "fault_type": spec.fault_type.value,
        "target": spec.target.value,
        "start_time_s": spec.start_time_s,
        "duration_s": spec.duration_s,
        "seed": spec.seed,
        "noise_fraction": spec.noise_fraction,
        "noise_bias_fraction": spec.noise_bias_fraction,
        "scope": spec.scope.value,
        "scope_members": list(spec.scope_members),
    }


def fault_spec_from_dict(data: dict[str, Any]) -> FaultSpec:
    """Inverse of :func:`fault_spec_to_dict`.

    ``scope`` / ``scope_members`` default to the pre-redundancy
    behaviour so spec dicts written before this PR still load.
    """
    return FaultSpec(
        fault_type=FaultType(data["fault_type"]),
        target=FaultTarget(data["target"]),
        start_time_s=data["start_time_s"],
        duration_s=data["duration_s"],
        seed=data["seed"],
        noise_fraction=data["noise_fraction"],
        noise_bias_fraction=data["noise_bias_fraction"],
        scope=FaultScope(data.get("scope", FaultScope.ALL.value)),
        scope_members=tuple(data.get("scope_members", ())),
    )


def harness_error_result(
    spec: ExperimentSpec, error: BaseException | str, attempts: int
) -> ExperimentResult:
    """Structured record for a case the harness could not complete."""
    if isinstance(error, BaseException):
        error = f"{type(error).__name__}: {error}"
    return ExperimentResult(
        experiment_id=spec.experiment_id,
        mission_id=spec.mission_id,
        fault_label=spec.label,
        fault_type=spec.fault.fault_type.value if spec.fault else None,
        target=spec.fault.target.value if spec.fault else None,
        injection_duration_s=spec.duration_s,
        outcome=None,
        flight_duration_s=0.0,
        distance_km=0.0,
        inner_violations=0,
        outer_violations=0,
        max_deviation_m=0.0,
        error=error,
        attempts=attempts,
        fault_scope=spec.fault.scope.value if spec.fault else None,
    )


@dataclass
class CampaignResult:
    """All experiment results of one campaign, plus its provenance.

    Harness-error rows stay in ``results`` (the raw record of the run)
    but are excluded from ``gold``/``faulty`` — and therefore from
    every paper table — via the ``ok`` filter.
    """

    results: list[ExperimentResult] = field(default_factory=list)
    specs: list[ExperimentSpec] = field(default_factory=list)
    scale: float = 1.0
    injection_time_s: float = 90.0

    @property
    def ok(self) -> list[ExperimentResult]:
        """Results that produced a mission verdict (no harness errors)."""
        return [r for r in self.results if not r.is_harness_error]

    @property
    def harness_errors(self) -> list[ExperimentResult]:
        """Cases the harness failed to complete (excluded from tables)."""
        return [r for r in self.results if r.is_harness_error]

    @property
    def gold(self) -> list[ExperimentResult]:
        return [r for r in self.ok if r.is_gold]

    @property
    def faulty(self) -> list[ExperimentResult]:
        return [r for r in self.ok if not r.is_gold]

    def by_duration(self, duration_s: float) -> list[ExperimentResult]:
        """Faulty results with the given injection duration."""
        return [
            r
            for r in self.faulty
            if r.injection_duration_s is not None
            and abs(r.injection_duration_s - duration_s) < 1e-9
        ]

    def by_fault_label(self, label: str) -> list[ExperimentResult]:
        """Faulty results with the given 'Target FaultName' label."""
        return [r for r in self.faulty if r.fault_label == label]

    def by_target(self, target: str) -> list[ExperimentResult]:
        """Faulty results for one component ('accel'/'gyro'/'imu')."""
        return [r for r in self.faulty if r.target == target]
