"""Result records produced by campaign runs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.experiments import ExperimentSpec
from repro.flightstack.commander import MissionOutcome


@dataclass(frozen=True)
class ExperimentResult:
    """Metrics of one executed experiment (one row of the raw data)."""

    experiment_id: int
    mission_id: int
    fault_label: str
    fault_type: str | None
    target: str | None
    injection_duration_s: float | None
    outcome: MissionOutcome
    flight_duration_s: float
    distance_km: float
    inner_violations: int
    outer_violations: int
    max_deviation_m: float

    @property
    def is_gold(self) -> bool:
        return self.fault_type is None

    @property
    def completed(self) -> bool:
        """The paper's 'mission completed': neither crash nor failsafe."""
        return self.outcome == MissionOutcome.COMPLETED

    @property
    def failed(self) -> bool:
        return not self.completed

    @property
    def crashed(self) -> bool:
        return self.outcome == MissionOutcome.CRASHED

    @property
    def failsafed(self) -> bool:
        """Failsafe-activated runs; timeouts (vehicle lost without
        impact) are counted here for the failure-analysis split."""
        return self.outcome in (MissionOutcome.FAILSAFE, MissionOutcome.TIMEOUT)


@dataclass
class CampaignResult:
    """All experiment results of one campaign, plus its provenance."""

    results: list[ExperimentResult] = field(default_factory=list)
    specs: list[ExperimentSpec] = field(default_factory=list)
    scale: float = 1.0
    injection_time_s: float = 90.0

    @property
    def gold(self) -> list[ExperimentResult]:
        return [r for r in self.results if r.is_gold]

    @property
    def faulty(self) -> list[ExperimentResult]:
        return [r for r in self.results if not r.is_gold]

    def by_duration(self, duration_s: float) -> list[ExperimentResult]:
        """Faulty results with the given injection duration."""
        return [
            r
            for r in self.faulty
            if r.injection_duration_s is not None
            and abs(r.injection_duration_s - duration_s) < 1e-9
        ]

    def by_fault_label(self, label: str) -> list[ExperimentResult]:
        """Faulty results with the given 'Target FaultName' label."""
        return [r for r in self.faulty if r.fault_label == label]

    def by_target(self, target: str) -> list[ExperimentResult]:
        """Faulty results for one component ('accel'/'gyro'/'imu')."""
        return [r for r in self.faulty if r.target == target]
