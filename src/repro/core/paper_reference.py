"""The paper's published results, as data.

Tables II, III, and IV of Khan et al. (DSN 2024), transcribed verbatim.
These are the reference values EXPERIMENTS.md compares against, the
anchors for the shape checks in :mod:`repro.core.analysis`, and a handy
citation-free way for downstream users to query what the paper reported.

Absolute values from this reproduction are *not* expected to match
(different physics substrate, different absolute scale); the orderings
and gross factors are.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PaperSummaryRow:
    """One row of the paper's Table II or Table III."""

    label: str
    inner_violations: float
    outer_violations: float
    completed_pct: float
    duration_s: float
    distance_km: float


@dataclass(frozen=True)
class PaperFailureRow:
    """One row of the paper's Table IV."""

    label: str
    failed_pct: float
    crash_pct: float
    failsafe_pct: float


#: Paper Table II: averages grouped by injection duration.
PAPER_TABLE2: tuple[PaperSummaryRow, ...] = (
    PaperSummaryRow("Gold Run", 0.0, 0.0, 100.0, 491.26, 3.65),
    PaperSummaryRow("2 seconds", 18.30, 17.81, 20.0, 188.87, 0.98),
    PaperSummaryRow("5 seconds", 20.16, 16.79, 15.23, 146.07, 0.81),
    PaperSummaryRow("10 seconds", 20.97, 19.16, 11.42, 151.90, 0.69),
    PaperSummaryRow("30 seconds", 24.47, 21.65, 10.47, 154.70, 0.75),
)

#: Paper Table III: averages grouped by fault type.
PAPER_TABLE3: tuple[PaperSummaryRow, ...] = (
    PaperSummaryRow("Gold Run", 0.0, 0.0, 100.0, 491.26, 3.65),
    PaperSummaryRow("Acc Zeros", 23.36, 17.5, 67.5, 338.67, 2.45),
    PaperSummaryRow("Acc Noise", 25.23, 13.48, 60.0, 306.11, 2.22),
    PaperSummaryRow("Acc Freeze", 23.40, 15.82, 42.5, 244.09, 1.80),
    PaperSummaryRow("Acc Random", 20.13, 16.34, 5.0, 110.76, 0.55),
    PaperSummaryRow("Acc Min", 20.57, 24.25, 5.0, 137.18, 0.51),
    PaperSummaryRow("Acc Max", 41.32, 35.32, 2.5, 103.35, 0.73),
    PaperSummaryRow("Acc Fixed Value", 40.30, 36.51, 2.5, 103.99, 0.75),
    PaperSummaryRow("Gyro Zeros", 18.88, 18.15, 40.0, 223.21, 1.20),
    PaperSummaryRow("Gyro Fixed Value", 17.51, 15.90, 17.5, 159.57, 0.49),
    PaperSummaryRow("Gyro Freeze", 19.11, 21.5, 15.0, 145.92, 0.98),
    PaperSummaryRow("Gyro Noise", 16.01, 20.67, 10.0, 156.43, 0.52),
    PaperSummaryRow("Gyro Random", 16.75, 16.36, 2.5, 169.28, 0.47),
    PaperSummaryRow("Gyro Max", 16.32, 14.13, 2.5, 135.50, 0.44),
    PaperSummaryRow("Gyro Min", 19.73, 14.86, 0.0, 104.41, 0.47),
    PaperSummaryRow("IMU Max", 14.19, 17.34, 17.5, 212.30, 0.46),
    PaperSummaryRow("IMU Zeros", 18.17, 16.55, 2.5, 104.43, 0.52),
    PaperSummaryRow("IMU Noise", 21.19, 17.61, 2.5, 143.73, 0.48),
    PaperSummaryRow("IMU Random", 16.0, 15.03, 2.5, 104.66, 0.53),
    PaperSummaryRow("IMU Fixed Value", 15.67, 14.28, 2.5, 110.45, 0.53),
    PaperSummaryRow("IMU Min", 18.63, 17.61, 0.0, 155.08, 0.46),
    PaperSummaryRow("IMU Freeze", 18.03, 16.71, 0.0, 98.93, 0.46),
)

#: Paper Table IV: mission failure analysis.
PAPER_TABLE4: tuple[PaperFailureRow, ...] = (
    PaperFailureRow("Gold Run", 0.0, 0.0, 0.0),
    PaperFailureRow("2 seconds", 80.0, 73.0, 27.0),
    PaperFailureRow("5 seconds", 84.77, 73.0, 27.0),
    PaperFailureRow("10 seconds", 88.58, 70.0, 30.0),
    PaperFailureRow("30 seconds", 89.53, 34.0, 66.0),
    PaperFailureRow("Acc", 73.22, 77.2, 22.8),
    PaperFailureRow("Gyro", 87.5, 63.1, 36.9),
    PaperFailureRow("IMU", 96.08, 47.2, 52.8),
)


def paper_table3_row(label: str) -> PaperSummaryRow:
    """Look up a Table III row by its label (e.g. ``"Gyro Zeros"``)."""
    for row in PAPER_TABLE3:
        if row.label == label:
            return row
    raise KeyError(f"no such Table III row: {label}")


def paper_component_order() -> list[str]:
    """Component failure-rate ordering reported by the paper (worst last)."""
    rows = [r for r in PAPER_TABLE4 if r.label in ("Acc", "Gyro", "IMU")]
    return [r.label for r in sorted(rows, key=lambda r: r.failed_pct)]
