"""Generators for the paper's Tables II, III, and IV.

Each function reduces a :class:`~repro.core.results.CampaignResult`
into the same rows the paper prints, sorted the same way (descending
mission-completion percentage). :func:`render_table` turns rows into a
fixed-width text table for terminals and logs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.faults import FaultTarget, FaultType
from repro.core.metrics import FailureRow, SummaryRow, failure_analysis, summarize
from repro.core.results import CampaignResult, ExperimentResult

_FAULT_LABEL_ORDER = [
    (target, fault_type) for target in FaultTarget for fault_type in FaultType
]


def harness_error_note(campaign: CampaignResult) -> str:
    """One-line annotation for table output when cases were excluded.

    Tables II-IV are computed over ``campaign.gold``/``campaign.faulty``
    which already exclude harness-error rows; this note makes the
    exclusion visible next to the rendered tables (empty string when
    every case produced a mission verdict). The detailed per-case list
    is :func:`repro.core.analysis.harness_error_report`.
    """
    n = len(campaign.harness_errors)
    if n == 0:
        return ""
    return f"(note: {n} harness-error case(s) excluded from this table)"


def table2_by_duration(campaign: CampaignResult) -> list[SummaryRow]:
    """Table II: averages of all missions/faults grouped by duration.

    The first row is the gold baseline; faulty rows are sorted by
    descending completion percentage (the paper's sort order).
    """
    rows = [summarize("Gold Run", campaign.gold)] if campaign.gold else []
    durations = sorted({r.injection_duration_s for r in campaign.faulty})
    fault_rows = [
        summarize(_duration_label(d), campaign.by_duration(d)) for d in durations
    ]
    fault_rows.sort(key=lambda row: -row.completed_pct)
    return rows + fault_rows


def table3_by_fault(campaign: CampaignResult) -> list[SummaryRow]:
    """Table III: averages over all durations grouped by fault type.

    Rows are grouped by component (Acc, Gyro, IMU) and sorted by
    descending completion within each component, as in the paper.
    """
    rows = [summarize("Gold Run", campaign.gold)] if campaign.gold else []
    for target in FaultTarget:
        target_rows = []
        for fault_type in FaultType:
            label = _fault_label(target, fault_type)
            group = campaign.by_fault_label(label)
            if group:
                target_rows.append(summarize(label, group))
        target_rows.sort(key=lambda row: -row.completed_pct)
        rows.extend(target_rows)
    return rows


def table4_failure_analysis(campaign: CampaignResult) -> list[FailureRow]:
    """Table IV: failure/crash/failsafe rates by duration and component."""
    rows = []
    if campaign.gold:
        rows.append(failure_analysis("Gold Run", campaign.gold))
    for duration in sorted({r.injection_duration_s for r in campaign.faulty}):
        rows.append(failure_analysis(_duration_label(duration), campaign.by_duration(duration)))
    for target in FaultTarget:
        group = campaign.by_target(target.value)
        if group:
            rows.append(failure_analysis(target.label, group))
    return rows


@dataclass(frozen=True)
class ResilienceRow:
    """One row of the redundancy-comparison table.

    Compares outcome shares for the same fault group between a
    *baseline* campaign (no redundancy) and a *mitigated* one (IMU
    bank + voting/switchover), run with the same seeds and fault scope.
    """

    label: str
    runs: int
    baseline_completed_pct: float
    mitigated_completed_pct: float
    baseline_crashed_pct: float
    mitigated_crashed_pct: float
    switchovers: int
    isolations_succeeded: int

    @property
    def completed_delta_pct(self) -> float:
        """Completion points gained (positive = redundancy helped)."""
        return self.mitigated_completed_pct - self.baseline_completed_pct


def _resilience_row(
    label: str, base: list[ExperimentResult], mit: list[ExperimentResult]
) -> ResilienceRow:
    def pct(results: list[ExperimentResult], pred: str) -> float:
        if not results:
            return 0.0
        return 100.0 * sum(1 for r in results if getattr(r, pred)) / len(results)

    return ResilienceRow(
        label=label,
        runs=len(base),
        baseline_completed_pct=pct(base, "completed"),
        mitigated_completed_pct=pct(mit, "completed"),
        baseline_crashed_pct=pct(base, "crashed"),
        mitigated_crashed_pct=pct(mit, "crashed"),
        switchovers=sum(r.imu_switchovers for r in mit),
        isolations_succeeded=sum(1 for r in mit if r.isolation_succeeded),
    )


def resilience_comparison(
    baseline: CampaignResult, mitigated: CampaignResult
) -> list[ResilienceRow]:
    """Outcome shares with vs. without the redundant IMU bank.

    Both campaigns must cover the same faulty cases (same missions,
    durations, and fault scope); rows are emitted per fault label in
    the paper's component order, preceded by an overall row. Labels
    present in only one campaign are skipped — comparing them would be
    meaningless.
    """
    rows = [
        _resilience_row("All faults", baseline.faulty, mitigated.faulty)
    ]
    for target, fault_type in _FAULT_LABEL_ORDER:
        label = _fault_label(target, fault_type)
        base_group = baseline.by_fault_label(label)
        mit_group = mitigated.by_fault_label(label)
        if base_group and mit_group:
            rows.append(_resilience_row(label, base_group, mit_group))
    return rows


def render_resilience_table(rows: list[ResilienceRow], title: str = "") -> str:
    """Fixed-width text rendering of the redundancy comparison."""
    if not rows:
        return f"{title}\n(empty)"
    lines = []
    if title:
        lines.append(title)
    header = (
        f"{'Fault':<18} {'Runs':>5} {'Base compl':>11} {'Mit compl':>10} "
        f"{'Delta':>7} {'Base crash':>11} {'Mit crash':>10} "
        f"{'Switch':>7} {'Isolated':>9}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            f"{row.label:<18} {row.runs:>5} {row.baseline_completed_pct:>10.2f}% "
            f"{row.mitigated_completed_pct:>9.2f}% {row.completed_delta_pct:>+6.1f} "
            f"{row.baseline_crashed_pct:>10.2f}% {row.mitigated_crashed_pct:>9.2f}% "
            f"{row.switchovers:>7} {row.isolations_succeeded:>9}"
        )
    return "\n".join(lines)


def render_table(rows: list[SummaryRow] | list[FailureRow], title: str = "") -> str:
    """Fixed-width text rendering of summary or failure rows."""
    if not rows:
        return f"{title}\n(empty)"
    lines = []
    if title:
        lines.append(title)
    first = rows[0]
    if isinstance(first, SummaryRow):
        header = (
            f"{'Injection':<18} {'Inner (#)':>10} {'Outer (#)':>10} "
            f"{'Completed':>10} {'Duration (s)':>13} {'Distance (km)':>14}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in rows:
            assert isinstance(row, SummaryRow)
            lines.append(
                f"{row.label:<18} {row.inner_violations_avg:>10.2f} "
                f"{row.outer_violations_avg:>10.2f} {row.completed_pct:>9.2f}% "
                f"{row.duration_avg_s:>13.2f} {row.distance_avg_km:>14.2f}"
            )
    else:
        header = (
            f"{'Injection':<18} {'Failed':>9} {'Crash':>9} {'Failsafe':>9}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in rows:
            assert isinstance(row, FailureRow)
            lines.append(
                f"{row.label:<18} {row.failed_pct:>8.2f}% "
                f"{row.crash_pct_of_failed:>8.2f}% {row.failsafe_pct_of_failed:>8.2f}%"
            )
    return "\n".join(lines)


def _duration_label(duration_s: float) -> str:
    if duration_s is None:
        return "unknown"
    if duration_s == int(duration_s):
        return f"{int(duration_s)} seconds"
    return f"{duration_s} seconds"


def _fault_label(target: FaultTarget, fault_type: FaultType) -> str:
    names = {
        FaultType.FIXED: "Fixed Value",
        FaultType.ZEROS: "Zeros",
        FaultType.FREEZE: "Freeze",
        FaultType.RANDOM: "Random",
        FaultType.MIN: "Min",
        FaultType.MAX: "Max",
        FaultType.NOISE: "Noise",
    }
    return f"{target.label} {names[fault_type]}"
