"""Generators for the paper's Tables II, III, and IV.

Each function reduces a :class:`~repro.core.results.CampaignResult`
into the same rows the paper prints, sorted the same way (descending
mission-completion percentage). :func:`render_table` turns rows into a
fixed-width text table for terminals and logs.
"""

from __future__ import annotations

from repro.core.faults import FaultTarget, FaultType
from repro.core.metrics import FailureRow, SummaryRow, failure_analysis, summarize
from repro.core.results import CampaignResult

_FAULT_LABEL_ORDER = [
    (target, fault_type) for target in FaultTarget for fault_type in FaultType
]


def harness_error_note(campaign: CampaignResult) -> str:
    """One-line annotation for table output when cases were excluded.

    Tables II-IV are computed over ``campaign.gold``/``campaign.faulty``
    which already exclude harness-error rows; this note makes the
    exclusion visible next to the rendered tables (empty string when
    every case produced a mission verdict). The detailed per-case list
    is :func:`repro.core.analysis.harness_error_report`.
    """
    n = len(campaign.harness_errors)
    if n == 0:
        return ""
    return f"(note: {n} harness-error case(s) excluded from this table)"


def table2_by_duration(campaign: CampaignResult) -> list[SummaryRow]:
    """Table II: averages of all missions/faults grouped by duration.

    The first row is the gold baseline; faulty rows are sorted by
    descending completion percentage (the paper's sort order).
    """
    rows = [summarize("Gold Run", campaign.gold)] if campaign.gold else []
    durations = sorted({r.injection_duration_s for r in campaign.faulty})
    fault_rows = [
        summarize(_duration_label(d), campaign.by_duration(d)) for d in durations
    ]
    fault_rows.sort(key=lambda row: -row.completed_pct)
    return rows + fault_rows


def table3_by_fault(campaign: CampaignResult) -> list[SummaryRow]:
    """Table III: averages over all durations grouped by fault type.

    Rows are grouped by component (Acc, Gyro, IMU) and sorted by
    descending completion within each component, as in the paper.
    """
    rows = [summarize("Gold Run", campaign.gold)] if campaign.gold else []
    for target in FaultTarget:
        target_rows = []
        for fault_type in FaultType:
            label = _fault_label(target, fault_type)
            group = campaign.by_fault_label(label)
            if group:
                target_rows.append(summarize(label, group))
        target_rows.sort(key=lambda row: -row.completed_pct)
        rows.extend(target_rows)
    return rows


def table4_failure_analysis(campaign: CampaignResult) -> list[FailureRow]:
    """Table IV: failure/crash/failsafe rates by duration and component."""
    rows = []
    if campaign.gold:
        rows.append(failure_analysis("Gold Run", campaign.gold))
    for duration in sorted({r.injection_duration_s for r in campaign.faulty}):
        rows.append(failure_analysis(_duration_label(duration), campaign.by_duration(duration)))
    for target in FaultTarget:
        group = campaign.by_target(target.value)
        if group:
            rows.append(failure_analysis(target.label, group))
    return rows


def render_table(rows: list[SummaryRow] | list[FailureRow], title: str = "") -> str:
    """Fixed-width text rendering of summary or failure rows."""
    if not rows:
        return f"{title}\n(empty)"
    lines = []
    if title:
        lines.append(title)
    first = rows[0]
    if isinstance(first, SummaryRow):
        header = (
            f"{'Injection':<18} {'Inner (#)':>10} {'Outer (#)':>10} "
            f"{'Completed':>10} {'Duration (s)':>13} {'Distance (km)':>14}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in rows:
            assert isinstance(row, SummaryRow)
            lines.append(
                f"{row.label:<18} {row.inner_violations_avg:>10.2f} "
                f"{row.outer_violations_avg:>10.2f} {row.completed_pct:>9.2f}% "
                f"{row.duration_avg_s:>13.2f} {row.distance_avg_km:>14.2f}"
            )
    else:
        header = (
            f"{'Injection':<18} {'Failed':>9} {'Crash':>9} {'Failsafe':>9}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in rows:
            assert isinstance(row, FailureRow)
            lines.append(
                f"{row.label:<18} {row.failed_pct:>8.2f}% "
                f"{row.crash_pct_of_failed:>8.2f}% {row.failsafe_pct_of_failed:>8.2f}%"
            )
    return "\n".join(lines)


def _duration_label(duration_s: float) -> str:
    if duration_s is None:
        return "unknown"
    if duration_s == int(duration_s):
        return f"{int(duration_s)} seconds"
    return f"{duration_s} seconds"


def _fault_label(target: FaultTarget, fault_type: FaultType) -> str:
    names = {
        FaultType.FIXED: "Fixed Value",
        FaultType.ZEROS: "Zeros",
        FaultType.FREEZE: "Freeze",
        FaultType.RANDOM: "Random",
        FaultType.MIN: "Min",
        FaultType.MAX: "Max",
        FaultType.NOISE: "Noise",
    }
    return f"{target.label} {names[fault_type]}"
