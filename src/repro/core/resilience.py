"""Fault tolerance for the campaign harness itself.

The paper's 850-case campaign takes hours at paper scale, so the
harness must survive the same kinds of chaos it injects into the
vehicle: a raising experiment, a diverged simulation that never
terminates, or a worker process that dies mid-case. This module holds
the reusable pieces:

* :class:`RetryPolicy` — bounded retries with exponential backoff and
  *deterministic* jitter (seeded by the case id, so two runs of the
  same campaign sleep identically), plus an optional per-case
  wall-clock timeout.
* :class:`CaseTimeoutError` — raised (and recorded) when a case blows
  its wall-clock budget.
* :func:`run_with_timeout` — execute a callable under a wall-clock
  limit without leaving the caller blocked on a hung case.
* :func:`campaign_fingerprint` — a stable hash of everything that
  determines campaign *results* (and nothing that does not, e.g.
  ``workers``), used to guard checkpoint resume against config drift.
* :class:`EtaEstimator` — completed-case-rate remaining-time estimate
  for the progress ticker; the clock is injectable so tests stay
  deterministic.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (campaign imports us)
    from repro.core.campaign import CampaignConfig
    from repro.core.experiments import ExperimentSpec


class CaseTimeoutError(Exception):
    """A single experiment case exceeded its wall-clock budget."""


@dataclass(frozen=True)
class RetryPolicy:
    """How the harness treats a failing or hanging case.

    Attributes:
        max_attempts: total tries per case (1 = no retry).
        backoff_base_s: sleep before attempt 2; 0 disables sleeping.
        backoff_factor: multiplier applied per further attempt.
        backoff_max_s: cap on any single backoff sleep.
        jitter_frac: deterministic jitter amplitude (0..1) added on top
            of the exponential delay; derived from the case key so the
            schedule is reproducible.
        timeout_s: per-case wall-clock limit; ``None`` disables it.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.0
    backoff_factor: float = 2.0
    backoff_max_s: float = 30.0
    jitter_frac: float = 0.1
    timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0.0:
            raise ValueError("backoff_base_s must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.backoff_max_s < 0.0:
            raise ValueError("backoff_max_s must be non-negative")
        if not 0.0 <= self.jitter_frac <= 1.0:
            raise ValueError("jitter_frac must be within [0, 1]")
        if self.timeout_s is not None and self.timeout_s <= 0.0:
            raise ValueError("timeout_s must be positive (or None)")

    def delay_s(self, attempt: int, key: int = 0) -> float:
        """Backoff before retrying after the given failed attempt.

        ``attempt`` counts from 1 (the first try). The jitter is a pure
        function of ``(key, attempt)``, so identical campaigns produce
        identical retry schedules.
        """
        if attempt < 1:
            raise ValueError("attempt counts from 1")
        base = self.backoff_base_s * self.backoff_factor ** (attempt - 1)
        base = min(self.backoff_max_s, base)
        return base * (1.0 + self.jitter_frac * _unit_hash(key, attempt))


#: Legacy behaviour: one attempt, no timeout — a raising case still
#: degrades to a harness-error record rather than aborting the matrix.
NO_RETRY = RetryPolicy(max_attempts=1)


def run_with_timeout(
    fn: Callable[..., Any], args: tuple, timeout_s: float | None
) -> Any:
    """Call ``fn(*args)``, enforcing a wall-clock limit.

    The call runs on a daemon thread so a hung case cannot wedge the
    campaign (the thread is abandoned; the interpreter can still exit).
    Without a timeout the call happens inline.

    Raises:
        CaseTimeoutError: the call did not finish within ``timeout_s``.
    """
    if timeout_s is None:
        return fn(*args)

    box: dict[str, Any] = {}

    def target() -> None:
        try:
            box["result"] = fn(*args)
        except BaseException as exc:  # noqa: BLE001 - re-raised in caller
            box["error"] = exc

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    thread.join(timeout_s)
    if thread.is_alive():
        raise CaseTimeoutError(f"case exceeded wall-clock budget of {timeout_s} s")
    if "error" in box:
        raise box["error"]
    return box["result"]


def campaign_fingerprint(
    config: "CampaignConfig", specs: Iterable["ExperimentSpec"]
) -> str:
    """Hash of everything that determines campaign results.

    Deliberately excludes ``workers`` (parallelism cannot change
    results) so a checkpoint written serially can be resumed with a
    process pool and vice versa. ``obs_dir`` is excluded for the same
    reason: observability is read-only on the simulation (the
    bit-exactness tests enforce this), so a checkpoint written with
    tracing off can be resumed with it on.
    """
    from repro.core.results import fault_spec_to_dict

    payload = {
        "scale": config.scale,
        "injection_time_s": config.effective_injection_time_s,
        "durations_s": list(config.durations_s),
        "mission_ids": list(config.mission_ids),
        "base_seed": config.base_seed,
        "include_gold": config.include_gold,
        # The redundancy axis changes vehicle behaviour, so it must
        # change the fingerprint (checkpoints from mitigation-on and
        # mitigation-off campaigns can never be mixed).
        "fault_scope": config.fault_scope.value,
        "mitigation": config.mitigation,
        "imu_redundancy": config.imu_redundancy,
        # Every FaultSpec field goes through the canonical serializer:
        # a seed or noise-fraction change must change the fingerprint,
        # or resume would silently mix results from different campaigns.
        "specs": [
            (
                s.experiment_id,
                s.mission_id,
                s.label,
                s.duration_s,
                fault_spec_to_dict(s.fault) if s.fault is not None else None,
            )
            for s in specs
        ],
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    )
    return digest.hexdigest()


class EtaEstimator:
    """Remaining-time estimate from the completed-case rate.

    Resume-aware: cases already done when the estimator starts are
    excluded from the rate (they cost no wall clock this session), so a
    resumed campaign's ETA reflects only the work actually remaining.
    """

    def __init__(
        self,
        total: int,
        already_done: int = 0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if total < 0 or already_done < 0:
            raise ValueError("total and already_done must be non-negative")
        self.total = total
        self.done = already_done
        self._initial_done = already_done
        self._clock = clock
        self._start = clock()

    def update(self, done: int) -> None:
        """Record the current completed-case count."""
        self.done = done

    def eta_s(self) -> float | None:
        """Estimated seconds to completion; ``None`` until the first
        case of this session finishes (no rate to extrapolate)."""
        fresh = self.done - self._initial_done
        if fresh <= 0:
            return None
        remaining = max(0, self.total - self.done)
        elapsed = self._clock() - self._start
        if elapsed <= 0.0:
            return 0.0
        return remaining * elapsed / fresh

    def format(self) -> str:
        """Compact ticker suffix, e.g. ``ETA 2m30s`` (or ``ETA --``)."""
        eta = self.eta_s()
        if eta is None:
            return "ETA --"
        seconds = int(round(eta))
        if seconds >= 3600:
            return f"ETA {seconds // 3600}h{(seconds % 3600) // 60:02d}m"
        if seconds >= 60:
            return f"ETA {seconds // 60}m{seconds % 60:02d}s"
        return f"ETA {seconds}s"


def _unit_hash(key: int, attempt: int) -> float:
    """Deterministic pseudo-random value in [0, 1) for jitter."""
    digest = hashlib.sha256(f"{key}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64
