"""The paper's contribution: IMU fault model, injector, and campaigns.

* :mod:`repro.core.faults` — the fault model of Table I: seven
  injectable behaviours (Fixed, Zeros, Freeze, Random, Min, Max, Noise)
  applied to the accelerometer, the gyrometer, or the whole IMU.
* :mod:`repro.core.injector` — corrupts the IMU sample stream between
  the sensor drivers and the EKF, the paper's injection point.
* :mod:`repro.core.experiments` — builds the 850-case experiment matrix
  (10 missions x 7 faults x 3 targets x 4 durations + 10 gold runs).
* :mod:`repro.core.campaign` — runs experiments and aggregates results.
* :mod:`repro.core.metrics` / :mod:`repro.core.tables` — the paper's
  evaluation metrics and the Table II/III/IV generators.
* :mod:`repro.core.figures` — the Figure 3/4/5 trajectory scenarios.

Note: :mod:`~repro.core.campaign` and :mod:`~repro.core.figures` import
the vehicle system, which itself uses the fault injector, so they are
*not* re-exported here — import them as submodules (or via the
top-level :mod:`repro` package, which re-exports everything).
"""

from repro.core.faults import (
    FaultType,
    FaultTarget,
    FaultScope,
    FaultSpec,
    FAULT_MODEL_CATALOG,
    FaultModelEntry,
)
from repro.core.injector import SensorFaultInjector
from repro.core.experiments import ExperimentSpec, build_experiment_matrix
from repro.core.results import ExperimentResult, CampaignResult
from repro.core.tables import (
    ResilienceRow,
    resilience_comparison,
    render_resilience_table,
    table2_by_duration,
    table3_by_fault,
    table4_failure_analysis,
    render_table,
)
from repro.core.io import (
    save_campaign,
    load_campaign,
    export_csv,
    CampaignJournal,
    JournalMismatchError,
)
from repro.core.resilience import (
    RetryPolicy,
    CaseTimeoutError,
    NO_RETRY,
    campaign_fingerprint,
)
from repro.core.paper_reference import (
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PaperSummaryRow,
    PaperFailureRow,
    paper_table3_row,
)

__all__ = [
    "FaultType",
    "FaultTarget",
    "FaultScope",
    "FaultSpec",
    "FAULT_MODEL_CATALOG",
    "FaultModelEntry",
    "SensorFaultInjector",
    "ExperimentSpec",
    "build_experiment_matrix",
    "ExperimentResult",
    "CampaignResult",
    "ResilienceRow",
    "resilience_comparison",
    "render_resilience_table",
    "table2_by_duration",
    "table3_by_fault",
    "table4_failure_analysis",
    "render_table",
    "save_campaign",
    "load_campaign",
    "export_csv",
    "CampaignJournal",
    "JournalMismatchError",
    "RetryPolicy",
    "CaseTimeoutError",
    "NO_RETRY",
    "campaign_fingerprint",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PaperSummaryRow",
    "PaperFailureRow",
    "paper_table3_row",
]
