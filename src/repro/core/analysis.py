"""Higher-level analysis of campaign results.

Beyond the paper's three tables, this module provides:

* per-mission breakdowns (which missions are fragile under which
  faults — the paper's speed/turn diversity makes this interesting);
* a duration x fault severity grid (the interaction the paper's
  Sec. IV-B discusses qualitatively);
* fault-severity ranking;
* **shape checks** against the paper's published orderings
  (:mod:`repro.core.paper_reference`), used by EXPERIMENTS.md and the
  benches to state precisely which qualitative findings reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.faults import FaultTarget, FaultType
from repro.core.metrics import SummaryRow, summarize
from repro.core.results import CampaignResult, ExperimentResult
from repro.core.tables import _fault_label


@dataclass(frozen=True)
class ShapeCheck:
    """One qualitative finding of the paper and whether we reproduce it."""

    name: str
    description: str
    holds: bool
    detail: str


def by_mission(campaign: CampaignResult) -> list[SummaryRow]:
    """Average faulty results per mission (fragility profile)."""
    rows = []
    mission_ids = sorted({r.mission_id for r in campaign.faulty})
    for mission_id in mission_ids:
        group = [r for r in campaign.faulty if r.mission_id == mission_id]
        rows.append(summarize(f"mission {mission_id}", group))
    return rows


def duration_fault_grid(campaign: CampaignResult) -> dict[tuple[str, float], float]:
    """Completion %% for every (fault label, duration) cell."""
    grid: dict[tuple[str, float], float] = {}
    durations = sorted({r.injection_duration_s for r in campaign.faulty})
    for target in FaultTarget:
        for fault_type in FaultType:
            label = _fault_label(target, fault_type)
            for duration in durations:
                cell = [
                    r
                    for r in campaign.by_fault_label(label)
                    if abs(r.injection_duration_s - duration) < 1e-9
                ]
                if cell:
                    grid[(label, duration)] = (
                        100.0 * sum(r.completed for r in cell) / len(cell)
                    )
    return grid


def severity_ranking(campaign: CampaignResult) -> list[SummaryRow]:
    """All 21 fault rows sorted most-severe (lowest completion) first."""
    rows = []
    for target in FaultTarget:
        for fault_type in FaultType:
            label = _fault_label(target, fault_type)
            group = campaign.by_fault_label(label)
            if group:
                rows.append(summarize(label, group))
    return sorted(rows, key=lambda row: row.completed_pct)


def _completion(campaign: CampaignResult, label: str) -> float:
    group = campaign.by_fault_label(label)
    if not group:
        raise ValueError(f"campaign has no runs for {label}")
    return 100.0 * sum(r.completed for r in group) / len(group)


def _component_failure(campaign: CampaignResult, target: str) -> float:
    group = campaign.by_target(target)
    if not group:
        raise ValueError(f"campaign has no runs for target {target}")
    return 100.0 * sum(r.failed for r in group) / len(group)


def check_paper_shapes(campaign: CampaignResult) -> list[ShapeCheck]:
    """Evaluate the paper's headline qualitative findings on a campaign.

    Returns one :class:`ShapeCheck` per finding; EXPERIMENTS.md renders
    these verbatim. The checks intentionally test *orderings*, not
    absolute percentages.
    """
    checks: list[ShapeCheck] = []

    def add(name, description, holds, detail):
        checks.append(ShapeCheck(name, description, holds, detail))

    # 1. Gold baseline is clean.
    gold_ok = bool(campaign.gold) and all(
        r.completed and r.inner_violations == 0 for r in campaign.gold
    )
    add(
        "gold-baseline",
        "Gold runs complete 100% with zero bubble violations",
        gold_ok,
        f"{sum(r.completed for r in campaign.gold)}/{len(campaign.gold)} completed",
    )

    # 2. Longest injections complete least.
    durations = sorted({r.injection_duration_s for r in campaign.faulty})
    completion_by_duration = {
        d: 100.0 * sum(r.completed for r in campaign.by_duration(d)) / len(campaign.by_duration(d))
        for d in durations
    }
    add(
        "duration-severity",
        "30 s injections complete fewer missions than 2 s injections",
        completion_by_duration[durations[-1]] <= completion_by_duration[durations[0]],
        f"completion by duration: {completion_by_duration}",
    )

    # 3. Even the shortest injection fails most missions (paper: 80%).
    shortest = completion_by_duration[durations[0]]
    add(
        "short-injections-deadly",
        "Even the shortest injections fail the majority of missions",
        shortest < 50.0,
        f"{100 - shortest:.1f}% failed at {durations[0]} s",
    )

    # 4. Violations grow with duration.
    viol = {
        d: sum(r.inner_violations for r in campaign.by_duration(d)) / len(campaign.by_duration(d))
        for d in durations
    }
    add(
        "duration-violations",
        "Longest injections produce the most inner-bubble violations",
        viol[durations[-1]] >= viol[durations[0]],
        f"inner violations by duration: { {k: round(v, 2) for k, v in viol.items()} }",
    )

    # 5. Benign accel faults (Zeros/Noise) survive; violent ones do not.
    acc_benign = max(_completion(campaign, "Acc Zeros"), _completion(campaign, "Acc Noise"))
    acc_violent = max(
        _completion(campaign, "Acc Min"),
        _completion(campaign, "Acc Max"),
        _completion(campaign, "Acc Random"),
    )
    add(
        "acc-zeros-noise-survivable",
        "Acc Zeros/Noise complete far more missions than Acc Min/Max/Random",
        acc_benign > acc_violent,
        f"benign {acc_benign:.1f}% vs violent {acc_violent:.1f}%",
    )

    # 6. Gyro Zeros beats Gyro Min (the paper's Sec. IV-D observation).
    add(
        "gyro-zeros-vs-min",
        "Zeros are better handled than Min for the gyrometer",
        _completion(campaign, "Gyro Zeros") > _completion(campaign, "Gyro Min"),
        f"Gyro Zeros {_completion(campaign, 'Gyro Zeros'):.1f}% vs "
        f"Gyro Min {_completion(campaign, 'Gyro Min'):.1f}%",
    )

    # 7. Component criticality ordering: Acc < Gyro < IMU failure rates.
    acc = _component_failure(campaign, "accel")
    gyro = _component_failure(campaign, "gyro")
    imu = _component_failure(campaign, "imu")
    add(
        "component-ordering",
        "Failure rates order Acc < Gyro < IMU (paper: 73% / 87.5% / 96%)",
        acc < gyro < imu,
        f"Acc {acc:.1f}% / Gyro {gyro:.1f}% / IMU {imu:.1f}%",
    )

    # 8. IMU faults include total-loss rows (0% completion).
    imu_rows = [
        _completion(campaign, _fault_label(FaultTarget.IMU, ft)) for ft in FaultType
    ]
    add(
        "imu-total-loss-rows",
        "Several full-IMU faults produce (near-)total mission loss",
        sum(1 for pct in imu_rows if pct <= 5.0) >= 3,
        f"IMU per-fault completion: {[round(p, 1) for p in imu_rows]}",
    )

    # 9. Accelerometer faults produce the heaviest violation counts
    # (paper Sec. IV-D: Acc pushes drones out of their bubbles fastest).
    def avg_inner(target: str) -> float:
        group = campaign.by_target(target)
        return sum(r.inner_violations for r in group) / len(group)

    add(
        "acc-heaviest-violations",
        "Accelerometer faults cause more bubble violations than gyro faults",
        avg_inner("accel") > avg_inner("gyro"),
        f"avg inner violations: Acc {avg_inner('accel'):.2f} vs "
        f"Gyro {avg_inner('gyro'):.2f}",
    )

    return checks


def render_shape_checks(checks: list[ShapeCheck]) -> str:
    """Human-readable report of the shape checks."""
    lines = ["Paper shape checks:"]
    for check in checks:
        mark = "PASS" if check.holds else "FAIL"
        lines.append(f"  [{mark}] {check.name}: {check.description}")
        lines.append(f"         {check.detail}")
    passed = sum(c.holds for c in checks)
    lines.append(f"  {passed}/{len(checks)} qualitative findings reproduced")
    return "\n".join(lines)
