"""Higher-level analysis of campaign results.

Beyond the paper's three tables, this module provides:

* per-mission breakdowns (which missions are fragile under which
  faults — the paper's speed/turn diversity makes this interesting);
* a duration x fault severity grid (the interaction the paper's
  Sec. IV-B discusses qualitatively);
* fault-severity ranking;
* **shape checks** against the paper's published orderings
  (:mod:`repro.core.paper_reference`), used by EXPERIMENTS.md and the
  benches to state precisely which qualitative findings reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.faults import FaultTarget, FaultType
from repro.core.metrics import SummaryRow, summarize
from repro.core.results import CampaignResult
from repro.core.tables import _fault_label


@dataclass(frozen=True)
class ShapeCheck:
    """One qualitative finding of the paper and whether we reproduce it."""

    name: str
    description: str
    holds: bool
    detail: str


def by_mission(campaign: CampaignResult) -> list[SummaryRow]:
    """Average faulty results per mission (fragility profile)."""
    rows = []
    mission_ids = sorted({r.mission_id for r in campaign.faulty})
    for mission_id in mission_ids:
        group = [r for r in campaign.faulty if r.mission_id == mission_id]
        rows.append(summarize(f"mission {mission_id}", group))
    return rows


def duration_fault_grid(campaign: CampaignResult) -> dict[tuple[str, float], float]:
    """Completion %% for every (fault label, duration) cell."""
    grid: dict[tuple[str, float], float] = {}
    durations = sorted({r.injection_duration_s for r in campaign.faulty})
    for target in FaultTarget:
        for fault_type in FaultType:
            label = _fault_label(target, fault_type)
            for duration in durations:
                cell = [
                    r
                    for r in campaign.by_fault_label(label)
                    if abs(r.injection_duration_s - duration) < 1e-9
                ]
                if cell:
                    grid[(label, duration)] = (
                        100.0 * sum(r.completed for r in cell) / len(cell)
                    )
    return grid


def severity_ranking(campaign: CampaignResult) -> list[SummaryRow]:
    """All 21 fault rows sorted most-severe (lowest completion) first."""
    rows = []
    for target in FaultTarget:
        for fault_type in FaultType:
            label = _fault_label(target, fault_type)
            group = campaign.by_fault_label(label)
            if group:
                rows.append(summarize(label, group))
    return sorted(rows, key=lambda row: row.completed_pct)


def _completion(campaign: CampaignResult, label: str) -> float:
    group = campaign.by_fault_label(label)
    if not group:
        raise ValueError(f"campaign has no runs for {label}")
    return 100.0 * sum(r.completed for r in group) / len(group)


def _component_failure(campaign: CampaignResult, target: str) -> float:
    group = campaign.by_target(target)
    if not group:
        raise ValueError(f"campaign has no runs for target {target}")
    return 100.0 * sum(r.failed for r in group) / len(group)


def check_paper_shapes(campaign: CampaignResult) -> list[ShapeCheck]:
    """Evaluate the paper's headline qualitative findings on a campaign.

    Returns one :class:`ShapeCheck` per finding; EXPERIMENTS.md renders
    these verbatim. The checks intentionally test *orderings*, not
    absolute percentages.

    A check whose input group is missing — a subset campaign, or cases
    excluded as harness errors — degrades to ``holds=False`` with a
    "not evaluable" detail instead of raising, so an incomplete
    campaign still yields a full report.
    """
    checks: list[ShapeCheck] = []

    def add(
        name: str,
        description: str,
        holds: Callable[[], object],
        detail: Callable[[], str],
    ) -> None:
        # ``holds``/``detail`` arrive lazily so a missing result group
        # fails only its own check, not the whole report.
        try:
            holds, detail = bool(holds()), detail()
        except (ValueError, KeyError, IndexError, ZeroDivisionError) as exc:
            holds, detail = False, f"not evaluable on this campaign: {exc}"
        checks.append(ShapeCheck(name, description, holds, detail))

    def durations() -> list[float]:
        return sorted({r.injection_duration_s for r in campaign.faulty})

    def completion_by_duration() -> dict[float, float]:
        return {
            d: 100.0
            * sum(r.completed for r in campaign.by_duration(d))
            / len(campaign.by_duration(d))
            for d in durations()
        }

    # 1. Gold baseline is clean.
    add(
        "gold-baseline",
        "Gold runs complete 100% with zero bubble violations",
        lambda: bool(campaign.gold)
        and all(r.completed and r.inner_violations == 0 for r in campaign.gold),
        lambda: f"{sum(r.completed for r in campaign.gold)}/{len(campaign.gold)} completed",
    )

    # 2. Longest injections complete least.
    add(
        "duration-severity",
        "30 s injections complete fewer missions than 2 s injections",
        lambda: completion_by_duration()[durations()[-1]]
        <= completion_by_duration()[durations()[0]],
        lambda: f"completion by duration: {completion_by_duration()}",
    )

    # 3. Even the shortest injection fails most missions (paper: 80%).
    add(
        "short-injections-deadly",
        "Even the shortest injections fail the majority of missions",
        lambda: completion_by_duration()[durations()[0]] < 50.0,
        lambda: f"{100 - completion_by_duration()[durations()[0]]:.1f}% "
        f"failed at {durations()[0]} s",
    )

    # 4. Violations grow with duration.
    def viol() -> dict[float, float]:
        return {
            d: sum(r.inner_violations for r in campaign.by_duration(d))
            / len(campaign.by_duration(d))
            for d in durations()
        }

    add(
        "duration-violations",
        "Longest injections produce the most inner-bubble violations",
        lambda: viol()[durations()[-1]] >= viol()[durations()[0]],
        lambda: f"inner violations by duration: "
        f"{ {k: round(v, 2) for k, v in viol().items()} }",
    )

    # 5. Benign accel faults (Zeros/Noise) survive; violent ones do not.
    def acc_benign() -> float:
        return max(_completion(campaign, "Acc Zeros"), _completion(campaign, "Acc Noise"))

    def acc_violent() -> float:
        return max(
            _completion(campaign, "Acc Min"),
            _completion(campaign, "Acc Max"),
            _completion(campaign, "Acc Random"),
        )

    add(
        "acc-zeros-noise-survivable",
        "Acc Zeros/Noise complete far more missions than Acc Min/Max/Random",
        lambda: acc_benign() > acc_violent(),
        lambda: f"benign {acc_benign():.1f}% vs violent {acc_violent():.1f}%",
    )

    # 6. Gyro Zeros beats Gyro Min (the paper's Sec. IV-D observation).
    add(
        "gyro-zeros-vs-min",
        "Zeros are better handled than Min for the gyrometer",
        lambda: _completion(campaign, "Gyro Zeros") > _completion(campaign, "Gyro Min"),
        lambda: f"Gyro Zeros {_completion(campaign, 'Gyro Zeros'):.1f}% vs "
        f"Gyro Min {_completion(campaign, 'Gyro Min'):.1f}%",
    )

    # 7. Component criticality ordering: Acc < Gyro < IMU failure rates.
    add(
        "component-ordering",
        "Failure rates order Acc < Gyro < IMU (paper: 73% / 87.5% / 96%)",
        lambda: _component_failure(campaign, "accel")
        < _component_failure(campaign, "gyro")
        < _component_failure(campaign, "imu"),
        lambda: f"Acc {_component_failure(campaign, 'accel'):.1f}% / "
        f"Gyro {_component_failure(campaign, 'gyro'):.1f}% / "
        f"IMU {_component_failure(campaign, 'imu'):.1f}%",
    )

    # 8. IMU faults include total-loss rows (0% completion).
    def imu_rows() -> list[float]:
        return [
            _completion(campaign, _fault_label(FaultTarget.IMU, ft)) for ft in FaultType
        ]

    add(
        "imu-total-loss-rows",
        "Several full-IMU faults produce (near-)total mission loss",
        lambda: sum(1 for pct in imu_rows() if pct <= 5.0) >= 3,
        lambda: f"IMU per-fault completion: {[round(p, 1) for p in imu_rows()]}",
    )

    # 9. Accelerometer faults produce the heaviest violation counts
    # (paper Sec. IV-D: Acc pushes drones out of their bubbles fastest).
    def avg_inner(target: str) -> float:
        group = campaign.by_target(target)
        return sum(r.inner_violations for r in group) / len(group)

    add(
        "acc-heaviest-violations",
        "Accelerometer faults cause more bubble violations than gyro faults",
        lambda: avg_inner("accel") > avg_inner("gyro"),
        lambda: f"avg inner violations: Acc {avg_inner('accel'):.2f} vs "
        f"Gyro {avg_inner('gyro'):.2f}",
    )

    return checks


@dataclass(frozen=True)
class RescuedFault:
    """One fault group the redundant IMU bank demonstrably rescued."""

    fault_label: str
    baseline_completed_pct: float
    mitigated_completed_pct: float
    baseline_crashed_pct: float
    mitigated_crashed_pct: float
    switchovers: int


def redundancy_rescues(
    baseline: CampaignResult, mitigated: CampaignResult
) -> list[RescuedFault]:
    """Fault labels where the IMU bank improved the completion share.

    Both campaigns must cover the same faulty cases (same missions,
    durations, seeds, fault scope); only labels present in both are
    compared. Sorted by completion gain, largest first.
    """
    rescued: list[RescuedFault] = []
    labels = sorted(
        {r.fault_label for r in baseline.faulty}
        & {r.fault_label for r in mitigated.faulty}
    )

    def pct(group: list, pred: str) -> float:
        return 100.0 * sum(1 for r in group if getattr(r, pred)) / len(group)

    for label in labels:
        base = baseline.by_fault_label(label)
        mit = mitigated.by_fault_label(label)
        base_done, mit_done = pct(base, "completed"), pct(mit, "completed")
        if mit_done > base_done:
            rescued.append(
                RescuedFault(
                    fault_label=label,
                    baseline_completed_pct=base_done,
                    mitigated_completed_pct=mit_done,
                    baseline_crashed_pct=pct(base, "crashed"),
                    mitigated_crashed_pct=pct(mit, "crashed"),
                    switchovers=sum(r.imu_switchovers for r in mit),
                )
            )
    rescued.sort(
        key=lambda r: r.baseline_completed_pct - r.mitigated_completed_pct
    )
    return rescued


def render_rescues(rescues: list[RescuedFault]) -> str:
    """Human-readable report of what redundancy bought."""
    if not rescues:
        return (
            "Redundancy rescues: none — no fault group completed more "
            "missions with the IMU bank than without"
        )
    lines = [f"Redundancy rescues: {len(rescues)} fault group(s) improved"]
    for r in rescues:
        lines.append(
            f"  {r.fault_label}: completion "
            f"{r.baseline_completed_pct:.1f}% -> {r.mitigated_completed_pct:.1f}%, "
            f"crashes {r.baseline_crashed_pct:.1f}% -> {r.mitigated_crashed_pct:.1f}% "
            f"({r.switchovers} switchover(s))"
        )
    return "\n".join(lines)


def harness_error_report(campaign: CampaignResult) -> str:
    """Human-readable report of cases the *harness* failed to complete.

    Harness errors (a case that raised, hung, or lost its worker and
    exhausted its retries) are excluded from every paper table — they
    describe the infrastructure, not the vehicle — so this report is
    the one place they surface. Re-running with ``resume=True`` against
    the campaign checkpoint retries exactly these cases.
    """
    errors = campaign.harness_errors
    if not errors:
        return "Harness errors: none (all cases produced a mission verdict)"
    lines = [
        f"Harness errors: {len(errors)} case(s) excluded from paper tables"
    ]
    for r in sorted(errors, key=lambda r: r.experiment_id):
        lines.append(
            f"  #{r.experiment_id} mission {r.mission_id} [{r.fault_label}] "
            f"after {r.attempts} attempt(s): {r.error}"
        )
    return "\n".join(lines)


def render_shape_checks(checks: list[ShapeCheck]) -> str:
    """Human-readable report of the shape checks."""
    lines = ["Paper shape checks:"]
    for check in checks:
        mark = "PASS" if check.holds else "FAIL"
        lines.append(f"  [{mark}] {check.name}: {check.description}")
        lines.append(f"         {check.detail}")
    passed = sum(c.holds for c in checks)
    lines.append(f"  {passed}/{len(checks)} qualitative findings reproduced")
    return "\n".join(lines)
