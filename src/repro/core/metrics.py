"""Aggregation of experiment results into the paper's summary rows."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import ExperimentResult


@dataclass(frozen=True)
class SummaryRow:
    """One row of Table II / Table III: averages over a result group."""

    label: str
    runs: int
    inner_violations_avg: float
    outer_violations_avg: float
    completed_pct: float
    duration_avg_s: float
    distance_avg_km: float


@dataclass(frozen=True)
class FailureRow:
    """One row of Table IV: the failure / crash / failsafe split."""

    label: str
    runs: int
    failed_pct: float
    crash_pct_of_failed: float
    failsafe_pct_of_failed: float


def summarize(label: str, results: list[ExperimentResult]) -> SummaryRow:
    """Average a result group into a Table II/III row.

    An empty group is a caller bug (a missing matrix slice), so it
    raises instead of emitting a silent zero row.
    """
    if not results:
        raise ValueError(f"cannot summarise empty result group: {label}")
    n = len(results)
    return SummaryRow(
        label=label,
        runs=n,
        inner_violations_avg=sum(r.inner_violations for r in results) / n,
        outer_violations_avg=sum(r.outer_violations for r in results) / n,
        completed_pct=100.0 * sum(r.completed for r in results) / n,
        duration_avg_s=sum(r.flight_duration_s for r in results) / n,
        distance_avg_km=sum(r.distance_km for r in results) / n,
    )


def failure_analysis(label: str, results: list[ExperimentResult]) -> FailureRow:
    """Reduce a result group to a Table IV row.

    Crash and failsafe percentages are expressed as shares of the
    *failed* runs, as in the paper (each row's crash% + failsafe% sums
    to 100% whenever anything failed).
    """
    if not results:
        raise ValueError(f"cannot analyse empty result group: {label}")
    n = len(results)
    failed = [r for r in results if r.failed]
    failed_pct = 100.0 * len(failed) / n
    if failed:
        crash_pct = 100.0 * sum(r.crashed for r in failed) / len(failed)
        failsafe_pct = 100.0 * sum(r.failsafed for r in failed) / len(failed)
    else:
        crash_pct = 0.0
        failsafe_pct = 0.0
    return FailureRow(
        label=label,
        runs=n,
        failed_pct=failed_pct,
        crash_pct_of_failed=crash_pct,
        failsafe_pct_of_failed=failsafe_pct,
    )
