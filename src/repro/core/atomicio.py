"""The atomic-write primitive, dependency-free.

Lives in its own module (rather than :mod:`repro.core.io`) so leaf
packages like :mod:`repro.missions` and :mod:`repro.telemetry` can use
it without importing the campaign-results machinery — ``core.io``
imports result types from across the tree, which would cycle.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path


def atomic_write_text(path: str | Path, text: str) -> None:
    """Write ``text`` to ``path`` via a same-directory temp + replace.

    ``os.replace`` is atomic on POSIX, so readers either see the old
    file or the complete new one — never a truncated mix. This is the
    one sanctioned way to write a file anywhere in the tree (enforced
    by reprolint rule IO001); writers in other packages import it from
    here.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent or Path("."), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
