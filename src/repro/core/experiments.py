"""Experiment matrix construction (paper Sec. III-B).

The full campaign: for each of the 10 missions, every combination of
7 fault types x 3 targets x 4 injection durations (2/5/10/30 s), all
injected at the same time after take-off (90 s in the paper), plus one
gold (fault-free) run per mission: 21 x 10 x 4 + 10 = 850 cases.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.faults import FaultScope, FaultSpec, FaultTarget, FaultType

#: The paper's injection durations in seconds.
PAPER_DURATIONS_S = (2.0, 5.0, 10.0, 30.0)

#: The paper's injection time after take-off.
PAPER_INJECTION_TIME_S = 90.0


@dataclass(frozen=True)
class ExperimentSpec:
    """One campaign case: a mission plus an optional fault."""

    experiment_id: int
    mission_id: int
    fault: FaultSpec | None

    @property
    def is_gold(self) -> bool:
        """True for the fault-free reference runs."""
        return self.fault is None

    @property
    def label(self) -> str:
        return self.fault.label if self.fault else "Gold Run"

    @property
    def duration_s(self) -> float | None:
        """Injection duration (None for gold runs)."""
        return self.fault.duration_s if self.fault else None


def build_experiment_matrix(
    mission_ids: list[int] | None = None,
    durations_s: tuple[float, ...] = PAPER_DURATIONS_S,
    injection_time_s: float = PAPER_INJECTION_TIME_S,
    base_seed: int = 0,
    include_gold: bool = True,
    fault_types: tuple[FaultType, ...] = tuple(FaultType),
    targets: tuple[FaultTarget, ...] = tuple(FaultTarget),
    scope: FaultScope = FaultScope.ALL,
) -> list[ExperimentSpec]:
    """Build the campaign's experiment list.

    With the defaults and 10 missions this returns exactly the paper's
    850 cases (840 faulty + 10 gold). Every case gets a deterministic
    seed derived from its coordinates in the matrix, so single
    experiments can be re-run in isolation bit-identically. ``scope``
    sets which redundant bank members each fault corrupts (the default
    ALL is the paper's model).
    """
    if mission_ids is None:
        mission_ids = list(range(1, 11))
    if injection_time_s < 0.0:
        raise ValueError("injection_time_s must be non-negative")

    specs: list[ExperimentSpec] = []
    experiment_id = 0
    if include_gold:
        for mission_id in mission_ids:
            specs.append(ExperimentSpec(experiment_id, mission_id, None))
            experiment_id += 1

    for duration in durations_s:
        for target in targets:
            for fault_type in fault_types:
                for mission_id in mission_ids:
                    seed = _case_seed(base_seed, mission_id, fault_type, target, duration)
                    fault = FaultSpec(
                        fault_type=fault_type,
                        target=target,
                        start_time_s=injection_time_s,
                        duration_s=duration,
                        seed=seed,
                        scope=scope,
                    )
                    specs.append(ExperimentSpec(experiment_id, mission_id, fault))
                    experiment_id += 1
    return specs


def _case_seed(
    base_seed: int,
    mission_id: int,
    fault_type: FaultType,
    target: FaultTarget,
    duration: float,
) -> int:
    """Deterministic, collision-free seed for one matrix cell."""
    type_index = list(FaultType).index(fault_type)
    target_index = list(FaultTarget).index(target)
    return (
        base_seed * 1_000_003
        + mission_id * 10_007
        + type_index * 101
        + target_index * 17
        + int(duration * 10)
    )
