"""Ablation studies on the design choices DESIGN.md calls out.

Each ablation answers "how much does mechanism X matter?" by re-running
a targeted slice of the fault matrix with the mechanism altered:

* :func:`isolation_time_sweep` — the paper reports failsafe engagement
  takes a minimum of ~1900 ms (redundant-sensor isolation). How does the
  crash-vs-failsafe split move if isolation is faster or slower?
* :func:`gyro_threshold_sweep` — the 60 deg/s failure-detection default:
  stricter vs looser thresholds against a gyro fault slice.
* :func:`fusion_reset_ablation` — disable the EKF's fusion-timeout
  reset: the paper's "Acc Zeros mostly completes" row depends on it.
* :func:`confidence_scheduling_ablation` — disable the degraded-attitude
  gain scheduling: flyable gyro-dead windows become losses.
* :func:`risk_factor_sweep` — the bubble's R factor (Eq. 3): how outer
  violations scale for a fixed set of faulty trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.faults import FaultSpec, FaultTarget, FaultType
from repro.estimation import EkfParams
from repro.flightstack import FlightParams, MissionOutcome
from repro.missions.valencia import valencia_missions
from repro.system import SystemConfig, UavSystem


@dataclass(frozen=True)
class AblationPoint:
    """One configuration point of an ablation sweep."""

    parameter: str
    value: float | bool
    runs: int
    completed_pct: float
    crash_pct: float
    failsafe_pct: float
    inner_violations_avg: float
    outer_violations_avg: float


def _run_slice(
    faults: list[FaultSpec],
    mission_ids: tuple[int, ...],
    scale: float,
    config_factory: Callable[[], SystemConfig],
) -> tuple[int, float, float, float, float, float]:
    """Run every (mission, fault) pair; return aggregate outcome stats."""
    plans = {p.mission_id: p for p in valencia_missions(scale=scale)}
    outcomes = []
    inner = outer = 0
    for mission_id in mission_ids:
        for fault in faults:
            system = UavSystem(plans[mission_id], config=config_factory(), fault=fault)
            result = system.run()
            outcomes.append(result.outcome)
            inner += result.inner_violations
            outer += result.outer_violations
    if not outcomes:
        raise ValueError("ablation slice produced no runs (empty missions or faults)")
    n = len(outcomes)
    completed = 100.0 * sum(o == MissionOutcome.COMPLETED for o in outcomes) / n
    crashed = 100.0 * sum(o == MissionOutcome.CRASHED for o in outcomes) / n
    failsafed = 100.0 * sum(
        o in (MissionOutcome.FAILSAFE, MissionOutcome.TIMEOUT) for o in outcomes
    ) / n
    return n, completed, crashed, failsafed, inner / n, outer / n


def _gyro_fault_slice(injection_time_s: float) -> list[FaultSpec]:
    """A severity-diverse gyro slice: benign, mid, violent."""
    return [
        FaultSpec(FaultType.ZEROS, FaultTarget.GYRO, injection_time_s, 10.0, seed=1),
        FaultSpec(FaultType.FREEZE, FaultTarget.GYRO, injection_time_s, 10.0, seed=2),
        FaultSpec(FaultType.RANDOM, FaultTarget.GYRO, injection_time_s, 10.0, seed=3),
        FaultSpec(FaultType.MIN, FaultTarget.GYRO, injection_time_s, 2.0, seed=4),
    ]


def isolation_time_sweep(
    isolation_times_s: tuple[float, ...] = (0.5, 1.9, 4.0),
    mission_ids: tuple[int, ...] = (4,),
    scale: float = 0.12,
    injection_time_s: float = 25.0,
) -> list[AblationPoint]:
    """Sweep the redundant-sensor isolation time before failsafe."""
    points = []
    faults = _gyro_fault_slice(injection_time_s)
    for isolation in isolation_times_s:
        def factory(isolation: float = isolation) -> SystemConfig:
            params = FlightParams(fs_isolation_time_s=isolation)
            return SystemConfig(flight_params=params)

        n, comp, crash, fs, inner, outer = _run_slice(faults, mission_ids, scale, factory)
        points.append(
            AblationPoint("fs_isolation_time_s", isolation, n, comp, crash, fs, inner, outer)
        )
    return points


def gyro_threshold_sweep(
    thresholds_deg_s: tuple[float, ...] = (30.0, 60.0, 180.0),
    mission_ids: tuple[int, ...] = (4,),
    scale: float = 0.12,
    injection_time_s: float = 25.0,
) -> list[AblationPoint]:
    """Sweep the FD gyro-rate threshold (the paper's 60 deg/s default)."""
    import math

    points = []
    faults = _gyro_fault_slice(injection_time_s)
    for threshold in thresholds_deg_s:
        def factory(threshold: float = threshold) -> SystemConfig:
            params = FlightParams(
                fd_gyro_rate_threshold_rad_s=math.radians(threshold)
            )
            return SystemConfig(flight_params=params)

        n, comp, crash, fs, inner, outer = _run_slice(faults, mission_ids, scale, factory)
        points.append(
            AblationPoint("fd_gyro_rate_deg_s", threshold, n, comp, crash, fs, inner, outer)
        )
    return points


def fusion_reset_ablation(
    mission_ids: tuple[int, ...] = (4,),
    scale: float = 0.12,
    injection_time_s: float = 25.0,
) -> list[AblationPoint]:
    """With vs without the EKF fusion-timeout reset, on accel faults."""
    faults = [
        FaultSpec(FaultType.ZEROS, FaultTarget.ACCEL, injection_time_s, 10.0, seed=1),
        FaultSpec(FaultType.FREEZE, FaultTarget.ACCEL, injection_time_s, 10.0, seed=2),
        FaultSpec(FaultType.MAX, FaultTarget.ACCEL, injection_time_s, 5.0, seed=3),
    ]
    points = []
    for enabled in (True, False):
        def factory(enabled: bool = enabled) -> SystemConfig:
            return SystemConfig(ekf_params=EkfParams(enable_fusion_reset=enabled))

        n, comp, crash, fs, inner, outer = _run_slice(faults, mission_ids, scale, factory)
        points.append(
            AblationPoint("enable_fusion_reset", enabled, n, comp, crash, fs, inner, outer)
        )
    return points


def confidence_scheduling_ablation(
    mission_ids: tuple[int, ...] = (4,),
    scale: float = 0.12,
    injection_time_s: float = 25.0,
) -> list[AblationPoint]:
    """With vs without degraded-attitude gain scheduling, on gyro-dead."""
    faults = [
        FaultSpec(FaultType.ZEROS, FaultTarget.GYRO, injection_time_s, 5.0, seed=1),
        FaultSpec(FaultType.FREEZE, FaultTarget.GYRO, injection_time_s, 5.0, seed=2),
    ]
    points = []
    for enabled in (True, False):
        def factory(enabled: bool = enabled) -> SystemConfig:
            return SystemConfig(confidence_scheduling=enabled)

        n, comp, crash, fs, inner, outer = _run_slice(faults, mission_ids, scale, factory)
        points.append(
            AblationPoint("confidence_scheduling", enabled, n, comp, crash, fs, inner, outer)
        )
    return points


def risk_factor_sweep(
    risk_factors: tuple[float, ...] = (1.0, 1.5, 2.0),
    mission_ids: tuple[int, ...] = (4,),
    scale: float = 0.12,
    injection_time_s: float = 25.0,
) -> list[AblationPoint]:
    """Sweep R in Eq. 3: larger R grows the outer bubble and therefore
    reduces outer violations for identical flown trajectories."""
    fault = FaultSpec(FaultType.ZEROS, FaultTarget.ACCEL, injection_time_s, 10.0, seed=1)
    points = []
    for risk in risk_factors:
        def factory(risk: float = risk) -> SystemConfig:
            return SystemConfig(risk_factor=risk)

        n, comp, crash, fs, inner, outer = _run_slice([fault], mission_ids, scale, factory)
        points.append(AblationPoint("risk_factor_R", risk, n, comp, crash, fs, inner, outer))
    return points


def render_ablation(points: list[AblationPoint], title: str) -> str:
    """Fixed-width rendering of one ablation sweep."""
    lines = [title]
    header = (
        f"{'value':>10} {'runs':>5} {'completed':>10} {'crash':>8} "
        f"{'failsafe':>9} {'inner':>7} {'outer':>7}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for p in points:
        lines.append(
            f"{str(p.value):>10} {p.runs:>5} {p.completed_pct:>9.1f}% "
            f"{p.crash_pct:>7.1f}% {p.failsafe_pct:>8.1f}% "
            f"{p.inner_violations_avg:>7.2f} {p.outer_violations_avg:>7.2f}"
        )
    return "\n".join(lines)
