"""The sensor fault injector.

Sits between the IMU driver and the EKF (and the rate controller, which
consumes the gyro directly), corrupting samples while the configured
fault window is active — the injection point the paper integrated into
PX4 ("introducing predefined faults into the UAVs' flight controller by
corrupting sensor data output").
"""

from __future__ import annotations

from repro.core.faults import FaultBehavior, FaultSpec
from repro.sensors.imu import ImuSample


class SensorFaultInjector:
    """Applies one :class:`FaultSpec` to a stream of IMU samples.

    The injector tracks the last clean sample so FREEZE can latch the
    value from the instant the injection starts, and latches activation
    state so FIXED draws its random constant exactly once per window.

    ``member_index`` identifies which redundant bank member this
    injector sits in front of (0 = the primary, and the only member of
    a single-IMU vehicle). The spec's :class:`~repro.core.faults
    .FaultScope` decides whether this member is corrupted at all, and
    each member derives its own behaviour seeds so ALL-scope random
    faults do not produce implausibly identical streams on independent
    sensors. Member 0's seeds are exactly the pre-redundancy ones, so
    single-IMU results are bit-identical to the paper baseline.
    """

    def __init__(
        self,
        spec: FaultSpec | None,
        accel_range: float,
        gyro_range: float,
        member_index: int = 0,
    ) -> None:
        if member_index < 0:
            raise ValueError("member_index must be non-negative")
        self.spec = spec
        self.member_index = member_index
        self._affected = spec is not None and spec.affects_member(member_index)
        self._was_active = False
        self._accel_behavior: FaultBehavior | None = None
        self._gyro_behavior: FaultBehavior | None = None
        if spec is not None and self._affected:
            if spec.target.affects_accel:
                self._accel_behavior = FaultBehavior(
                    spec.fault_type,
                    accel_range,
                    spec.seed + 2 * member_index,
                    spec.noise_fraction,
                    spec.noise_bias_fraction,
                )
            if spec.target.affects_gyro:
                self._gyro_behavior = FaultBehavior(
                    spec.fault_type,
                    gyro_range,
                    spec.seed + 2 * member_index + 1,
                    spec.noise_fraction,
                    spec.noise_bias_fraction,
                )

    def is_active(self, time_s: float) -> bool:
        """True while the fault window covers ``time_s``."""
        return self.spec is not None and self.spec.is_active(time_s)

    def corrupts(self, time_s: float) -> bool:
        """True while *this member's* stream is actually corrupted."""
        return self._affected and self.is_active(time_s)

    def apply(self, sample: ImuSample) -> ImuSample:
        """Return the (possibly corrupted) sample to feed the stack.

        Clean passthrough outside the window (or when the fault's scope
        spares this bank member); inside it, the configured behaviours
        replace the targeted triads. The input sample is not mutated.
        """
        if self.spec is None or not self._affected:
            return sample

        active = self.spec.is_active(sample.time_s)
        if not active:
            self._was_active = active
            return sample

        if not self._was_active:
            # Injection edge: latch freeze/fixed state from clean data.
            if self._accel_behavior is not None:
                self._accel_behavior.on_activation(sample.accel)
            if self._gyro_behavior is not None:
                self._gyro_behavior.on_activation(sample.gyro)
            self._was_active = True

        corrupted = sample.copy()
        if self._accel_behavior is not None:
            corrupted.accel = self._accel_behavior.apply(sample.accel)
        if self._gyro_behavior is not None:
            corrupted.gyro = self._gyro_behavior.apply(sample.gyro)
        return corrupted
