"""Fault-detection latency analysis.

The paper's discussion stresses "the importance of quick detection and
tolerance techniques" and observes that the failsafe takes a minimum of
~1900 ms after the failure condition appears (the redundant-sensor
isolation stage). This module measures, per fault, the actual timeline:

* ``detection_time_s`` — when failure detection first debounced
  (isolation started);
* ``failsafe_time_s`` — when the failsafe action engaged;
* ``loss_time_s`` — when the vehicle crashed, if it beat the failsafe.

Latencies are reported relative to the injection start.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.faults import FaultSpec
from repro.flightstack.failsafe import FailsafeState
from repro.missions.plan import MissionPlan
from repro.system import SystemConfig, UavSystem


@dataclass(frozen=True)
class DetectionRecord:
    """Detection timeline of one faulty run (times relative to injection)."""

    fault_label: str
    outcome: str
    detection_latency_s: float | None
    failsafe_latency_s: float | None
    loss_latency_s: float | None
    #: Which failure-detection condition debounced first ("none" when
    #: detection never fired).
    trigger: str = "none"
    #: What the redundant-sensor isolation stage did.
    isolation_outcome: str = "not_attempted"
    #: Verdict of the last isolation episode (None: never resolved).
    isolation_succeeded: bool | None = None

    @property
    def detected(self) -> bool:
        """True when failure detection reacted to the fault at all."""
        return self.detection_latency_s is not None


def measure_detection(
    plan: MissionPlan,
    fault: FaultSpec,
    config: SystemConfig | None = None,
) -> DetectionRecord:
    """Run one faulty mission and extract its detection timeline."""
    system = UavSystem(plan, config=config, fault=fault)
    system.commander.arm_and_takeoff(system.physics.time_s)

    detection_time: float | None = None
    first_trigger: str = "none"
    hard_cap = plan.estimated_duration_s() * 2.5 + 60.0
    while not system.commander.terminal and system.physics.time_s < hard_cap:
        system.step()
        if (
            detection_time is None
            and system.failsafe.state != FailsafeState.NOMINAL
        ):
            detection_time = system.physics.time_s
            first_trigger = system.failsafe.trigger.value

    outcome = system.commander.outcome.value if system.commander.outcome else "running"
    start = fault.start_time_s

    def latency(t: float | None) -> float | None:
        return None if t is None else max(0.0, t - start)

    crash_time = (
        system.crash_detector.report.time_s if system.crash_detector.report else None
    )
    return DetectionRecord(
        fault_label=fault.label,
        outcome=outcome,
        detection_latency_s=latency(detection_time),
        failsafe_latency_s=latency(system.failsafe.engaged_time_s),
        loss_latency_s=latency(crash_time),
        trigger=first_trigger,
        isolation_outcome=system.failsafe.isolation_outcome.value,
        isolation_succeeded=system.failsafe.isolation_succeeded,
    )


def render_detection_report(records: list[DetectionRecord], title: str) -> str:
    """Fixed-width rendering of detection timelines."""
    lines = [title]
    header = (
        f"{'fault':<18} {'outcome':<10} {'detect (s)':>11} "
        f"{'failsafe (s)':>13} {'loss (s)':>9} {'trigger':<10} "
        f"{'isolation':<13}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for r in records:
        det = f"{r.detection_latency_s:.2f}" if r.detection_latency_s is not None else "-"
        fs = f"{r.failsafe_latency_s:.2f}" if r.failsafe_latency_s is not None else "-"
        loss = f"{r.loss_latency_s:.2f}" if r.loss_latency_s is not None else "-"
        if r.isolation_succeeded is None:
            isolation = r.isolation_outcome
        else:
            isolation = "succeeded" if r.isolation_succeeded else "failed"
        lines.append(
            f"{r.fault_label:<18} {r.outcome:<10} {det:>11} {fs:>13} "
            f"{loss:>9} {r.trigger:<10} {isolation:<13}"
        )
    return "\n".join(lines)
