"""Campaign execution: run experiment matrices over the simulator.

A campaign is configured once (:class:`CampaignConfig`), after which
:func:`run_campaign` executes every case — serially or across worker
processes (each case is fully independent and deterministically
seeded, so parallelism cannot change results).

The runner is *resilient*: a case that raises, hangs past its
wall-clock budget, or loses its worker process is retried under a
:class:`~repro.core.resilience.RetryPolicy` and, once retries are
exhausted, degrades to a structured harness-error record instead of
aborting the matrix. With ``checkpoint_path`` every completed case is
journalled to a crash-safe JSONL file that ``resume=True`` picks up
after a crash or kill; a resumed campaign is bit-identical to an
uninterrupted one with the same config and seed.

The ``scale`` knob shrinks mission geometry (and proportionally the
injection time) so the full 850-case matrix can run in CI-sized time
budgets; ``scale=1.0`` is the paper-scale scenario with ~491 s gold
runs and injection at 90 s.
"""

from __future__ import annotations

import dataclasses
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable

from repro.core.experiments import (
    PAPER_DURATIONS_S,
    PAPER_INJECTION_TIME_S,
    ExperimentSpec,
    build_experiment_matrix,
)
from repro.core.faults import FaultScope
from repro.core.io import CampaignJournal
from repro.core.resilience import (
    NO_RETRY,
    CaseTimeoutError,
    EtaEstimator,
    RetryPolicy,
    campaign_fingerprint,
    run_with_timeout,
)
from repro.core.results import CampaignResult, ExperimentResult, harness_error_result
from repro.missions.valencia import valencia_missions
from repro.obs.observer import Observer
from repro.obs.registry import MetricsRegistry
from repro.redundancy import RedundancyConfig
from repro.system import MissionResult, SystemConfig, UavSystem

Runner = Callable[["ExperimentSpec", "CampaignConfig"], ExperimentResult]


@dataclass(frozen=True)
class CampaignConfig:
    """Parameters of one fault-injection campaign.

    Attributes:
        scale: horizontal geometry multiplier for the Valencia missions.
        injection_time_s: fault start time; ``None`` scales the paper's
            90 s mark by ``scale`` (with a floor that keeps the
            injection safely after the takeoff transient).
        durations_s: injection durations to sweep (paper: 2/5/10/30 s).
        mission_ids: subset of missions to run (default: all ten).
        base_seed: root seed; campaigns with equal configs are
            bit-identical.
        workers: process count for parallel execution (1 = serial).
        fault_scope: which bank members the injected faults corrupt.
            The default ``ALL`` is the paper's model (every redundant
            sensor sees the fault) and keeps results bit-identical to
            the pre-redundancy code.
        mitigation: fly every case with the redundant IMU bank enabled
            (voting + switchover + degraded fallback).
        imu_redundancy: bank size when ``mitigation`` is on.
        obs_dir: directory for per-case black-box dumps. When set, every
            case flies with an :class:`~repro.obs.observer.Observer` and
            non-completed runs leave a ``blackbox_exp<id>.json`` post
            mortem there (the path rides on the result row). A plain
            string so the config pickles to worker processes; excluded
            from the campaign fingerprint because observability cannot
            change results.
    """

    scale: float = 1.0
    injection_time_s: float | None = None
    durations_s: tuple[float, ...] = PAPER_DURATIONS_S
    mission_ids: tuple[int, ...] = tuple(range(1, 11))
    base_seed: int = 0
    include_gold: bool = True
    workers: int = 1
    fault_scope: FaultScope = FaultScope.ALL
    mitigation: bool = False
    imu_redundancy: int = 3
    obs_dir: str | None = None

    def __post_init__(self) -> None:
        if self.scale <= 0.0:
            raise ValueError("scale must be positive")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.imu_redundancy < 1:
            raise ValueError("imu_redundancy must be >= 1")
        if self.mitigation and self.imu_redundancy < 2:
            raise ValueError("mitigation requires imu_redundancy >= 2")
        if not self.durations_s:
            raise ValueError("durations_s must not be empty")
        for duration in self.durations_s:
            if duration <= 0.0:
                raise ValueError(
                    f"durations_s must be positive, got {duration!r}"
                )
        if not self.mission_ids:
            raise ValueError("mission_ids must not be empty")
        for mission_id in self.mission_ids:
            if not 1 <= mission_id <= 10:
                raise ValueError(
                    f"mission_ids must be within 1-10 (the Valencia "
                    f"scenario has ten missions), got {mission_id!r}"
                )
        if self.injection_time_s is not None and self.injection_time_s < 0.0:
            raise ValueError(
                f"injection_time_s must be non-negative, got "
                f"{self.injection_time_s!r}"
            )

    @property
    def effective_injection_time_s(self) -> float:
        """Injection time after scaling (never inside the takeoff)."""
        if self.injection_time_s is not None:
            return self.injection_time_s
        return max(20.0, PAPER_INJECTION_TIME_S * self.scale)


def run_experiment(spec: ExperimentSpec, config: CampaignConfig) -> ExperimentResult:
    """Execute a single experiment case and reduce it to its metrics."""
    plans = {p.mission_id: p for p in valencia_missions(scale=config.scale)}
    plan = plans[spec.mission_id]
    obs: Observer | None = None
    if config.obs_dir is not None:
        # A private registry per case: cases may run in worker
        # processes, so per-case metrics cannot meaningfully aggregate
        # into the parent's registry anyway.
        obs = Observer(
            registry=MetricsRegistry(),
            blackbox_dir=config.obs_dir,
            blackbox_name=f"blackbox_exp{spec.experiment_id:04d}.json",
        )
    system = UavSystem(
        plan,
        config=SystemConfig(
            seed=config.base_seed,
            redundancy=RedundancyConfig(
                enabled=config.mitigation, num_members=config.imu_redundancy
            ),
        ),
        fault=spec.fault,
        obs=obs,
    )
    mission_result = system.run()
    return _to_result(spec, mission_result, mitigated=config.mitigation)


def _to_result(
    spec: ExperimentSpec, mission: MissionResult, mitigated: bool = False
) -> ExperimentResult:
    return ExperimentResult(
        experiment_id=spec.experiment_id,
        mission_id=spec.mission_id,
        fault_label=spec.label,
        fault_type=spec.fault.fault_type.value if spec.fault else None,
        target=spec.fault.target.value if spec.fault else None,
        injection_duration_s=spec.fault.duration_s if spec.fault else None,
        outcome=mission.outcome,
        flight_duration_s=mission.flight_duration_s,
        distance_km=mission.distance_km,
        inner_violations=mission.inner_violations,
        outer_violations=mission.outer_violations,
        max_deviation_m=mission.max_deviation_m,
        fault_scope=spec.fault.scope.value if spec.fault else None,
        mitigated=mitigated,
        imu_switchovers=mission.imu_switchovers,
        isolation_succeeded=mission.isolation_succeeded,
        blackbox_path=mission.blackbox_path,
    )


@dataclass
class _PendingCase:
    """One not-yet-completed case plus its retry bookkeeping."""

    spec: ExperimentSpec
    attempt: int = 1
    ready_time: float = 0.0  # monotonic time before which we must not run
    suspect: bool = False  # was in flight when a process pool broke


class _Recorder:
    """Collects finished cases: journal append, progress tick, stash.

    With an observer attached, every completed case also ticks the
    ``campaign_cases_total`` counter and emits a ``case.done`` /
    ``case.harness_error`` point event on the campaign trace (timed in
    campaign-relative wall seconds). Without one, the progress ticker
    still prints — plain text with the same ETA — so long campaigns
    stay watchable with observability off.
    """

    def __init__(
        self,
        journal: CampaignJournal | None,
        progress: bool,
        total: int,
        already_done: int,
        obs: Observer | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.journal = journal
        self.progress = progress
        self.total = total
        self.count = already_done
        self.by_id: dict[int, ExperimentResult] = {}
        self.obs = obs
        self.clock = clock or (lambda: 0.0)
        self.eta = EtaEstimator(total=total, already_done=already_done)
        self._cases_total = (
            obs.metrics.counter(
                "campaign_cases_total",
                "Campaign cases finished, by status.",
                labels=("status",),
            )
            if obs is not None
            else None
        )

    def record(self, result: ExperimentResult) -> None:
        self.by_id[result.experiment_id] = result
        if self.journal is not None:
            self.journal.append(result)
        self.count += 1
        self.eta.update(self.count)
        status = "harness_error" if result.is_harness_error else "ok"
        if self._cases_total is not None:
            self._cases_total.labels(status=status).inc()
        if self.obs is not None:
            name = "case.harness_error" if result.is_harness_error else "case.done"
            attrs = {
                "experiment_id": result.experiment_id,
                "attempts": result.attempts,
            }
            if result.is_harness_error:
                attrs["error"] = result.error or ""
            else:
                attrs["outcome"] = result.outcome.value if result.outcome else ""
            self.obs.trace.emit(name, self.clock(), **attrs)
        if self.progress and self.count % 10 == 0:
            print(
                f"  ... {self.count}/{self.total} experiments done "
                f"({self.eta.format()})",
                flush=True,
            )


def run_campaign(
    config: CampaignConfig | None = None,
    specs: list[ExperimentSpec] | None = None,
    progress: bool = False,
    *,
    retry_policy: RetryPolicy | None = None,
    checkpoint_path: str | None = None,
    resume: bool = False,
    runner: Runner | None = None,
    obs: Observer | None = None,
) -> CampaignResult:
    """Run a whole experiment matrix, resiliently.

    Args:
        config: campaign configuration (default: paper-scale, all cases).
        specs: explicit case list; by default the full matrix for
            ``config`` is built.
        progress: print a one-line progress ticker (useful for the
            multi-minute full campaign). In parallel mode the ticker
            advances in completion order, so one slow early case cannot
            stall it.
        retry_policy: retries / backoff / per-case timeout. The default
            (:data:`~repro.core.resilience.NO_RETRY`) makes one attempt
            with no timeout; either way a case that exhausts its
            attempts becomes a harness-error record, never an abort.
        checkpoint_path: JSONL journal file; every completed case is
            appended and fsync'd, and the file is atomically marked
            complete when the campaign finishes.
        resume: load ``checkpoint_path`` (validating its campaign
            fingerprint) and skip already-completed cases. Previously
            harness-errored cases are re-run — resume is the recovery
            path for transient infrastructure failures.
        runner: the per-case callable (default :func:`run_experiment`);
            injectable for harness tests. Must be picklable when
            ``config.workers > 1``.
        obs: harness-level observer. The campaign runs inside a
            ``campaign`` span (timestamps are campaign-relative wall
            seconds); serial execution nests a ``case`` span per case,
            parallel execution emits ``case.done`` point events instead
            (spans from concurrent workers would interleave). Case
            *black boxes* are controlled separately by
            ``config.obs_dir``, which works across worker processes.

    Results are always returned in spec order regardless of worker
    count, retries, or resume — parallelism and harness faults cannot
    change the output.
    """
    config = config or CampaignConfig()
    if specs is None:
        specs = build_experiment_matrix(
            mission_ids=list(config.mission_ids),
            durations_s=config.durations_s,
            injection_time_s=config.effective_injection_time_s,
            base_seed=config.base_seed,
            include_gold=config.include_gold,
            scope=config.fault_scope,
        )
    policy = retry_policy or NO_RETRY
    runner = runner or run_experiment

    journal: CampaignJournal | None = None
    done: dict[int, ExperimentResult] = {}
    if checkpoint_path is not None:
        journal = CampaignJournal(checkpoint_path)
        fingerprint = campaign_fingerprint(config, specs)
        if resume and journal.exists():
            _, loaded = journal.load(expected_fingerprint=fingerprint)
            # Keep only verdict rows: harness errors get another chance.
            done = {
                eid: r for eid, r in loaded.items() if not r.is_harness_error
            }
            if progress and done:
                print(
                    f"  resuming: {len(done)}/{len(specs)} cases already "
                    "complete in checkpoint",
                    flush=True,
                )
            journal.open_for_append()
        else:
            journal.create(
                fingerprint=fingerprint,
                scale=config.scale,
                injection_time_s=config.effective_injection_time_s,
                total_cases=len(specs),
            )

    pending = deque(
        _PendingCase(spec) for spec in specs if spec.experiment_id not in done
    )
    # Campaign-relative wall clock for harness spans (the vehicle's own
    # spans use simulated time; the harness genuinely runs in wall time).
    start_monotonic = time.monotonic()

    def clock() -> float:
        return time.monotonic() - start_monotonic

    recorder = _Recorder(
        journal,
        progress,
        total=len(specs),
        already_done=len(done),
        obs=obs,
        clock=clock,
    )
    if obs is not None:
        obs.trace.begin_span(
            "campaign",
            clock(),
            total_cases=len(specs),
            already_done=len(done),
            workers=config.workers,
            scale=config.scale,
        )

    try:
        if config.workers == 1:
            _execute_serial(pending, config, runner, policy, recorder)
        else:
            _execute_parallel(pending, config, runner, policy, recorder)
        if journal is not None:
            journal.finalize()
    finally:
        if obs is not None:
            obs.trace.end_all(clock())
        if journal is not None:
            journal.close()

    merged = {**done, **recorder.by_id}
    return CampaignResult(
        results=[merged[spec.experiment_id] for spec in specs],
        specs=list(specs),
        scale=config.scale,
        injection_time_s=config.effective_injection_time_s,
    )


def _execute_serial(
    pending: deque[_PendingCase],
    config: CampaignConfig,
    runner: Runner,
    policy: RetryPolicy,
    recorder: _Recorder,
) -> None:
    """In-process execution; timeouts enforced via a watchdog thread."""
    obs = recorder.obs
    while pending:
        case = pending.popleft()
        delay = case.ready_time - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        if obs is not None:
            obs.trace.begin_span(
                "case",
                recorder.clock(),
                experiment_id=case.spec.experiment_id,
                label=case.spec.label,
                attempt=case.attempt,
            )
        try:
            result = run_with_timeout(
                runner, (case.spec, config), policy.timeout_s
            )
        except Exception as exc:  # KeyboardInterrupt/SystemExit propagate
            _retry_or_fail(case, exc, policy, pending, recorder, front=True)
        else:
            recorder.record(_stamp_attempts(result, case.attempt))
        finally:
            if obs is not None:
                obs.trace.end_span(recorder.clock())


def _execute_parallel(
    pending: deque[_PendingCase],
    config: CampaignConfig,
    runner: Runner,
    policy: RetryPolicy,
    recorder: _Recorder,
) -> None:
    """Process-pool execution with timeout and broken-pool recovery.

    Progress advances in completion order (``wait(FIRST_COMPLETED)``),
    not submission order, so one slow early case cannot stall the
    ticker. A case that exceeds ``policy.timeout_s`` forces a pool
    teardown (the only way to reclaim a wedged worker); the timed-out
    case is charged an attempt while innocent in-flight cases are
    resubmitted for free. A :class:`BrokenProcessPool` (worker died)
    cannot be attributed to a single future, so every in-flight case is
    requeued uncharged as a *suspect* and re-run one at a time: the
    case that breaks the pool while running alone is the offender, and
    its attempt counter advances until it is excluded as a harness
    error.
    """
    pool: ProcessPoolExecutor | None = None
    active: dict[Future, _PendingCase] = {}
    deadlines: dict[Future, float] = {}

    def submit(case: _PendingCase, now: float) -> bool:
        nonlocal pool
        assert pool is not None
        try:
            future = pool.submit(runner, case.spec, config)
        except BrokenProcessPool:
            # Pool died between iterations; the case never ran, so
            # requeue it without spending an attempt.
            pending.appendleft(case)
            _kill_pool(pool)
            pool = None
            return False
        active[future] = case
        if policy.timeout_s is not None:
            deadlines[future] = now + policy.timeout_s
        return True

    try:
        while pending or active:
            if pool is None:
                pool = ProcessPoolExecutor(max_workers=config.workers)
            now = time.monotonic()

            # Dispatch. Suspects (in flight during a pool break) run in
            # isolation for blame attribution; otherwise fill every
            # free worker slot with a ready case.
            if not any(case.suspect for case in active.values()):
                if any(case.suspect for case in pending):
                    if not active:
                        ready = next(
                            (
                                c
                                for c in pending
                                if c.suspect and c.ready_time <= now
                            ),
                            None,
                        )
                        if ready is not None:
                            pending.remove(ready)
                            submit(ready, now)
                    # else: drain current actives before isolating.
                else:
                    still_waiting: list[_PendingCase] = []
                    while pending and len(active) < config.workers:
                        case = pending.popleft()
                        if case.ready_time > now:
                            still_waiting.append(case)
                            continue
                        if not submit(case, now):
                            break
                    pending.extendleft(reversed(still_waiting))
                    if pool is None:
                        continue

            if not active:
                # Nothing dispatchable right now: either everything is
                # backing off, or suspects-in-backoff block the queue.
                waiting = [c for c in pending if c.suspect] or list(pending)
                time.sleep(max(0.0, min(c.ready_time for c in waiting) - now))
                continue

            timeout = None
            wake_times = list(deadlines.values()) + [
                c.ready_time for c in pending if c.ready_time > now
            ]
            if wake_times:
                timeout = max(0.0, min(wake_times) - now)
            finished, _ = wait(set(active), timeout=timeout, return_when=FIRST_COMPLETED)

            pool_broken = False
            for future in finished:
                case = active.pop(future)
                deadlines.pop(future, None)
                try:
                    result = future.result()
                except BrokenProcessPool as exc:
                    pool_broken = True
                    if case.suspect:
                        # Running alone when the pool broke: guilty.
                        _retry_or_fail(
                            case, exc, policy, pending, recorder, suspect=True
                        )
                    else:
                        pending.append(
                            _PendingCase(
                                spec=case.spec,
                                attempt=case.attempt,
                                suspect=True,
                            )
                        )
                except Exception as exc:
                    _retry_or_fail(case, exc, policy, pending, recorder)
                else:
                    recorder.record(_stamp_attempts(result, case.attempt))

            # Wall-clock enforcement: a future past its deadline means a
            # wedged worker — tear the pool down to reclaim it.
            now = time.monotonic()
            expired = [f for f, d in deadlines.items() if d <= now]
            if expired or pool_broken:
                for future in expired:
                    case = active.pop(future)
                    deadlines.pop(future, None)
                    timeout_exc = CaseTimeoutError(
                        f"case exceeded wall-clock budget of {policy.timeout_s} s"
                    )
                    _retry_or_fail(case, timeout_exc, policy, pending, recorder)
                # Innocent in-flight cases: resubmit, same attempt count.
                for case in active.values():
                    pending.append(case)
                active.clear()
                deadlines.clear()
                _kill_pool(pool)
                pool = None
    except BaseException:
        if pool is not None:
            _kill_pool(pool)
        raise
    else:
        if pool is not None:
            pool.shutdown(wait=True)


def _retry_or_fail(
    case: _PendingCase,
    exc: BaseException,
    policy: RetryPolicy,
    pending: deque[_PendingCase],
    recorder: _Recorder,
    front: bool = False,
    suspect: bool = False,
) -> None:
    """Requeue a failed case with backoff, or record its harness error."""
    if recorder.obs is not None:
        recorder.obs.trace.emit(
            "harness.case_failed",
            recorder.clock(),
            experiment_id=case.spec.experiment_id,
            attempt=case.attempt,
            will_retry=case.attempt < policy.max_attempts,
            error=f"{type(exc).__name__}: {exc}",
        )
    if case.attempt < policy.max_attempts:
        delay = policy.delay_s(case.attempt, key=case.spec.experiment_id)
        retried = _PendingCase(
            spec=case.spec,
            attempt=case.attempt + 1,
            ready_time=time.monotonic() + delay,
            suspect=suspect,
        )
        if front:
            pending.appendleft(retried)
        else:
            pending.append(retried)
    else:
        recorder.record(harness_error_result(case.spec, exc, case.attempt))


def _stamp_attempts(result: ExperimentResult, attempt: int) -> ExperimentResult:
    """Carry the attempt count on retried-then-successful cases."""
    if attempt == 1:
        return result
    return dataclasses.replace(result, attempts=attempt)


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Forcibly reclaim a pool that may contain wedged or dead workers."""
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        process.terminate()
    pool.shutdown(wait=False, cancel_futures=True)


def quick_config(workers: int = 1, base_seed: int = 0) -> CampaignConfig:
    """A CI-sized campaign: same matrix shape, 1/5-scale geometry."""
    return CampaignConfig(scale=0.2, workers=workers, base_seed=base_seed)
