"""Campaign execution: run experiment matrices over the simulator.

A campaign is configured once (:class:`CampaignConfig`), after which
:func:`run_campaign` executes every case — serially or across worker
processes (each case is fully independent and deterministically
seeded, so parallelism cannot change results).

The ``scale`` knob shrinks mission geometry (and proportionally the
injection time) so the full 850-case matrix can run in CI-sized time
budgets; ``scale=1.0`` is the paper-scale scenario with ~491 s gold
runs and injection at 90 s.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.core.experiments import (
    PAPER_DURATIONS_S,
    PAPER_INJECTION_TIME_S,
    ExperimentSpec,
    build_experiment_matrix,
)
from repro.core.results import CampaignResult, ExperimentResult
from repro.missions.valencia import valencia_missions
from repro.system import MissionResult, SystemConfig, UavSystem


@dataclass(frozen=True)
class CampaignConfig:
    """Parameters of one fault-injection campaign.

    Attributes:
        scale: horizontal geometry multiplier for the Valencia missions.
        injection_time_s: fault start time; ``None`` scales the paper's
            90 s mark by ``scale`` (with a floor that keeps the
            injection safely after the takeoff transient).
        durations_s: injection durations to sweep (paper: 2/5/10/30 s).
        mission_ids: subset of missions to run (default: all ten).
        base_seed: root seed; campaigns with equal configs are
            bit-identical.
        workers: process count for parallel execution (1 = serial).
    """

    scale: float = 1.0
    injection_time_s: float | None = None
    durations_s: tuple[float, ...] = PAPER_DURATIONS_S
    mission_ids: tuple[int, ...] = tuple(range(1, 11))
    base_seed: int = 0
    include_gold: bool = True
    workers: int = 1

    def __post_init__(self) -> None:
        if self.scale <= 0.0:
            raise ValueError("scale must be positive")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")

    @property
    def effective_injection_time_s(self) -> float:
        """Injection time after scaling (never inside the takeoff)."""
        if self.injection_time_s is not None:
            return self.injection_time_s
        return max(20.0, PAPER_INJECTION_TIME_S * self.scale)


def run_experiment(spec: ExperimentSpec, config: CampaignConfig) -> ExperimentResult:
    """Execute a single experiment case and reduce it to its metrics."""
    plans = {p.mission_id: p for p in valencia_missions(scale=config.scale)}
    plan = plans[spec.mission_id]
    system = UavSystem(
        plan,
        config=SystemConfig(seed=config.base_seed),
        fault=spec.fault,
    )
    mission_result = system.run()
    return _to_result(spec, mission_result)


def run_campaign(
    config: CampaignConfig | None = None,
    specs: list[ExperimentSpec] | None = None,
    progress: bool = False,
) -> CampaignResult:
    """Run a whole experiment matrix.

    Args:
        config: campaign configuration (default: paper-scale, all cases).
        specs: explicit case list; by default the full matrix for
            ``config`` is built.
        progress: print a one-line progress ticker (useful for the
            multi-minute full campaign).
    """
    config = config or CampaignConfig()
    if specs is None:
        specs = build_experiment_matrix(
            mission_ids=list(config.mission_ids),
            durations_s=config.durations_s,
            injection_time_s=config.effective_injection_time_s,
            base_seed=config.base_seed,
            include_gold=config.include_gold,
        )

    results: list[ExperimentResult] = []
    if config.workers == 1:
        for index, spec in enumerate(specs):
            results.append(run_experiment(spec, config))
            if progress and (index + 1) % 10 == 0:
                print(f"  ... {index + 1}/{len(specs)} experiments done", flush=True)
    else:
        with ProcessPoolExecutor(max_workers=config.workers) as pool:
            futures = [pool.submit(run_experiment, spec, config) for spec in specs]
            for index, future in enumerate(futures):
                results.append(future.result())
                if progress and (index + 1) % 10 == 0:
                    print(f"  ... {index + 1}/{len(specs)} experiments done", flush=True)

    return CampaignResult(
        results=results,
        specs=list(specs),
        scale=config.scale,
        injection_time_s=config.effective_injection_time_s,
    )


def quick_config(workers: int = 1, base_seed: int = 0) -> CampaignConfig:
    """A CI-sized campaign: same matrix shape, 1/5-scale geometry."""
    return CampaignConfig(scale=0.2, workers=workers, base_seed=base_seed)


def _to_result(spec: ExperimentSpec, mission: MissionResult) -> ExperimentResult:
    return ExperimentResult(
        experiment_id=spec.experiment_id,
        mission_id=spec.mission_id,
        fault_label=spec.label,
        fault_type=spec.fault.fault_type.value if spec.fault else None,
        target=spec.fault.target.value if spec.fault else None,
        injection_duration_s=spec.fault.duration_s if spec.fault else None,
        outcome=mission.outcome,
        flight_duration_s=mission.flight_duration_s,
        distance_km=mission.distance_km,
        inner_violations=mission.inner_violations,
        outer_violations=mission.outer_violations,
        max_deviation_m=mission.max_deviation_m,
    )
