"""The IMU fault model (paper Table I).

The paper surveys fourteen real-world fault and attack classes and shows
each can be represented by one of seven injectable behaviours:

=============  ====================================================
Behaviour      Represents (Table I)
=============  ====================================================
FIXED          False data injection, hardware trojan, OS attack
ZEROS          Damaged IMU, gyro/acc failure, physical isolation,
               malicious software
FREEZE         Constant output (update lag)
RANDOM         Instability (radiation/temperature), acoustic attack,
               malicious software
MIN            OS system attack (saturating low)
MAX            OS system attack (saturating high)
NOISE          Bias error, gyro drift, acc drift
=============  ====================================================

Each behaviour transforms a 3-axis sensor sample given the sensor's
measurement range, so ``MIN``/``MAX``/``RANDOM``/``FIXED`` take on the
physical saturation values of the modelled MEMS part.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

import numpy as np


class FaultType(enum.Enum):
    """The seven injectable fault behaviours of the paper's fault model."""

    FIXED = "fixed"
    ZEROS = "zeros"
    FREEZE = "freeze"
    RANDOM = "random"
    MIN = "min"
    MAX = "max"
    NOISE = "noise"


class FaultScope(enum.Enum):
    """Which members of a redundant IMU bank a fault corrupts.

    The paper's campaigns corrupt the sensor data stream *after* the
    driver layer, so every redundant sensor sees the same fault —
    that is :attr:`ALL`, the default, and it reproduces the paper's
    results exactly. :attr:`PRIMARY_ONLY` and :attr:`MEMBERS` model
    faults that hit physical sensor instances (a damaged chip, a
    targeted attack on one bus), which is where redundancy can
    actually buy resilience.
    """

    ALL = "all"
    PRIMARY_ONLY = "primary_only"
    MEMBERS = "members"


class FaultTarget(enum.Enum):
    """Which IMU component the fault is injected into."""

    ACCEL = "accel"
    GYRO = "gyro"
    IMU = "imu"  # both accelerometer and gyrometer together

    @property
    def affects_accel(self) -> bool:
        return self in (FaultTarget.ACCEL, FaultTarget.IMU)

    @property
    def affects_gyro(self) -> bool:
        return self in (FaultTarget.GYRO, FaultTarget.IMU)

    @property
    def label(self) -> str:
        """Display name used in the paper's tables."""
        return {"accel": "Acc", "gyro": "Gyro", "imu": "IMU"}[self.value]


@dataclass(frozen=True)
class FaultSpec:
    """A scheduled fault injection.

    The default ``noise_fraction`` scales the NOISE behaviour's standard
    deviation as a fraction of the sensor range ("a not so drastic
    random value added/subtracted to the current value").
    """

    fault_type: FaultType
    target: FaultTarget
    start_time_s: float
    duration_s: float
    seed: int = 0
    noise_fraction: float = 0.05
    noise_bias_fraction: float = 0.03
    scope: FaultScope = FaultScope.ALL
    scope_members: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.start_time_s < 0.0:
            raise ValueError("start_time_s must be non-negative")
        if self.duration_s <= 0.0:
            raise ValueError("duration_s must be positive")
        if not 0.0 < self.noise_fraction <= 1.0:
            raise ValueError("noise_fraction must be in (0, 1]")
        if not 0.0 <= self.noise_bias_fraction <= 1.0:
            raise ValueError("noise_bias_fraction must be in [0, 1]")
        if self.scope is FaultScope.MEMBERS:
            if not self.scope_members:
                raise ValueError("scope=MEMBERS requires a non-empty scope_members")
            if any(m < 0 for m in self.scope_members):
                raise ValueError("scope_members must be non-negative bank indices")
        elif self.scope_members:
            raise ValueError("scope_members is only valid with scope=MEMBERS")

    def affects_member(self, member_index: int) -> bool:
        """True when this fault corrupts bank member ``member_index``.

        Member 0 is the primary sensor; a single-IMU vehicle only ever
        asks about member 0, for which ALL and PRIMARY_ONLY agree.
        """
        if self.scope is FaultScope.ALL:
            return True
        if self.scope is FaultScope.PRIMARY_ONLY:
            return member_index == 0
        if self.scope is FaultScope.MEMBERS:
            return member_index in self.scope_members
        raise ValueError(f"unhandled fault scope: {self.scope}")

    @property
    def end_time_s(self) -> float:
        return self.start_time_s + self.duration_s

    def is_active(self, time_s: float) -> bool:
        """True inside the injection window ``[start, start+duration)``."""
        return self.start_time_s <= time_s < self.end_time_s

    @property
    def label(self) -> str:
        """Row label as used in the paper's Table III, e.g. 'Acc Freeze'."""
        names = {
            FaultType.FIXED: "Fixed Value",
            FaultType.ZEROS: "Zeros",
            FaultType.FREEZE: "Freeze",
            FaultType.RANDOM: "Random",
            FaultType.MIN: "Min",
            FaultType.MAX: "Max",
            FaultType.NOISE: "Noise",
        }
        return f"{self.target.label} {names[self.fault_type]}"

    def with_seed(self, seed: int) -> "FaultSpec":
        """Copy of this spec with a different random seed."""
        return replace(self, seed=seed)


class FaultBehavior:
    """Applies one :class:`FaultType` to a 3-axis sample stream.

    One instance handles one sensor triad for one injection window; the
    injector creates fresh behaviours per run, so all randomness is
    local and reproducible from the spec's seed.
    """

    def __init__(
        self,
        fault_type: FaultType,
        sensor_range: float,
        seed: int,
        noise_fraction: float,
        noise_bias_fraction: float = 0.03,
    ) -> None:
        if sensor_range <= 0.0:
            raise ValueError("sensor_range must be positive")
        self.fault_type = fault_type
        self.sensor_range = sensor_range
        self.noise_fraction = noise_fraction
        self.noise_bias_fraction = noise_bias_fraction
        self._rng = np.random.default_rng(seed)
        self._frozen: np.ndarray | None = None
        self._fixed: np.ndarray | None = None
        self._noise_bias = np.zeros(3)

    def on_activation(self, last_clean_sample: np.ndarray) -> None:
        """Latch state needed at the moment the injection begins."""
        self._frozen = last_clean_sample.copy()
        # FIXED: "a Random constant value" drawn once per injection.
        self._fixed = self._rng.uniform(-self.sensor_range, self.sensor_range, size=3)
        # NOISE: the surveyed faults it represents (bias error, gyro/acc
        # drift) have a systematic component on top of the added noise,
        # so one offset per window is drawn alongside the white noise.
        self._noise_bias = self._rng.uniform(
            -self.noise_bias_fraction * self.sensor_range,
            self.noise_bias_fraction * self.sensor_range,
            size=3,
        )

    def apply(self, clean_value: np.ndarray) -> np.ndarray:
        """Corrupt one sample (returns a new array)."""
        r = self.sensor_range
        kind = self.fault_type
        if kind == FaultType.ZEROS:
            return np.zeros(3)
        if kind == FaultType.FREEZE:
            if self._frozen is None:
                raise RuntimeError("FREEZE applied before on_activation")
            return self._frozen.copy()
        if kind == FaultType.FIXED:
            if self._fixed is None:
                raise RuntimeError("FIXED applied before on_activation")
            return self._fixed.copy()
        if kind == FaultType.RANDOM:
            return self._rng.uniform(-r, r, size=3)
        if kind == FaultType.MIN:
            return np.full(3, -r)
        if kind == FaultType.MAX:
            return np.full(3, r)
        if kind == FaultType.NOISE:
            noisy = (
                clean_value
                + self._noise_bias
                + self._rng.normal(0.0, self.noise_fraction * r, size=3)
            )
            return np.clip(noisy, -r, r)
        raise ValueError(f"unhandled fault type: {kind}")


@dataclass(frozen=True)
class FaultModelEntry:
    """One row of the paper's Table I: a real-world fault class."""

    name: str
    description: str
    represented_by: tuple[FaultType, ...]
    references: str


#: The paper's Table I, mapping surveyed fault classes to behaviours.
FAULT_MODEL_CATALOG: tuple[FaultModelEntry, ...] = (
    FaultModelEntry(
        "Instability",
        "Random values due to factors like radiation or temperature",
        (FaultType.RANDOM,),
        "[10], [19]-[22]",
    ),
    FaultModelEntry(
        "Bias error",
        "Noise from old sensors or temperature",
        (FaultType.NOISE,),
        "[19], [22]-[24]",
    ),
    FaultModelEntry(
        "Gyro drift",
        "Constant measurement error from aging, noise, or thermal bias",
        (FaultType.NOISE,),
        "[19], [20], [25], [26]",
    ),
    FaultModelEntry(
        "Acc drift",
        "Constant measurement error from aging, noise, or thermal bias",
        (FaultType.NOISE,),
        "[19], [20], [27], [28]",
    ),
    FaultModelEntry(
        "Constant output",
        "Update lag delivering the same frozen values",
        (FaultType.FREEZE,),
        "[19]",
    ),
    FaultModelEntry(
        "Damaged IMU",
        "IMU damaged by age or external factors; all sensors fail",
        (FaultType.ZEROS,),
        "[29], [30]",
    ),
    FaultModelEntry(
        "Gyro failure",
        "Gyro sensor damaged or failed",
        (FaultType.ZEROS,),
        "[30]-[33]",
    ),
    FaultModelEntry(
        "Acc failure",
        "Accelerometer sensor damaged or failed",
        (FaultType.ZEROS,),
        "[30], [31], [34]",
    ),
    FaultModelEntry(
        "Acoustic attack",
        "Broadband pulsed or CW acoustic energy on MEMS sensors",
        (FaultType.RANDOM,),
        "[35], [36]",
    ),
    FaultModelEntry(
        "False data injection",
        "Fake series of data injected",
        (FaultType.FIXED,),
        "[37]-[39]",
    ),
    FaultModelEntry(
        "Physical isolation",
        "Sensors attacked to stop responding",
        (FaultType.ZEROS,),
        "[40]",
    ),
    FaultModelEntry(
        "Hardware trojan",
        "Electronic hardware modified (circuit tampering, gate resizing)",
        (FaultType.FIXED,),
        "[41]",
    ),
    FaultModelEntry(
        "Malicious software",
        "GCS or flight controller compromised",
        (FaultType.ZEROS, FaultType.RANDOM),
        "[35]",
    ),
    FaultModelEntry(
        "OS system attack",
        "Attacks through the flight controller's system software",
        (FaultType.MIN, FaultType.MAX, FaultType.FIXED),
        "[42]",
    ),
)


def behaviours_for_entry(entry: FaultModelEntry) -> tuple[FaultType, ...]:
    """The injectable behaviours that represent a Table I fault class."""
    return entry.represented_by
