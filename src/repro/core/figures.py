"""The paper's trajectory figures (Figs. 3-5) as runnable scenarios.

Each figure in the paper shows one mission's planned route versus the
flown trajectory under a specific 30 s injection:

* **Fig. 3** — Fixed (random constant) value into the accelerometer of
  the fastest drone (25 km/h), mid-leg: drone leaves the trajectory and
  crashes.
* **Fig. 4** — Random values into the gyrometer just before a waypoint
  of a turning mission: reaches the waypoint but cannot stabilise for
  the turn; failsafe engages.
* **Fig. 5** — Random values into the whole IMU before a waypoint:
  fast, forceful crash.

:func:`run_figure_scenario` executes the scenario and returns both the
planned route and the flown (true and estimated) trajectories;
:func:`render_ascii_trajectory` draws a terminal top-down plot.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.faults import FaultSpec, FaultTarget, FaultType
from repro.flightstack.commander import MissionOutcome
from repro.missions.plan import route_polyline
from repro.missions.valencia import valencia_missions
from repro.system import SystemConfig, UavSystem


@dataclass(frozen=True)
class FigureScenario:
    """Recipe for one paper figure."""

    name: str
    mission_id: int
    fault_type: FaultType
    target: FaultTarget
    duration_s: float
    description: str


#: Mission 10 is the 25 km/h drone; missions 3/7/10 have turning points.
FIGURE_3 = FigureScenario(
    name="fig3",
    mission_id=10,
    fault_type=FaultType.FIXED,
    target=FaultTarget.ACCEL,
    duration_s=30.0,
    description="Fixed value in Acc for 30 s on the fastest drone - crash",
)
FIGURE_4 = FigureScenario(
    name="fig4",
    mission_id=3,
    fault_type=FaultType.RANDOM,
    target=FaultTarget.GYRO,
    duration_s=30.0,
    description="Random values in Gyro for 30 s before a waypoint - failsafe",
)
FIGURE_5 = FigureScenario(
    name="fig5",
    mission_id=7,
    fault_type=FaultType.RANDOM,
    target=FaultTarget.IMU,
    duration_s=30.0,
    description="Random values in IMU for 30 s - fast forceful crash",
)


@dataclass
class FigureResult:
    """Data series behind one trajectory figure."""

    scenario: FigureScenario
    outcome: MissionOutcome
    route_ned: np.ndarray
    flown_true_ned: np.ndarray
    flown_est_ned: np.ndarray
    times_s: np.ndarray
    injection_start_s: float
    injection_end_s: float
    flight_duration_s: float


def run_figure_scenario(
    scenario: FigureScenario,
    scale: float = 1.0,
    injection_time_s: float | None = None,
    seed: int = 0,
) -> FigureResult:
    """Execute a figure scenario and collect its trajectory data."""
    plans = {p.mission_id: p for p in valencia_missions(scale=scale)}
    plan = plans[scenario.mission_id]
    if injection_time_s is None:
        injection_time_s = max(20.0, 90.0 * scale)
    fault = FaultSpec(
        fault_type=scenario.fault_type,
        target=scenario.target,
        start_time_s=injection_time_s,
        duration_s=scenario.duration_s,
        seed=seed,
    )
    system = UavSystem(plan, config=SystemConfig(seed=seed), fault=fault)
    result = system.run()
    route = np.vstack(route_polyline(plan))
    return FigureResult(
        scenario=scenario,
        outcome=result.outcome,
        route_ned=route,
        flown_true_ned=system.recorder.positions_true(),
        flown_est_ned=system.recorder.positions_estimated(),
        times_s=system.recorder.times(),
        injection_start_s=fault.start_time_s,
        injection_end_s=fault.end_time_s,
        flight_duration_s=result.flight_duration_s,
    )


def render_ascii_trajectory(result: FigureResult, width: int = 72, height: int = 24) -> str:
    """Top-down (north-east) ASCII plot: route ``.``, flown ``*``,
    injection window ``#``, end point ``X``."""
    route = result.route_ned
    flown = result.flown_true_ned
    if flown.shape[0] == 0:
        return "(no trajectory recorded)"
    all_pts = np.vstack([route[:, :2], flown[:, :2]])
    lo = all_pts.min(axis=0)
    hi = all_pts.max(axis=0)
    span = np.maximum(hi - lo, 1e-6)

    grid = [[" "] * width for _ in range(height)]

    def plot(north: float, east: float, char: str) -> None:
        col = int((east - lo[1]) / span[1] * (width - 1))
        row = int((1.0 - (north - lo[0]) / span[0]) * (height - 1))
        grid[row][col] = char

    for i in range(len(route) - 1):
        for t in np.linspace(0.0, 1.0, 40):
            p = route[i] * (1 - t) + route[i + 1] * t
            plot(p[0], p[1], ".")
    in_window = (result.times_s >= result.injection_start_s) & (
        result.times_s <= result.injection_end_s
    )
    for point, faulted in zip(flown, in_window):
        plot(point[0], point[1], "#" if faulted else "*")
    plot(flown[-1][0], flown[-1][1], "X")

    legend = (
        f"{result.scenario.description}\n"
        f"outcome: {result.outcome.value}, duration {result.flight_duration_s:.1f} s  "
        f"(route '.', flown '*', injected '#', end 'X')"
    )
    return "\n".join("".join(row) for row in grid) + "\n" + legend
