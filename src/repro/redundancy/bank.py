"""A bank of redundant IMUs with per-member fault injection.

The paper's vehicle carries a single IMU (its campaigns corrupt the
stream *after* the driver, so redundancy could never help — see
DESIGN.md section 10). The bank generalises that: N `Imu` instances
with independent noise/bias seeds, each behind its own
:class:`~repro.core.injector.SensorFaultInjector` so a
:class:`~repro.core.faults.FaultScope` can corrupt any subset of
members. A bank of one member with the default ALL scope is
bit-identical to the pre-redundancy single-IMU pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.faults import FaultSpec
from repro.core.injector import SensorFaultInjector
from repro.redundancy.voter import VoterParams
from repro.sensors.imu import Imu, ImuParams, ImuSample

#: Seed stride between bank members. Member 0 keeps the base seed
#: exactly (baseline bit-identity); a large prime stride keeps the
#: other members' streams far from every seed the campaign derives
#: (mission seeds advance by 1009, sensor seeds by 1).
MEMBER_SEED_STRIDE = 100_003


@dataclass(frozen=True)
class RedundancyConfig:
    """Vehicle-level redundancy settings.

    Disabled by default: the stock vehicle is the paper's single-IMU
    platform and produces bit-identical results to the pre-redundancy
    code. Enabling it instantiates ``num_members`` IMUs plus the voter
    and switchover machinery.
    """

    enabled: bool = False
    num_members: int = 3
    voter: VoterParams = field(default_factory=VoterParams)

    def __post_init__(self) -> None:
        if self.num_members < 1:
            raise ValueError("num_members must be >= 1")
        if self.enabled and self.num_members < 2:
            raise ValueError("redundancy needs at least 2 bank members")


class ImuBank:
    """``num_members`` independently seeded IMUs, each with its own injector."""

    def __init__(
        self,
        fault: FaultSpec | None,
        num_members: int,
        base_seed: int,
        params: ImuParams | None = None,
    ) -> None:
        if num_members < 1:
            raise ValueError("num_members must be >= 1")
        self.num_members = num_members
        self.members: list[Imu] = [
            Imu(params, seed=base_seed + k * MEMBER_SEED_STRIDE)
            for k in range(num_members)
        ]
        self.injectors: list[SensorFaultInjector] = [
            SensorFaultInjector(
                fault, imu.accel_range, imu.gyro_range, member_index=k
            )
            for k, imu in enumerate(self.members)
        ]

    @property
    def accel_range(self) -> float:
        return self.members[0].accel_range

    @property
    def gyro_range(self) -> float:
        return self.members[0].gyro_range

    def sample(
        self,
        time_s: float,
        specific_force_body: np.ndarray,
        angular_rate_body: np.ndarray,
        dt: float,
    ) -> list[ImuSample]:
        """One measurement per member, each through its own injector."""
        return [
            injector.apply(
                imu.sample(time_s, specific_force_body, angular_rate_body, dt)
            )
            for imu, injector in zip(self.members, self.injectors)
        ]

    def corrupted_members(self, time_s: float) -> tuple[int, ...]:
        """Indices whose stream is corrupted at ``time_s`` (ground truth,
        for tests and analysis — the flight stack never sees this)."""
        return tuple(
            k
            for k, injector in enumerate(self.injectors)
            if injector.corrupts(time_s)
        )
