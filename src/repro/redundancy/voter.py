"""Cross-sensor voting over a redundant IMU bank.

The voter compares every bank member against the member-wise median of
the bank (the classic mid-value select used by flight-control voters:
with one corrupted member out of three, the median is always formed
from healthy samples). A member whose residual against the median
exceeds the configured thresholds for a debounce interval is declared
*unhealthy*; it recovers only after staying inside the envelope for a
longer re-admission interval, so a fault oscillating around the
threshold cannot flap the primary selection.

With two members the median degenerates to the mean and the voter can
detect disagreement but not attribute it; three or more members give
full fault isolation — which is why
:class:`~repro.redundancy.bank.RedundancyConfig` defaults to three.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sensors.imu import ImuSample


@dataclass(frozen=True)
class VoterParams:
    """Mismatch thresholds and debounce times of the cross-sensor voter.

    Attributes:
        accel_threshold_m_s2: residual against the bank median above
            which an accelerometer triad counts as mismatched. The
            default clears normal sensor noise (sigma ~0.05 m/s^2) by a
            wide margin while catching every Table I behaviour.
        gyro_threshold_rad_s: same for the gyroscope triad.
        mismatch_debounce_s: how long a member must stay mismatched
            before it is declared unhealthy.
        readmit_debounce_s: how long a flagged member must stay clean
            before it counts as healthy again (longer than the mismatch
            debounce, so selection cannot flap).
    """

    accel_threshold_m_s2: float = 3.0
    gyro_threshold_rad_s: float = 0.3
    mismatch_debounce_s: float = 0.15
    readmit_debounce_s: float = 0.5

    def __post_init__(self) -> None:
        if self.accel_threshold_m_s2 <= 0.0 or self.gyro_threshold_rad_s <= 0.0:
            raise ValueError("voter thresholds must be positive")
        if self.mismatch_debounce_s < 0.0 or self.readmit_debounce_s < 0.0:
            raise ValueError("debounce times must be non-negative")


@dataclass(frozen=True)
class VoteReport:
    """One voting cycle: residuals and health verdicts per member.

    ``residuals`` are normalised (1.0 = exactly at threshold; the
    accel and gyro residuals are combined by the worse of the two), so
    callers can rank members without caring which triad disagreed.
    """

    time_s: float
    residuals: tuple[float, ...]
    mismatched: tuple[bool, ...]
    unhealthy: tuple[bool, ...]
    median_accel: np.ndarray = field(repr=False, default=None)  # type: ignore[assignment]
    median_gyro: np.ndarray = field(repr=False, default=None)  # type: ignore[assignment]

    @property
    def healthy_members(self) -> tuple[int, ...]:
        """Indices of members currently passing the vote."""
        return tuple(i for i, bad in enumerate(self.unhealthy) if not bad)

    def preferred_member(self, exclude: frozenset[int] | set[int] = frozenset()) -> int | None:
        """Best healthy member outside ``exclude`` (lowest residual,
        ties broken toward the lowest index), or ``None`` if no healthy
        candidate remains."""
        candidates = [i for i in self.healthy_members if i not in exclude]
        if not candidates:
            return None
        return min(candidates, key=lambda i: (self.residuals[i], i))


class Voter:
    """Debounced median voter over ``num_members`` IMU streams."""

    def __init__(self, params: VoterParams | None = None, num_members: int = 3) -> None:
        if num_members < 1:
            raise ValueError("num_members must be >= 1")
        self.params = params or VoterParams()
        self.num_members = num_members
        self._mismatch_time_s = [0.0] * num_members
        self._clean_time_s = [0.0] * num_members
        self._unhealthy = [False] * num_members

    def update(self, samples: list[ImuSample], dt: float) -> VoteReport:
        """Advance the vote by one cycle of bank samples."""
        if len(samples) != self.num_members:
            raise ValueError(
                f"expected {self.num_members} samples, got {len(samples)}"
            )
        if dt <= 0.0:
            raise ValueError("dt must be positive")
        p = self.params
        accels = np.stack([s.accel for s in samples])
        gyros = np.stack([s.gyro for s in samples])
        median_accel = np.median(accels, axis=0)
        median_gyro = np.median(gyros, axis=0)

        residuals: list[float] = []
        mismatched: list[bool] = []
        for i in range(self.num_members):
            accel_res = float(np.linalg.norm(accels[i] - median_accel))
            gyro_res = float(np.linalg.norm(gyros[i] - median_gyro))
            residual = max(
                accel_res / p.accel_threshold_m_s2,
                gyro_res / p.gyro_threshold_rad_s,
            )
            residuals.append(residual)
            mismatched.append(residual > 1.0)

        for i, bad_now in enumerate(mismatched):
            if bad_now:
                self._mismatch_time_s[i] += dt
                self._clean_time_s[i] = 0.0
                if self._mismatch_time_s[i] >= p.mismatch_debounce_s:
                    self._unhealthy[i] = True
            else:
                self._clean_time_s[i] += dt
                self._mismatch_time_s[i] = 0.0
                if self._unhealthy[i] and self._clean_time_s[i] >= p.readmit_debounce_s:
                    self._unhealthy[i] = False

        return VoteReport(
            time_s=samples[0].time_s,
            residuals=tuple(residuals),
            mismatched=tuple(mismatched),
            unhealthy=tuple(self._unhealthy),
            median_accel=median_accel,
            median_gyro=median_gyro,
        )
