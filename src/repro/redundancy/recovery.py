"""Primary selection, switchover, and degraded-mode fallback.

The :class:`RedundancyManager` owns which bank member feeds the flight
stack. It runs the voter every tick, but only *acts* while the failsafe
is in its ISOLATING stage — mirroring PX4, where redundant-sensor
isolation is a stage of failsafe handling rather than a continuous
background swap. When the current primary is voted unhealthy during
isolation, the manager retires it, promotes the best healthy member,
and reports the switch so the vehicle can reseed the EKF and restart
the isolation window. When no healthy member remains, it enters the
DEGRADED fallback: the stack flies on the bank's member-wise median
(the best estimate a mid-value voter can produce from corrupted
streams) and the EKF leans on complementary gravity-tilt aiding for
attitude, which is the paper's all-sensors-faulty outcome.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.obs.trace import NULL_SINK, EventSink
from repro.redundancy.voter import Voter, VoteReport, VoterParams
from repro.sensors.imu import ImuSample


class RecoveryState(enum.Enum):
    """Where the redundancy machinery currently is."""

    NOMINAL = "nominal"
    SWITCHED = "switched"
    DEGRADED = "degraded"


#: Human-readable dispatch over the recovery states (kept total — the
#: reprolint FM001 exhaustiveness rule checks this table).
RECOVERY_STATE_DESCRIPTIONS: dict[RecoveryState, str] = {
    RecoveryState.NOMINAL: "flying on the original primary IMU",
    RecoveryState.SWITCHED: "flying on a redundant member after switchover",
    RecoveryState.DEGRADED: "no healthy member; median + complementary attitude fallback",
}


@dataclass(frozen=True)
class SwitchEvent:
    """One primary switchover, for logs and results."""

    time_s: float
    from_member: int
    to_member: int


@dataclass(frozen=True, slots=True)
class Selection:
    """What the manager decided this tick.

    ``switched`` / ``exhausted`` are edge-triggered: true only on the
    tick the event happened, so the vehicle performs EKF reseeding and
    failsafe reporting exactly once per event.
    """

    sample: ImuSample
    state: RecoveryState
    switched: bool = False
    exhausted: bool = False
    report: VoteReport | None = None


class RedundancyManager:
    """Selects the flight stack's IMU stream from the bank."""

    def __init__(self, params: VoterParams | None, num_members: int, enabled: bool) -> None:
        self.enabled = enabled and num_members >= 2
        self.num_members = num_members
        #: Trace sink for switchover events; a no-op without an observer.
        self.obs: EventSink = NULL_SINK
        self.voter = Voter(params, num_members)
        self.primary = 0
        self.state = RecoveryState.NOMINAL
        self.failed_members: set[int] = set()
        self.events: list[SwitchEvent] = []
        self.last_report: VoteReport | None = None

    @property
    def degraded(self) -> bool:
        """True while flying the no-healthy-member fallback."""
        return self.state is RecoveryState.DEGRADED

    def describe(self) -> str:
        return RECOVERY_STATE_DESCRIPTIONS[self.state]

    def select(
        self,
        time_s: float,
        samples: list[ImuSample],
        dt: float,
        isolating: bool,
    ) -> Selection:
        """Pick the sample to feed the stack this tick.

        ``isolating`` is whether the failsafe is currently in its
        ISOLATING stage; switchover and degradation only happen there.
        """
        if not self.enabled:
            return Selection(sample=samples[self.primary], state=self.state)

        report = self.voter.update(samples, dt)
        self.last_report = report
        switched = False
        exhausted = False

        if isolating and (
            report.unhealthy[self.primary] or self.primary in self.failed_members
        ):
            target = report.preferred_member(
                exclude=self.failed_members | {self.primary}
            )
            if target is not None:
                self.failed_members.add(self.primary)
                self.events.append(SwitchEvent(time_s, self.primary, target))
                self.obs.emit(
                    "imu.switchover",
                    time_s,
                    from_member=self.primary,
                    to_member=target,
                )
                self.primary = target
                self.state = RecoveryState.SWITCHED
                switched = True
            elif self.state is not RecoveryState.DEGRADED:
                self.state = RecoveryState.DEGRADED
                exhausted = True
                self.obs.emit(
                    "imu.exhausted", time_s, failed=len(self.failed_members) + 1
                )
        elif self.degraded and not report.unhealthy[self.primary]:
            # The fault window ended and the primary's stream is clean
            # again (e.g. a transient ALL-scope fault): leave fallback.
            self.state = (
                RecoveryState.SWITCHED if self.events else RecoveryState.NOMINAL
            )
            self.obs.emit("imu.degraded_exit", time_s, state=self.state.value)

        sample = samples[self.primary]
        if self.degraded:
            # Best effort when every member is corrupted: fly the bank
            # median. For an ALL-scope fault this is still faulty data
            # (the paper's outcome); for disjoint per-member faults it
            # rejects the outliers.
            sample = ImuSample(
                time_s=sample.time_s,
                accel=report.median_accel.copy(),
                gyro=report.median_gyro.copy(),
            )
        return Selection(
            sample=sample,
            state=self.state,
            switched=switched,
            exhausted=exhausted,
            report=report,
        )
