"""Redundant IMU bank, cross-sensor voting, and recovery.

This package makes the failsafe's "try redundant sensors" isolation
stage real: an :class:`ImuBank` of independently seeded sensors, a
median/residual :class:`Voter` with debounced mismatch detection, and
a :class:`RedundancyManager` that switches the primary (or degrades to
a median/complementary fallback) while the failsafe is isolating.
Disabled by default — the stock vehicle stays the paper's single-IMU
platform, bit-identical to the pre-redundancy pipeline.
"""

from repro.redundancy.bank import MEMBER_SEED_STRIDE, ImuBank, RedundancyConfig
from repro.redundancy.recovery import (
    RECOVERY_STATE_DESCRIPTIONS,
    RecoveryState,
    RedundancyManager,
    Selection,
    SwitchEvent,
)
from repro.redundancy.voter import Voter, VoteReport, VoterParams

__all__ = [
    "MEMBER_SEED_STRIDE",
    "ImuBank",
    "RedundancyConfig",
    "RECOVERY_STATE_DESCRIPTIONS",
    "RecoveryState",
    "RedundancyManager",
    "Selection",
    "SwitchEvent",
    "Voter",
    "VoteReport",
    "VoterParams",
]
