"""Failure detection and failsafe sequencing.

Reproduces the PX4 behaviour the paper reports in Section IV-C:

* a gyro-rate failure-detection threshold (default 60 deg/s, the value
  the paper quotes as PX4's default, configurable);
* attitude failure detection on the estimated tilt;
* EKF aiding health (sustained innovation rejections), which is how
  accelerometer corruption becomes visible — PX4 defines no direct
  accelerometer threshold, as the paper notes;
* an isolation stage: the stack first deactivates the primary sensor
  and tries redundant ones. In the paper's campaigns the fault affects
  all redundant sensors, so isolation cannot succeed and the failsafe
  proper engages after a minimum of 1900 ms.

The engine is a small state machine: ``NOMINAL -> ISOLATING ->
ENGAGED``, returning to ``NOMINAL`` only if the triggering condition
clears completely during isolation (short injections sometimes recover
this way, matching the paper's high crash share at 2 s durations).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.estimation.health import EstimatorHealth
from repro.flightstack.params import FlightParams
from repro.obs.trace import NULL_SINK, EventSink


class FailsafeState(enum.Enum):
    """Failsafe engine states."""

    NOMINAL = "nominal"
    ISOLATING = "isolating"
    ENGAGED = "engaged"


class FailsafeTrigger(enum.Enum):
    """What tripped failure detection first."""

    NONE = "none"
    GYRO_RATE = "gyro_rate"
    ATTITUDE = "attitude"
    EKF_HEALTH = "ekf_health"


class IsolationOutcome(enum.Enum):
    """What the redundant-sensor isolation stage actually did.

    Until this PR isolation was a pure timer (the paper's campaigns
    corrupt every redundant sensor, so it could never succeed); with a
    redundant IMU bank the vehicle now reports what happened.
    """

    NOT_ATTEMPTED = "not_attempted"
    SWITCHED = "switched"
    EXHAUSTED = "exhausted"


@dataclass(slots=True)
class FailsafeStatus:
    """Snapshot of the engine for logging and outcome classification."""

    state: FailsafeState
    trigger: FailsafeTrigger
    engaged_time_s: float | None
    isolation_outcome: IsolationOutcome = IsolationOutcome.NOT_ATTEMPTED
    isolation_succeeded: bool | None = None


class FailsafeEngine:
    """Monitors sensor/estimator health and engages the failsafe."""

    def __init__(self, params: FlightParams):
        self.params = params
        #: Trace sink for state transitions; a no-op without an observer.
        self.obs: EventSink = NULL_SINK
        self.state = FailsafeState.NOMINAL
        self.trigger = FailsafeTrigger.NONE
        self.engaged_time_s: float | None = None
        #: What redundancy did during the latest isolation episode.
        self.isolation_outcome = IsolationOutcome.NOT_ATTEMPTED
        #: ``None`` until an isolation episode resolves; then True when
        #: it returned the vehicle to NOMINAL, False when it ENGAGED.
        self.isolation_succeeded: bool | None = None
        self._condition_active_since: float | None = None
        self._isolation_started_at: float | None = None
        self._condition_clear_since: float | None = None

    @property
    def engaged(self) -> bool:
        """True once the failsafe action (emergency land) is active."""
        return self.state == FailsafeState.ENGAGED

    def status(self) -> FailsafeStatus:
        return FailsafeStatus(
            self.state,
            self.trigger,
            self.engaged_time_s,
            self.isolation_outcome,
            self.isolation_succeeded,
        )

    def report_isolation(self, time_s: float, outcome: IsolationOutcome) -> None:
        """Record what the redundancy manager did while ISOLATING.

        A successful switchover restarts the isolation window: the
        debounced condition was measured against the retired sensor,
        and the new primary deserves the full isolation budget to prove
        itself before the failsafe proper may engage. Reports outside
        the ISOLATING stage are ignored (no switchover can happen
        outside it).
        """
        if self.state != FailsafeState.ISOLATING:
            return
        if outcome is not self.isolation_outcome:
            self.obs.emit("failsafe.isolation_report", time_s, outcome=outcome.value)
        self.isolation_outcome = outcome
        if outcome is IsolationOutcome.SWITCHED:
            self._isolation_started_at = time_s

    def update(
        self,
        time_s: float,
        gyro_rate_rad_s: np.ndarray,
        estimated_tilt_rad: float,
        estimator_health: EstimatorHealth,
        in_flight: bool,
    ) -> None:
        """Advance the failure-detection state machine one cycle."""
        if self.state == FailsafeState.ENGAGED or not in_flight:
            return

        trigger = self._detect(gyro_rate_rad_s, estimated_tilt_rad, estimator_health)

        if self.state == FailsafeState.NOMINAL:
            if trigger != FailsafeTrigger.NONE:
                if self._condition_active_since is None:
                    self._condition_active_since = time_s
                    self.trigger = trigger
                elif time_s - self._condition_active_since >= self.params.fd_trigger_time_s:
                    # Debounced: start the redundant-sensor isolation stage.
                    self.state = FailsafeState.ISOLATING
                    self._isolation_started_at = time_s
                    self._condition_clear_since = None
                    self.isolation_outcome = IsolationOutcome.NOT_ATTEMPTED
                    self.isolation_succeeded = None
                    self.obs.emit(
                        "failsafe.isolating", time_s, trigger=self.trigger.value
                    )
            else:
                self._condition_active_since = None
                self.trigger = FailsafeTrigger.NONE
            return

        # ISOLATING: waiting out the redundancy attempt.
        if trigger == FailsafeTrigger.NONE:
            if self._condition_clear_since is None:
                self._condition_clear_since = time_s
            elif time_s - self._condition_clear_since > 1.0:
                # The condition cleared and stayed clear: isolation
                # succeeded (switchover worked, or the fault ended on
                # its own); back to nominal flight.
                self.state = FailsafeState.NOMINAL
                self.trigger = FailsafeTrigger.NONE
                self.isolation_succeeded = True
                self._condition_active_since = None
                self._isolation_started_at = None
                self.obs.emit(
                    "failsafe.recovered",
                    time_s,
                    isolation=self.isolation_outcome.value,
                )
                return
        else:
            self._condition_clear_since = None

        assert self._isolation_started_at is not None
        elapsed = time_s - self._isolation_started_at
        if elapsed >= self.params.fs_isolation_time_s and trigger != FailsafeTrigger.NONE:
            self.state = FailsafeState.ENGAGED
            self.engaged_time_s = time_s
            self.isolation_succeeded = False
            self.obs.emit(
                "failsafe.engaged",
                time_s,
                trigger=self.trigger.value,
                isolation=self.isolation_outcome.value,
            )

    def _detect(
        self,
        gyro_rate_rad_s: np.ndarray,
        estimated_tilt_rad: float,
        estimator_health: EstimatorHealth,
    ) -> FailsafeTrigger:
        """Evaluate the instantaneous failure-detection conditions."""
        p = self.params
        rate_norm = math.sqrt(float(gyro_rate_rad_s @ gyro_rate_rad_s))
        if rate_norm > p.fd_gyro_rate_threshold_rad_s:
            return FailsafeTrigger.GYRO_RATE
        if estimated_tilt_rad > p.fd_tilt_threshold_rad:
            return FailsafeTrigger.ATTITUDE
        if estimator_health.degraded:
            return FailsafeTrigger.EKF_HEALTH
        return FailsafeTrigger.NONE
