"""Vehicle management — the PX4 commander/navigator/failsafe substitute.

This layer decides *what* the vehicle should be doing (taking off,
flying the mission, landing, executing a failsafe) while
:mod:`repro.control` decides *how*. The failsafe engine reproduces the
PX4 behaviour the paper measures: sensor-fault detection thresholds
(60 deg/s gyro default), a redundant-sensor isolation attempt taking a
minimum of 1900 ms, and an emergency-land failsafe action.
"""

from repro.flightstack.params import FlightParams
from repro.flightstack.commander import Commander, FlightPhase, MissionOutcome
from repro.flightstack.navigator import Navigator, NavigatorOutput
from repro.flightstack.failsafe import (
    FailsafeEngine,
    FailsafeState,
    FailsafeTrigger,
    IsolationOutcome,
)
from repro.flightstack.crash import CrashDetector

__all__ = [
    "FlightParams",
    "Commander",
    "FlightPhase",
    "MissionOutcome",
    "Navigator",
    "NavigatorOutput",
    "FailsafeEngine",
    "FailsafeState",
    "FailsafeTrigger",
    "IsolationOutcome",
    "CrashDetector",
]
