"""Waypoint navigation: carrot-on-a-string guidance along the mission."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.missions.plan import MissionPlan


@dataclass(slots=True)
class NavigatorOutput:
    """Guidance produced each cycle for the position controller."""

    position_sp_ned: np.ndarray
    velocity_ff_ned: np.ndarray
    yaw_sp_rad: float
    cruise_speed_m_s: float


class Navigator:
    """Sequences mission waypoints and produces tracking setpoints.

    Guidance is a carrot point: the vehicle's estimated position is
    projected onto the active leg and the setpoint is placed a lookahead
    distance further along it, with a velocity feedforward along the
    track. This keeps cross-track error small enough that gold runs
    never leave the inner bubble, which the paper's baseline requires.
    """

    def __init__(self, plan: MissionPlan, lookahead_s: float = 1.2):
        self.plan = plan
        self.lookahead_s = lookahead_s
        self._index = 0  # active target waypoint
        first = plan.waypoints[0].array
        second = plan.waypoints[1].array
        self._yaw_sp = math.atan2(second[1] - first[1], second[0] - first[0])
        self._done = False
        # Remaining route length after each waypoint, precomputed with
        # the same per-index forward summation as `_distance_after` (the
        # sums are independent per index, so values are bit-identical —
        # a shared suffix-sum would reassociate the adds and drift).
        self._dist_after = [self._distance_after(i) for i in range(len(plan.waypoints))]
        # Hot-loop work buffers; `update` returns buffers or cached
        # waypoint arrays without copying — treat outputs as read-only.
        self._zero3 = np.zeros(3)
        self._prev0 = np.zeros(3)
        self._leg = np.zeros(3)
        self._tt = np.zeros(3)
        self._rel = np.zeros(3)
        self._dir = np.zeros(3)
        self._carrot = np.zeros(3)
        self._ff = np.zeros(3)

    @property
    def active_index(self) -> int:
        """Index of the waypoint currently being flown to."""
        return self._index

    @property
    def mission_done(self) -> bool:
        """True once the final waypoint has been reached."""
        return self._done

    def reset(self) -> None:
        """Restart the mission from the first waypoint."""
        self._index = 0
        self._done = False

    def update(self, position_ned: np.ndarray) -> NavigatorOutput:
        """Advance sequencing and return guidance for this cycle."""
        waypoints = self.plan.waypoints
        speed = self.plan.drone.cruise_speed_m_s

        if self._done:
            target = waypoints[-1].array
            return NavigatorOutput(target, self._zero3, self._yaw_sp, speed)

        target_wp = waypoints[self._index]
        target = target_wp.array
        if self._index > 0:
            prev = waypoints[self._index - 1].array
        else:
            # First leg starts wherever the vehicle is (top of climb).
            np.copyto(self._prev0, position_ned)
            prev = self._prev0

        leg = self._leg
        np.subtract(target, prev, out=leg)
        # math.sqrt(float(v @ v)) == np.linalg.norm(v) bit-for-bit (same
        # BLAS dot), minus the linalg wrapper cost.
        leg_len = math.sqrt(float(leg @ leg))
        np.subtract(target, position_ned, out=self._tt)
        dist_to_target = math.sqrt(float(self._tt @ self._tt))

        # Waypoint acceptance: close enough, or overshot the leg end.
        if leg_len > 1e-6:
            np.subtract(position_ned, target, out=self._rel)
            overshot = float(self._rel @ leg) > 0.0
        else:
            overshot = False
        if dist_to_target <= target_wp.acceptance_radius_m or overshot:
            if self._index + 1 < len(waypoints):
                self._index += 1
                target_wp = waypoints[self._index]
                prev = waypoints[self._index - 1].array
                target = target_wp.array
                np.subtract(target, prev, out=leg)
                leg_len = math.sqrt(float(leg @ leg))
            else:
                self._done = True
                return NavigatorOutput(target, self._zero3, self._yaw_sp, speed)

        if leg_len < 1e-6:
            carrot = target
            direction = self._zero3
        else:
            direction = self._dir
            np.divide(leg, leg_len, out=direction)
            np.subtract(position_ned, prev, out=self._rel)
            along = float(self._rel @ direction)
            lookahead = max(2.0, speed * self.lookahead_s)
            carrot_dist = min(leg_len, along + lookahead)
            carrot = self._carrot
            np.multiply(direction, max(0.0, carrot_dist), out=carrot)
            carrot += prev

        # Yaw follows the track only when the leg is meaningfully
        # horizontal; on (near-)vertical legs the horizontal component is
        # sensor noise and would command random yaw slews.
        horizontal_sq = direction[0] ** 2 + direction[1] ** 2
        if leg_len > 1e-6 and horizontal_sq > 0.25:
            self._yaw_sp = math.atan2(direction[1], direction[0])

        # Decelerate on final approach so the landing transition does not
        # demand a violent braking manoeuvre.
        np.subtract(target, position_ned, out=self._tt)
        remaining = math.sqrt(float(self._tt @ self._tt)) + self._dist_after[self._index]
        speed = min(speed, max(1.0, 0.6 * remaining))
        velocity_ff = self._ff
        np.multiply(direction, speed, out=velocity_ff)
        return NavigatorOutput(carrot, velocity_ff, self._yaw_sp, speed)

    def _distance_after(self, index: int) -> float:
        """Route length remaining after waypoint ``index``."""
        total = 0.0
        pts = self.plan.waypoints
        for a, b in zip(pts[index:], pts[index + 1 :]):
            total += float(np.linalg.norm(b.array - a.array))
        return total
