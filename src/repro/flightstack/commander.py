"""The commander: flight phases, mission supervision, outcome verdicts."""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.flightstack.navigator import Navigator
from repro.flightstack.params import FlightParams
from repro.missions.plan import MissionPlan
from repro.obs.trace import NULL_SINK, EventSink


class FlightPhase(enum.Enum):
    """Commander flight phases (PX4 nav-state analogue)."""

    PREFLIGHT = "preflight"
    TAKEOFF = "takeoff"
    MISSION = "mission"
    LANDING = "landing"
    LANDED = "landed"
    FAILSAFE_LAND = "failsafe_land"
    CRASHED = "crashed"


class MissionOutcome(enum.Enum):
    """Terminal mission verdict, the paper's outcome classification.

    ``COMPLETED`` means neither crashed nor failsafe-enabled (Sec.
    III-D.3). ``FAILSAFE`` covers any run in which the failsafe engaged,
    even if the emergency landing then succeeded. ``TIMEOUT`` marks runs
    that never terminated (vehicle lost without impact); the failure
    analysis counts these with failsafe activations.
    """

    COMPLETED = "completed"
    CRASHED = "crashed"
    FAILSAFE = "failsafe"
    TIMEOUT = "timeout"


@dataclass(slots=True)
class CommanderOutput:
    """Setpoints handed to the position controller this cycle."""

    position_sp_ned: np.ndarray
    velocity_ff_ned: np.ndarray
    yaw_sp_rad: float
    cruise_speed_m_s: float
    thrust_idle: bool = False


class Commander:
    """Supervises one mission from arming to a terminal verdict."""

    def __init__(self, plan: MissionPlan, params: FlightParams | None = None):
        self.plan = plan
        self.params = params or FlightParams()
        self.navigator = Navigator(plan)
        #: Trace sink for phase spans; a no-op unless an observer is on.
        self.obs: EventSink = NULL_SINK
        self.phase = FlightPhase.PREFLIGHT
        self.outcome: MissionOutcome | None = None
        self.takeoff_time_s: float | None = None
        self.end_time_s: float | None = None
        self._ground_since: float | None = None
        self._failsafe_hold_xy: np.ndarray | None = None
        # Hold the pad heading (toward the first cruise leg) until the
        # navigator provides a track heading; commanding yaw 0 here would
        # slew the vehicle through a large yaw change during the climb.
        first = plan.waypoints[0].array
        second = plan.waypoints[1].array
        self._yaw_hold = math.atan2(second[1] - first[1], second[0] - first[0])
        self._timeout_s = max(
            self.params.mission_timeout_min_s,
            plan.estimated_duration_s() * self.params.mission_timeout_factor,
        )
        # Phase targets are mission constants; build them once instead of
        # reallocating every cycle. Outputs are shared read-only arrays.
        home = plan.home_ned
        self._takeoff_target = np.array([home[0], home[1], -plan.cruise_altitude_m])
        self._takeoff_ff = np.array([0.0, 0.0, -self.params.takeoff_speed_m_s])
        land = plan.landing_ned
        self._landing_target = np.array([land[0], land[1], 0.5])
        self._landing_ff = np.array([0.0, 0.0, self.params.landing_speed_m_s])
        self._failsafe_target: np.ndarray | None = None
        self._fs_ff = np.array([0.0, 0.0, self.params.fs_descent_speed_m_s])
        self._idle_pos = np.zeros(3)
        self._zero3 = np.zeros(3)
        self._handlers = {
            FlightPhase.PREFLIGHT: self._run_preflight,
            FlightPhase.TAKEOFF: self._run_takeoff,
            FlightPhase.MISSION: self._run_mission,
            FlightPhase.LANDING: self._run_landing,
            FlightPhase.FAILSAFE_LAND: self._run_failsafe_land,
            FlightPhase.LANDED: self._run_terminal,
            FlightPhase.CRASHED: self._run_terminal,
        }

    # ------------------------------------------------------------------

    @property
    def terminal(self) -> bool:
        """True once the mission has a verdict."""
        return self.outcome is not None

    @property
    def in_flight(self) -> bool:
        """True in the phases where failure detection is armed."""
        return self.phase in (FlightPhase.TAKEOFF, FlightPhase.MISSION, FlightPhase.LANDING)

    def arm_and_takeoff(self, time_s: float) -> None:
        """Arm the vehicle and begin the takeoff climb."""
        if self.phase != FlightPhase.PREFLIGHT:
            raise RuntimeError(f"cannot take off from phase {self.phase}")
        self.phase = FlightPhase.TAKEOFF
        self.takeoff_time_s = time_s
        self.obs.phase(time_s, FlightPhase.TAKEOFF.value)

    # ------------------------------------------------------------------

    def update(
        self,
        time_s: float,
        position_est_ned: np.ndarray,
        on_ground: bool,
        failsafe_engaged: bool,
        crashed: bool,
    ) -> CommanderOutput:
        """Advance the phase machine and emit setpoints.

        ``position_est_ned`` is the EKF estimate — the commander, like
        PX4, flies the estimate, not the truth. ``on_ground`` comes from
        the land detector; ``crashed`` from the crash detector.
        """
        if crashed and self.phase not in (FlightPhase.CRASHED, FlightPhase.LANDED):
            # A failsafe that was already executing keeps its verdict even
            # if the emergency landing ends in a hard impact (the paper
            # counts failsafe activation, not its landing quality).
            already_failsafe = self.phase == FlightPhase.FAILSAFE_LAND
            self.phase = FlightPhase.CRASHED
            self.outcome = (
                MissionOutcome.FAILSAFE if already_failsafe else MissionOutcome.CRASHED
            )
            self.end_time_s = time_s
            self.obs.phase(
                time_s, FlightPhase.CRASHED.value, outcome=self.outcome.value
            )

        if self.terminal:
            return self._idle_output(position_est_ned)

        if failsafe_engaged and self.phase in (
            FlightPhase.TAKEOFF,
            FlightPhase.MISSION,
            FlightPhase.LANDING,
        ):
            self.phase = FlightPhase.FAILSAFE_LAND
            self.obs.phase(time_s, FlightPhase.FAILSAFE_LAND.value)
            self._failsafe_hold_xy = position_est_ned[:2].copy()
            self._failsafe_target = np.array(
                [self._failsafe_hold_xy[0], self._failsafe_hold_xy[1], 0.5]
            )

        if time_s - (self.takeoff_time_s or 0.0) > self._timeout_s:
            self.outcome = MissionOutcome.TIMEOUT
            self.end_time_s = time_s
            self.obs.emit("mission.timeout", time_s, limit_s=self._timeout_s)
            return self._idle_output(position_est_ned)

        return self._handlers[self.phase](time_s, position_est_ned, on_ground)

    # ------------------------------------------------------------------
    # Phase handlers
    # ------------------------------------------------------------------

    def _run_preflight(
        self, time_s: float, position: np.ndarray, on_ground: bool
    ) -> CommanderOutput:
        return self._idle_output(position)

    def _run_takeoff(
        self, time_s: float, position: np.ndarray, on_ground: bool
    ) -> CommanderOutput:
        target = self._takeoff_target
        if abs(position[2] - target[2]) < self.params.takeoff_accept_m:
            self.phase = FlightPhase.MISSION
            self.obs.phase(time_s, FlightPhase.MISSION.value)
            return self._run_mission(time_s, position, on_ground)
        return CommanderOutput(target, self._takeoff_ff, self._yaw_hold, 2.0)

    def _run_mission(
        self, time_s: float, position: np.ndarray, on_ground: bool
    ) -> CommanderOutput:
        nav = self.navigator.update(position)
        self._yaw_hold = nav.yaw_sp_rad
        if self.navigator.mission_done:
            self.phase = FlightPhase.LANDING
            self.obs.phase(time_s, FlightPhase.LANDING.value)
            return self._run_landing(time_s, position, on_ground)
        return CommanderOutput(
            nav.position_sp_ned, nav.velocity_ff_ned, nav.yaw_sp_rad, nav.cruise_speed_m_s
        )

    def _run_landing(
        self, time_s: float, position: np.ndarray, on_ground: bool
    ) -> CommanderOutput:
        if self._ground_dwell(time_s, on_ground):
            self.phase = FlightPhase.LANDED
            self.outcome = MissionOutcome.COMPLETED
            self.end_time_s = time_s
            self.obs.phase(
                time_s, FlightPhase.LANDED.value, outcome=self.outcome.value
            )
            return self._idle_output(position)
        # Target sits slightly below ground to keep descending onto it.
        return CommanderOutput(self._landing_target, self._landing_ff, self._yaw_hold, 1.5)

    def _run_failsafe_land(
        self, time_s: float, position: np.ndarray, on_ground: bool
    ) -> CommanderOutput:
        assert self._failsafe_target is not None
        if self._ground_dwell(time_s, on_ground):
            self.phase = FlightPhase.LANDED
            self.outcome = MissionOutcome.FAILSAFE
            self.end_time_s = time_s
            self.obs.phase(
                time_s, FlightPhase.LANDED.value, outcome=self.outcome.value
            )
            return self._idle_output(position)
        return CommanderOutput(self._failsafe_target, self._fs_ff, self._yaw_hold, 2.0)

    def _run_terminal(
        self, time_s: float, position: np.ndarray, on_ground: bool
    ) -> CommanderOutput:
        """LANDED/CRASHED: hold position at idle thrust.

        Normally unreachable (``update`` returns early once a verdict is
        set), but the dispatch table stays total over FlightPhase so a
        future phase reordering cannot KeyError mid-flight.
        """
        return self._idle_output(position)

    # ------------------------------------------------------------------

    def _ground_dwell(self, time_s: float, on_ground: bool) -> bool:
        """True when the vehicle has stayed on the ground long enough."""
        if not on_ground:
            self._ground_since = None
            return False
        if self._ground_since is None:
            self._ground_since = time_s
        return time_s - self._ground_since >= self.params.disarm_ground_time_s

    def _idle_output(self, position: np.ndarray) -> CommanderOutput:
        np.copyto(self._idle_pos, position)
        return CommanderOutput(
            position_sp_ned=self._idle_pos,
            velocity_ff_ned=self._zero3,
            yaw_sp_rad=self._yaw_hold,
            cruise_speed_m_s=0.0,
            thrust_idle=True,
        )
