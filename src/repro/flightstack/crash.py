"""Crash detection from ground-truth contact events.

Classification (crash vs landing) is a property of how the vehicle met
the ground: impact speed, impact attitude, and whether the flight stack
was actually trying to land. The detector watches the physics engine's
contact records — it has ground truth, like the simulation operator
inspecting a Gazebo run in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sim.dynamics import GroundContact


@dataclass
class CrashReport:
    """Details of a detected crash."""

    time_s: float
    impact_speed_m_s: float
    tilt_deg: float
    reason: str


class CrashDetector:
    """Turns ground-contact events into crash verdicts."""

    def __init__(
        self,
        max_landing_speed_m_s: float = 2.2,
        max_landing_tilt_rad: float = math.radians(25.0),
        max_touch_speed_off_landing_m_s: float = 0.8,
    ):
        self.max_landing_speed_m_s = max_landing_speed_m_s
        self.max_landing_tilt_rad = max_landing_tilt_rad
        self.max_touch_speed_off_landing_m_s = max_touch_speed_off_landing_m_s
        self.report: CrashReport | None = None
        self._last_seen_contact_time: float | None = None

    @property
    def crashed(self) -> bool:
        """True once any contact has been classified as a crash."""
        return self.report is not None

    def assess_contact(self, contact: GroundContact | None, landing_expected: bool) -> None:
        """Evaluate a (possibly new) contact event.

        Args:
            contact: the physics engine's most recent contact record.
            landing_expected: True when the stack is in a deliberate
                descent (normal landing or failsafe land).
        """
        if contact is None or self.crashed:
            return
        if self._last_seen_contact_time == contact.time_s:
            return  # already assessed this event
        self._last_seen_contact_time = contact.time_s

        tilt_deg = math.degrees(contact.tilt_rad)
        impact = abs(contact.vertical_speed_m_s)
        total = contact.impact_speed_m_s

        if landing_expected:
            if impact > self.max_landing_speed_m_s:
                self._record(contact, tilt_deg, "hard landing impact")
            elif contact.tilt_rad > self.max_landing_tilt_rad:
                self._record(contact, tilt_deg, "tipped over on touchdown")
        else:
            if total > self.max_touch_speed_off_landing_m_s:
                self._record(contact, tilt_deg, "uncontrolled ground impact")
            elif contact.tilt_rad > self.max_landing_tilt_rad:
                self._record(contact, tilt_deg, "ground strike at extreme attitude")

    def _record(self, contact: GroundContact, tilt_deg: float, reason: str) -> None:
        self.report = CrashReport(
            time_s=contact.time_s,
            impact_speed_m_s=contact.impact_speed_m_s,
            tilt_deg=tilt_deg,
            reason=reason,
        )
