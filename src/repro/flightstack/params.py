"""Flight-stack parameters, in the spirit of the PX4 parameter system.

The paper keeps PX4's defaults ("we have maintained default settings for
simplicity"); the defaults here mirror the ones it cites: a 60 deg/s
gyro failure-detection threshold and a minimum 1900 ms sensor-isolation
time before the failsafe engages. Every field can be overridden per run,
and :meth:`FlightParams.get`/``set`` accept PX4-style parameter names
for script compatibility.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields


@dataclass
class FlightParams:
    """Tunable vehicle-management parameters (PX4-default-flavoured)."""

    # Takeoff / landing envelope.
    takeoff_speed_m_s: float = 2.0
    landing_speed_m_s: float = 1.0
    takeoff_accept_m: float = 0.6
    disarm_ground_time_s: float = 1.5

    # Failure detection (PX4 FD_* analogues).
    fd_gyro_rate_threshold_rad_s: float = math.radians(60.0)
    fd_tilt_threshold_rad: float = math.radians(70.0)
    fd_trigger_time_s: float = 0.50

    # Sensor isolation: the module first deactivates the primary sensor
    # and tries redundant ones; only after this (minimum 1900 ms in the
    # paper's observations) does the failsafe itself engage.
    fs_isolation_time_s: float = 1.9

    # Failsafe descent rate once engaged (emergency land).
    fs_descent_speed_m_s: float = 1.2

    # Mission supervision.
    mission_timeout_factor: float = 2.0
    mission_timeout_min_s: float = 120.0

    #: PX4-style aliases accepted by :meth:`get`/:meth:`set`.
    _ALIASES = {
        "FD_GYRO_RATE": "fd_gyro_rate_threshold_rad_s",
        "FD_FAIL_TILT": "fd_tilt_threshold_rad",
        "FD_TRIG_TIME": "fd_trigger_time_s",
        "FS_ISOLATION_T": "fs_isolation_time_s",
        "MPC_TKO_SPEED": "takeoff_speed_m_s",
        "MPC_LAND_SPEED": "landing_speed_m_s",
    }

    def _resolve(self, name: str) -> str:
        attr = self._ALIASES.get(name, name)
        if attr not in {f.name for f in fields(self)}:
            raise KeyError(f"unknown parameter: {name}")
        return attr

    def get(self, name: str) -> float:
        """Read a parameter by field name or PX4-style alias."""
        return getattr(self, self._resolve(name))

    def set(self, name: str, value: float) -> None:
        """Write a parameter by field name or PX4-style alias."""
        setattr(self, self._resolve(name), float(value))
