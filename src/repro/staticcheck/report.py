"""Rendering for reprolint runs (text and JSON)."""

from __future__ import annotations

import json

from repro.staticcheck.engine import RunReport


def render_text(report: RunReport) -> str:
    """Human-readable listing: one block per violation plus a summary."""
    lines = [v.format() for v in report.violations]
    affected = len({v.path for v in report.violations})
    if report.violations:
        lines.append(
            f"reprolint: {len(report.violations)} violation(s) in "
            f"{affected} file(s) ({report.files_scanned} scanned)"
        )
    else:
        lines.append(
            f"reprolint: clean ({report.files_scanned} file(s) scanned, "
            f"{len(report.rule_ids)} rules)"
        )
    return "\n".join(lines)


def render_json(report: RunReport) -> str:
    """Machine-readable report (stable key order for diffing in CI)."""
    payload = {
        "clean": report.clean,
        "files_scanned": report.files_scanned,
        "rules": list(report.rule_ids),
        "violation_count": len(report.violations),
        "violations": [
            {
                "rule_id": v.rule_id,
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "message": v.message,
                "fixit": v.fixit,
            }
            for v in report.violations
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
