"""CLI entry point: ``python -m repro.staticcheck <paths> [--format ...]``.

Exit codes: 0 clean, 1 violations found, 2 usage/analysis error.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.staticcheck import all_rules, render_json, render_text, run_reprolint
from repro.staticcheck.engine import ReprolintError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticcheck",
        description=(
            "reprolint: domain-aware static analysis enforcing determinism, "
            "numeric, fault-model, and atomic-write invariants."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}  {rule.summary}")
        return 0
    try:
        report = run_reprolint(args.paths, rules)
    except ReprolintError as exc:
        print(f"reprolint: error: {exc}", file=sys.stderr)
        return 2
    renderer = render_json if args.format == "json" else render_text
    print(renderer(report))
    return 0 if report.clean else 1


if __name__ == "__main__":
    sys.exit(main())
