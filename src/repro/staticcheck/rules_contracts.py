"""Persistence-contract rules (IO001).

PR 1's crash-safety guarantee (a kill can never corrupt results or
checkpoints) holds only while every write goes through the atomic
helpers in ``core/io.py`` — a raw ``open(path, "w")`` elsewhere can
leave a torn file behind. This rule makes the contract structural.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticcheck.engine import FileContext, Rule, Violation

_WRITE_MODE_CHARS = set("wax+")

_WRITE_METHOD_ATTRS = frozenset({"write_text", "write_bytes"})


class RawWriteRule(Rule):
    """IO001: file writes only through the atomic helpers in core/io.py.

    Flags write-capable ``open()``/``os.fdopen()`` calls and
    ``Path.write_text``/``write_bytes`` anywhere outside ``core/io.py``.
    A non-constant mode is flagged too (it *may* write); suppress with
    a justification when a write is genuinely outside the
    results/checkpoint contract.
    """

    rule_id = "IO001"
    summary = "raw file writes outside the atomic helpers in core/io.py"
    fixit = (
        "route the write through the atomic helpers (core/atomicio.py's "
        "atomic_write_text, or core/io.py's save_campaign / export_csv / "
        "CampaignJournal) so a crash cannot tear it"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.is_atomic_io_module:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if self._is_write_open(ctx, node):
                yield self.violation(
                    ctx,
                    node,
                    f"write-capable '{ast.unparse(node.func)}(...)' bypasses "
                    "the atomic-write helpers",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _WRITE_METHOD_ATTRS
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"'.{node.func.attr}()' is not atomic — a crash mid-call "
                    "leaves a torn file",
                )

    @staticmethod
    def _is_write_open(ctx: FileContext, node: ast.Call) -> bool:
        if isinstance(node.func, ast.Name) and node.func.id == "open":
            mode_arg: ast.expr | None = node.args[1] if len(node.args) > 1 else None
        elif ctx.resolve(node.func) == "os.fdopen":
            mode_arg = node.args[1] if len(node.args) > 1 else None
        else:
            return False
        for kw in node.keywords:
            if kw.arg == "mode":
                mode_arg = kw.value
        if mode_arg is None:
            return False  # default mode "r"
        if isinstance(mode_arg, ast.Constant) and isinstance(mode_arg.value, str):
            return bool(_WRITE_MODE_CHARS & set(mode_arg.value))
        return True  # dynamic mode: assume the worst
