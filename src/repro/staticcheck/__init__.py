"""reprolint: domain-aware static analysis for the repro tree.

A custom AST analyzer that knows this simulator's invariants —
determinism (DET001–004), numeric robustness (NUM001–003), fault-model
exhaustiveness and persistence (FM001–002), the atomic-write
contract (IO001), and the observability read-only contract (OBS001). Run it with::

    python -m repro.staticcheck src/repro [--format json]

Per-line suppression: append ``# reprolint: disable=RULE1,RULE2`` to
the offending line (use sparingly, with a justification in a nearby
comment). Tier-1 tests run the analyzer over ``src/repro`` via
``tests/test_staticcheck_repo.py``, so the tree must stay clean.
"""

from __future__ import annotations

from repro.staticcheck.engine import (
    ReprolintError,
    Rule,
    RunReport,
    Violation,
    run_reprolint,
)
from repro.staticcheck.report import render_json, render_text
from repro.staticcheck.rules_contracts import RawWriteRule
from repro.staticcheck.rules_determinism import (
    GeneratorInjectionRule,
    GlobalRandomRule,
    SetIterationRule,
    WallClockRule,
)
from repro.staticcheck.rules_faultmodel import ExhaustiveDispatchRule, SpecRoundTripRule
from repro.staticcheck.rules_numerics import (
    FloatEqualityRule,
    NaNComparisonRule,
    UnguardedDivisionRule,
)
from repro.staticcheck.rules_obs import ObsReadOnlyRule

#: Registered rule classes, in report order.
ALL_RULES: tuple[type[Rule], ...] = (
    GlobalRandomRule,
    WallClockRule,
    SetIterationRule,
    GeneratorInjectionRule,
    FloatEqualityRule,
    UnguardedDivisionRule,
    NaNComparisonRule,
    ExhaustiveDispatchRule,
    SpecRoundTripRule,
    RawWriteRule,
    ObsReadOnlyRule,
)


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule."""
    return [cls() for cls in ALL_RULES]


__all__ = [
    "ALL_RULES",
    "ReprolintError",
    "Rule",
    "RunReport",
    "Violation",
    "all_rules",
    "render_json",
    "render_text",
    "run_reprolint",
]
