"""reprolint — the walker/plugin framework.

The analyzer is a thin, deterministic pipeline:

1. :func:`collect_files` expands the CLI paths into ``.py`` files and
   computes each file's *package-relative* path (``sim/dynamics.py``,
   ``core/io.py`` …) so rules can reason about which layer of the
   simulator a file belongs to.
2. :func:`build_project_index` makes one harvesting pass over every
   parsed module and records the cross-file facts rules need: enum
   definitions (for exhaustiveness checks), dataclass field lists (for
   serialization round-trip checks), names validated by raise-guards
   anywhere in the tree (for division-guard checks), and the string
   keys used by the spec serializers.
3. :func:`run_reprolint` hands every file, wrapped in a
   :class:`FileContext`, to every :class:`Rule` and gathers the
   surviving :class:`Violation` records (per-line suppressions via
   ``# reprolint: disable=RULE1,RULE2`` are honoured here, so rules
   never need to think about them).

Rules are stateless plugins: subclass :class:`Rule`, set ``rule_id`` /
``summary`` / ``fixit``, implement ``check(ctx)``, and register the
class in :data:`repro.staticcheck.ALL_RULES`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: Packages whose code runs inside the deterministic simulation loop.
#: Wall-clock reads and non-injected randomness in these layers silently
#: break PR 1's bit-identical checkpoint/resume guarantee.
RESTRICTED_PACKAGES = frozenset({"sim", "sensors", "estimation", "control", "core"})

#: Campaign-harness modules: the only places wall-clock time is
#: legitimate (retry backoff, per-case timeouts, progress tickers).
HARNESS_MODULES = frozenset({"core/campaign.py", "core/resilience.py"})

#: The atomic-write helpers; the only modules allowed to open files for
#: writing (protects the crash-safety contract of the journal/results).
ATOMIC_IO_MODULES = frozenset({"core/io.py", "core/atomicio.py"})

_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Z0-9_, ]+)")


class ReprolintError(Exception):
    """A file could not be analyzed (bad path, unparsable source)."""


@dataclass(frozen=True, order=True)
class Violation:
    """One rule finding, anchored to a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    fixit: str

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: {self.rule_id} "
            f"{self.message}\n    fix: {self.fixit}"
        )


@dataclass(frozen=True)
class ProjectIndex:
    """Cross-file facts harvested before any rule runs."""

    #: enum class name -> ordered member names (e.g. FaultType -> 7).
    enums: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: dataclass name -> ordered field names (e.g. FaultSpec).
    dataclass_fields: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: names (params / attributes) that some raise-guard or assert
    #: validates anywhere in the scanned tree, e.g. ``mass_kg`` from
    #: ``if self.mass_kg <= 0.0: raise ValueError(...)``.
    validated_names: frozenset[str] = frozenset()
    #: serializer function name -> string constants + kwarg names used
    #: inside it (harvested for the FaultSpec round-trip check).
    serializer_keys: dict[str, frozenset[str]] = field(default_factory=dict)


#: Function names treated as the canonical FaultSpec serializers.
SPEC_SERIALIZER_NAMES = ("fault_spec_to_dict", "fault_spec_from_dict")


class FileContext:
    """Everything one rule invocation may look at for one file."""

    def __init__(
        self,
        path: Path,
        rel_path: str,
        source: str,
        tree: ast.Module,
        project: ProjectIndex,
    ) -> None:
        self.path = path
        self.rel_path = rel_path
        self.source = source
        self.tree = tree
        self.project = project
        self.imports = _harvest_imports(tree)
        self._suppressions = _harvest_suppressions(source)

    # -- path-based layer queries -------------------------------------

    @property
    def package(self) -> str:
        """First package component of the relative path ('' at root)."""
        parts = Path(self.rel_path).parts
        return parts[0] if len(parts) > 1 else ""

    @property
    def in_restricted_package(self) -> bool:
        return self.package in RESTRICTED_PACKAGES

    @property
    def is_harness_module(self) -> bool:
        return self.rel_path in HARNESS_MODULES

    @property
    def is_atomic_io_module(self) -> bool:
        return self.rel_path in ATOMIC_IO_MODULES

    # -- name resolution ----------------------------------------------

    def resolve(self, node: ast.AST) -> str | None:
        """Dotted path of a Name/Attribute chain via the import table.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` under ``import numpy as np``;
        chains rooted at local variables resolve to ``None``.
        """
        chain: list[str] = []
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.imports.get(node.id)
        if root is None:
            return None
        chain.append(root)
        return ".".join(reversed(chain))

    # -- suppression ----------------------------------------------------

    def suppressed(self, line: int, rule_id: str) -> bool:
        return rule_id in self._suppressions.get(line, frozenset())


class Rule:
    """Base class for reprolint rules (stateless plugins)."""

    rule_id: str = ""
    summary: str = ""
    fixit: str = ""

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self,
        ctx: FileContext,
        node: ast.AST,
        message: str,
        fixit: str | None = None,
    ) -> Violation:
        return Violation(
            path=ctx.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
            fixit=fixit if fixit is not None else self.fixit,
        )


# ---------------------------------------------------------------------------
# file collection


def collect_files(paths: Sequence[str | Path]) -> list[tuple[Path, str]]:
    """Expand CLI paths to ``(file, package_relative_path)`` pairs."""
    out: list[tuple[Path, str]] = []
    seen: set[Path] = set()
    for raw in paths:
        root = Path(raw)
        if root.is_dir():
            files = sorted(p for p in root.rglob("*.py") if p.is_file())
            base = root
        elif root.is_file():
            files = [root]
            base = root.parent
        else:
            raise ReprolintError(f"no such file or directory: {root}")
        for f in files:
            resolved = f.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            out.append((f, _package_rel(f, base)))
    return out


def _package_rel(file: Path, base: Path) -> str:
    """Path of ``file`` relative to the ``repro`` package root.

    Falls back to the scan-root-relative path when the file does not
    live under a ``repro``/``src`` directory (e.g. test fixtures), so
    fixture trees can emulate package layout with plain ``sim/``,
    ``core/`` … subdirectories.
    """
    rel = file.relative_to(base) if file.is_relative_to(base) else file
    parts = list(rel.parts)
    for anchor in ("repro", "src"):
        if anchor in parts[:-1]:
            parts = parts[len(parts) - 1 - parts[::-1].index(anchor):]
    return "/".join(parts)


def _parse(path: Path) -> tuple[str, ast.Module]:
    try:
        source = path.read_text()
        return source, ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError) as exc:
        raise ReprolintError(f"cannot analyze {path}: {exc}") from exc


# ---------------------------------------------------------------------------
# harvesting


def _harvest_imports(tree: ast.Module) -> dict[str, str]:
    """Local binding -> dotted module/object path, for :meth:`resolve`."""
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    imports[head] = head
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports never reach stdlib/numpy
            for alias in node.names:
                if alias.name == "*":
                    continue
                imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return imports


def _harvest_suppressions(source: str) -> dict[int, frozenset[str]]:
    suppressions: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            rules = frozenset(
                token.strip() for token in match.group(1).split(",") if token.strip()
            )
            suppressions[lineno] = rules
    return suppressions


_ENUM_BASES = {
    "Enum", "IntEnum", "StrEnum", "Flag", "IntFlag",
    "enum.Enum", "enum.IntEnum", "enum.StrEnum", "enum.Flag", "enum.IntFlag",
}


def _is_enum_base(node: ast.expr) -> bool:
    return ast.unparse(node) in _ENUM_BASES


def _is_dataclass_decorator(node: ast.expr) -> bool:
    if isinstance(node, ast.Call):
        node = node.func
    return ast.unparse(node) in ("dataclass", "dataclasses.dataclass")


def build_project_index(
    files: Iterable[tuple[ast.Module, str]]
) -> ProjectIndex:
    """One pass over all parsed modules, harvesting cross-file facts."""
    enums: dict[str, tuple[str, ...]] = {}
    dataclass_fields: dict[str, tuple[str, ...]] = {}
    validated: set[str] = set()
    serializer_keys: dict[str, frozenset[str]] = {}

    for tree, _rel in files:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                if any(_is_enum_base(b) for b in node.bases):
                    members = tuple(
                        target.id
                        for stmt in node.body
                        if isinstance(stmt, ast.Assign)
                        for target in stmt.targets
                        if isinstance(target, ast.Name)
                        and not target.id.startswith("_")
                    )
                    if members:
                        enums[node.name] = members
                if any(_is_dataclass_decorator(d) for d in node.decorator_list):
                    names = tuple(
                        stmt.target.id
                        for stmt in node.body
                        if isinstance(stmt, ast.AnnAssign)
                        and isinstance(stmt.target, ast.Name)
                        and not stmt.target.id.startswith("_")
                    )
                    if names:
                        dataclass_fields[node.name] = names
            elif isinstance(node, ast.If):
                if any(isinstance(n, ast.Raise) for n in ast.walk(node)):
                    validated.update(_condition_names(node.test))
            elif isinstance(node, ast.Assert):
                validated.update(_condition_names(node.test))
            elif isinstance(node, ast.FunctionDef):
                if node.name in SPEC_SERIALIZER_NAMES:
                    serializer_keys[node.name] = _string_keys(node)

    return ProjectIndex(
        enums=enums,
        dataclass_fields=dataclass_fields,
        validated_names=frozenset(validated),
        serializer_keys=serializer_keys,
    )


def _condition_names(test: ast.expr) -> set[str]:
    """Plain names and terminal attribute names mentioned in a test."""
    names: set[str] = set()
    for node in ast.walk(test):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    names.discard("self")
    return names


def _string_keys(fn: ast.FunctionDef) -> frozenset[str]:
    """String constants and keyword-argument names used inside ``fn``."""
    keys: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            keys.add(node.value)
        elif isinstance(node, ast.keyword) and node.arg is not None:
            keys.add(node.arg)
    return frozenset(keys)


# ---------------------------------------------------------------------------
# scope walking helpers (shared by rules)


def iter_scopes(tree: ast.Module) -> Iterator[tuple[ast.AST, list[ast.stmt]]]:
    """Yield ``(scope_node, body)`` for the module and every function.

    Class bodies are folded into their enclosing scope (methods are
    their own scopes); nested functions each get their own entry.
    """
    yield tree, list(tree.body)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, list(node.body)


def walk_scope(body: Iterable[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested function scopes."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue  # nested scope: yielded, but not descended into
        stack.extend(ast.iter_child_nodes(node))


# ---------------------------------------------------------------------------
# runner


@dataclass(frozen=True)
class RunReport:
    """Outcome of one analyzer run."""

    violations: tuple[Violation, ...]
    files_scanned: int
    rule_ids: tuple[str, ...]

    @property
    def clean(self) -> bool:
        return not self.violations


def run_reprolint(
    paths: Sequence[str | Path], rules: Sequence[Rule] | None = None
) -> RunReport:
    """Run ``rules`` (default: the full registry) over ``paths``."""
    if rules is None:
        from repro.staticcheck import all_rules

        rules = all_rules()

    files = collect_files(paths)
    parsed = [(path, rel, *_parse(path)) for path, rel in files]
    index = build_project_index((tree, rel) for _p, rel, _s, tree in parsed)

    violations: list[Violation] = []
    for path, rel, source, tree in parsed:
        ctx = FileContext(path, rel, source, tree, index)
        for rule in rules:
            for v in rule.check(ctx):
                if not ctx.suppressed(v.line, v.rule_id):
                    violations.append(v)
    return RunReport(
        violations=tuple(sorted(violations)),
        files_scanned=len(parsed),
        rule_ids=tuple(r.rule_id for r in rules),
    )
