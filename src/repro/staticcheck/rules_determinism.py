"""Determinism rules (DET001–DET004).

Every campaign result must be a pure function of the campaign config
and the case seed — that is what makes PR 1's checkpoint/resume
bit-identical and the paper's 850-run matrix reproducible. These rules
ban the three ways nondeterminism sneaks into a simulator: ambient
random state, ambient clocks, and unordered iteration.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticcheck.engine import FileContext, Rule, Violation

#: numpy.random attributes that are *constructors of seedable state*
#: rather than draws from the hidden global generator.
_NP_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "RandomState",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)

_GENERATOR_FACTORIES = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.RandomState",
    }
)

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class GlobalRandomRule(Rule):
    """DET001: no draws from the process-global RNGs.

    ``random.*`` and the legacy ``np.random.*`` functions share hidden
    module-level state, so any import-order or thread-schedule change
    alters every subsequent draw in the process.
    """

    rule_id = "DET001"
    summary = "no unseeded random/np.random module-level calls"
    fixit = (
        "draw from an injected np.random.Generator "
        "(np.random.default_rng(seed)) instead of the global RNG"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved is None:
                continue
            parts = resolved.split(".")
            if parts[0] == "random" and len(parts) == 2:
                yield self.violation(
                    ctx,
                    node,
                    f"call to stdlib global RNG '{resolved}' — module-level "
                    "random state is shared across the whole process",
                )
            elif (
                len(parts) == 3
                and parts[:2] == ["numpy", "random"]
                and parts[2] not in _NP_RANDOM_ALLOWED
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"call to legacy global RNG 'np.random.{parts[2]}' — "
                    "draws from hidden module-level state",
                )


class WallClockRule(Rule):
    """DET002: no wall-clock reads inside the simulation layers.

    Simulated time is ``state.time_s``; reading the host clock inside
    sim/sensors/estimation/control/core makes results depend on machine
    load. Wall clock belongs only to the campaign harness (retry
    backoff, per-case timeouts).
    """

    rule_id = "DET002"
    summary = "no wall-clock reads in sim/sensors/estimation/control/core"
    fixit = (
        "use simulated time (state.time_s / the step dt); wall-clock "
        "reads belong only in core/campaign.py and core/resilience.py"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_restricted_package or ctx.is_harness_module:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved in _WALL_CLOCK_CALLS:
                yield self.violation(
                    ctx,
                    node,
                    f"wall-clock read '{resolved}()' inside the simulation "
                    "layer makes results depend on host timing",
                )


class SetIterationRule(Rule):
    """DET003: no order-sensitive iteration over sets.

    Set iteration order depends on insertion history and (for strings)
    the per-process hash seed, so any set that reaches results, logs,
    or schedules reorders between runs. Order-insensitive reductions
    (``sum``/``min``/``max``/``len``/``any``/``all``/``sorted``) are
    fine; materializing or enumerating a set is not.
    """

    rule_id = "DET003"
    summary = "no iteration over unordered sets where order can matter"
    fixit = "iterate over sorted(<set>) (or keep the data in a list/dict)"

    _ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate", "iter", "next"})

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        set_named = self._set_valued_names(ctx.tree)

        def is_set_expr(node: ast.expr) -> bool:
            if isinstance(node, (ast.Set, ast.SetComp)):
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset")
            ):
                return True
            return isinstance(node, ast.Name) and node.id in set_named

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For) and is_set_expr(node.iter):
                yield self.violation(
                    ctx, node.iter, "for-loop iterates over an unordered set"
                )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                for gen in node.generators:
                    if is_set_expr(gen.iter):
                        yield self.violation(
                            ctx, gen.iter, "comprehension iterates over an unordered set"
                        )
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in self._ORDER_SENSITIVE_CALLS
                    and node.args
                    and is_set_expr(node.args[0])
                ):
                    yield self.violation(
                        ctx,
                        node,
                        f"'{node.func.id}(...)' materializes a set in "
                        "nondeterministic order",
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                    and node.args
                    and is_set_expr(node.args[0])
                ):
                    yield self.violation(
                        ctx, node, "str.join over a set concatenates in "
                        "nondeterministic order",
                    )

    @staticmethod
    def _set_valued_names(tree: ast.Module) -> frozenset[str]:
        """Names whose every assignment in this file is a set expression."""
        assigned: dict[str, bool] = {}
        for node in ast.walk(tree):
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None:
                continue
            is_set = isinstance(value, (ast.Set, ast.SetComp)) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in ("set", "frozenset")
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    previous = assigned.get(target.id, True)
                    assigned[target.id] = previous and is_set
        return frozenset(name for name, only_sets in assigned.items() if only_sets)


class GeneratorInjectionRule(Rule):
    """DET004: every np.random.Generator must be parameter-injected.

    A generator constructed without a seed is fresh OS entropy; one
    constructed from a literal inside a simulation layer is hidden
    coupling that the campaign matrix cannot vary. Both break the
    "results are a function of (config, seed)" contract, so the seed
    must arrive through a parameter or attribute.
    """

    rule_id = "DET004"
    summary = "np.random.Generator construction must take an injected seed"
    fixit = (
        "accept a 'seed: int' (or rng) parameter and construct with "
        "np.random.default_rng(seed)"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved not in _GENERATOR_FACTORIES:
                continue
            if not node.args and not node.keywords:
                yield self.violation(
                    ctx,
                    node,
                    f"'{resolved}()' without a seed draws fresh OS entropy "
                    "on every construction",
                )
            elif ctx.in_restricted_package and not ctx.is_harness_module:
                seed_expr = node.args[0] if node.args else node.keywords[0].value
                if self._is_pure_literal(seed_expr):
                    yield self.violation(
                        ctx,
                        node,
                        f"'{resolved}' seeded with a hard-coded literal in a "
                        "simulation layer — the campaign matrix cannot vary it",
                    )

    @staticmethod
    def _is_pure_literal(node: ast.expr) -> bool:
        return all(
            isinstance(
                sub, (ast.Constant, ast.UnaryOp, ast.BinOp, ast.unaryop, ast.operator)
            )
            for sub in ast.walk(node)
        )
