"""Numerics rules (NUM001–NUM003).

Float-identity tests, unguarded divisions and NaN comparisons are the
three numeric bug classes that survive unit tests (they need a fault
window or an edge-case state to trigger) but corrupt campaign
statistics when they do fire mid-run.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticcheck.engine import (
    FileContext,
    Rule,
    Violation,
    _condition_names,
    iter_scopes,
    walk_scope,
)

_FLOAT_CONSTANT_PATHS = frozenset(
    {"math.pi", "math.e", "math.tau", "math.inf", "numpy.pi", "numpy.e", "numpy.inf"}
)

_NAN_PATHS = frozenset({"math.nan", "numpy.nan", "numpy.NaN", "numpy.NAN"})

#: Calls whose result is safely bounded away from zero when used as a
#: denominator source (``steps = max(1, ...)`` style clamps).
_CLAMPING_CALLS = frozenset(
    {"max", "min", "abs", "clamp", "numpy.maximum", "numpy.fmax", "numpy.clip"}
)


def _is_floatish(ctx: FileContext, node: ast.expr) -> bool:
    """Syntactically float-valued: literal, float() cast, math constant."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(ctx, node.operand)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id == "float"
    resolved = ctx.resolve(node)
    return resolved in _FLOAT_CONSTANT_PATHS


class FloatEqualityRule(Rule):
    """NUM001: no bare ``==``/``!=`` against floats.

    After one EKF step nothing is exactly ``0.1``; identity tests on
    floats either never fire or fire on the wrong runs, silently
    reshaping Tables II–IV.
    """

    rule_id = "NUM001"
    summary = "no bare ==/!= between floats"
    fixit = (
        "compare with math.isclose/np.isclose or an explicit tolerance "
        "(abs(a - b) < eps); ordered comparisons (<, <=) are fine"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                if _is_floatish(ctx, left) or _is_floatish(ctx, right):
                    yield self.violation(
                        ctx,
                        node,
                        "exact float equality is brittle under rounding "
                        f"('{ast.unparse(node)}')",
                    )
                    break


class UnguardedDivisionRule(Rule):
    """NUM002: no unguarded division by state variables.

    Division by a runtime quantity (a norm, a rate, a duration) must be
    dominated by *some* guard on that quantity: a comparison, a clamp
    (``max``/``clamp``/``np.clip``), or a raise-style validation of a
    same-named parameter anywhere in the tree. Otherwise a fault window
    that drives the quantity to zero turns the whole run into inf/NaN.
    """

    rule_id = "NUM002"
    summary = "no unguarded division by state variables"
    fixit = (
        "guard the denominator (compare it, clamp it with max()/clamp(), "
        "or validate it with a raise) before dividing"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for _scope, body in iter_scopes(ctx.tree):
            guarded = self._guarded_names(ctx, body)
            for node in walk_scope(body):
                if not isinstance(node, ast.BinOp) or not isinstance(
                    node.op, (ast.Div, ast.FloorDiv, ast.Mod)
                ):
                    continue
                name = self._denominator_name(node.right)
                if name is None:
                    continue
                if name.isupper():
                    continue  # ALL_CAPS: a module constant, nonzero by definition
                if name in guarded or name in ctx.project.validated_names:
                    continue
                yield self.violation(
                    ctx,
                    node,
                    f"division by '{ast.unparse(node.right)}' with no guard "
                    "on its value in this scope",
                )

    @staticmethod
    def _denominator_name(node: ast.expr) -> str | None:
        """The guardable name of a denominator (None = not name-like)."""
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return None

    def _guarded_names(self, ctx: FileContext, body: list[ast.stmt]) -> set[str]:
        """Names this scope constrains before (or while) using them."""
        guarded: set[str] = set()
        for node in walk_scope(body):
            if isinstance(node, ast.Compare):
                for operand in [node.left, *node.comparators]:
                    guarded.update(_condition_names(operand))
            elif isinstance(node, (ast.If, ast.While, ast.Assert, ast.IfExp)):
                guarded.update(_condition_names(node.test))
            elif isinstance(node, ast.comprehension):
                for cond in node.ifs:
                    guarded.update(_condition_names(cond))
            elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                func = node.value.func
                resolved = (
                    func.id
                    if isinstance(func, ast.Name)
                    else ctx.resolve(func)
                )
                if resolved in _CLAMPING_CALLS:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            guarded.add(target.id)
            elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Attribute):
                # x = self.params.mass_kg — guarded iff the source
                # attribute is raise-validated somewhere in the tree.
                if node.value.attr in ctx.project.validated_names:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            guarded.add(target.id)
        # Second pass: `n = len(xs)` inherits the guard on `xs` (the
        # empty-group check is the zero check for a length).
        for node in walk_scope(body):
            if (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Name)
                and node.value.func.id == "len"
                and node.value.args
                and _condition_names(node.value.args[0]) & guarded
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        guarded.add(target.id)
        return guarded


class NaNComparisonRule(Rule):
    """NUM003: no ordering/equality comparisons against NaN.

    Every comparison with NaN is False (``nan != nan`` is True), so
    such tests silently select the wrong branch instead of detecting
    the bad sample.
    """

    rule_id = "NUM003"
    summary = "comparisons against NaN never hold"
    fixit = "use math.isnan(x) / np.isnan(x) to detect NaN values"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            for operand in [node.left, *node.comparators]:
                if self._is_nan(ctx, operand):
                    yield self.violation(
                        ctx,
                        node,
                        f"comparison against NaN ('{ast.unparse(node)}') is "
                        "always False by IEEE 754",
                    )
                    break

    @staticmethod
    def _is_nan(ctx: FileContext, node: ast.expr) -> bool:
        if ctx.resolve(node) in _NAN_PATHS:
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "float"
            and len(node.args) == 1
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
            and node.args[0].value.strip().lower() in ("nan", "-nan", "+nan")
        )
