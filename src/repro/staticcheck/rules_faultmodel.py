"""Fault-model rules (FM001–FM002).

The paper's 7-fault × 3-target model is dispatched in several places
(behaviour application, labels, tables). A fault type added — or a
branch deleted — without updating every dispatch silently reshapes the
campaign, so exhaustiveness is checked against the enum definitions
rather than trusted to review. The same goes for persistence: a
FaultSpec field that does not survive serialization round-trip makes a
resumed campaign subtly different from an uninterrupted one.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticcheck.engine import (
    SPEC_SERIALIZER_NAMES,
    FileContext,
    Rule,
    Violation,
)


def _member_ref(ctx: FileContext, node: ast.expr) -> tuple[str, str] | None:
    """``(enum_name, member)`` if ``node`` references a known enum member."""
    if not isinstance(node, ast.Attribute):
        return None
    parts = ast.unparse(node).split(".")
    if len(parts) < 2:
        return None
    enum_name, member = parts[-2], parts[-1]
    members = ctx.project.enums.get(enum_name)
    if members and member in members:
        return enum_name, member
    return None


class ExhaustiveDispatchRule(Rule):
    """FM001: enum dispatches must handle every member.

    Any if/elif chain, ``match`` statement, or dict literal that
    dispatches over two or more members of a known enum must mention
    *all* of its members — a trailing ``else``/``raise`` fallback does
    not count, because a silently-absorbed member is exactly the bug
    this rule exists to catch.
    """

    rule_id = "FM001"
    summary = "enum dispatch must be exhaustive over the enum's members"
    fixit = (
        "add an explicit branch (or dict/match entry) for each missing "
        "member — the fallback must stay unreachable"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.project.enums:
            return
        yield from self._check_if_chains(ctx)
        yield from self._check_matches(ctx)
        yield from self._check_dicts(ctx)

    # -- if / elif chains ---------------------------------------------

    def _check_if_chains(self, ctx: FileContext) -> Iterator[Violation]:
        for body in self._statement_lists(ctx.tree):
            # One "run" per (enum, dispatch subject): consecutive sibling
            # `if` statements on the same subject (early-return dispatch
            # style) merge; any other statement flushes pending runs.
            runs: dict[tuple[str, str], tuple[ast.If, set[str]]] = {}
            for stmt in [*body, None]:
                handled: dict[tuple[str, str], set[str]] = {}
                if isinstance(stmt, ast.If):
                    for test in self._chain_tests(stmt):
                        for enum_name, member, subject in self._equality_members(
                            ctx, test
                        ):
                            handled.setdefault((enum_name, subject), set()).add(member)
                for key in list(runs):
                    if key not in handled:
                        anchor, members = runs.pop(key)
                        yield from self._verify(ctx, key[0], anchor, members)
                for key, members in handled.items():
                    if key in runs:
                        runs[key][1].update(members)
                    elif isinstance(stmt, ast.If):
                        runs[key] = (stmt, set(members))

    def _verify(
        self, ctx: FileContext, enum_name: str, anchor: ast.AST, handled: set[str]
    ) -> Iterator[Violation]:
        if len(handled) < 2:
            return
        missing = [m for m in ctx.project.enums[enum_name] if m not in handled]
        if missing:
            yield self.violation(
                ctx,
                anchor,
                f"dispatch over {enum_name} handles {len(handled)} of "
                f"{len(ctx.project.enums[enum_name])} members; missing: "
                + ", ".join(f"{enum_name}.{m}" for m in missing),
            )

    @staticmethod
    def _statement_lists(tree: ast.Module) -> Iterator[list[ast.stmt]]:
        for node in ast.walk(tree):
            for field_name in ("body", "orelse", "finalbody"):
                body = getattr(node, field_name, None)
                if not (isinstance(body, list) and body and isinstance(body[0], ast.stmt)):
                    continue
                if (
                    field_name == "orelse"
                    and isinstance(node, ast.If)
                    and len(body) == 1
                    and isinstance(body[0], ast.If)
                ):
                    continue  # elif continuation: handled via _chain_tests
                yield body

    @staticmethod
    def _chain_tests(node: ast.If) -> Iterator[ast.expr]:
        while True:
            yield node.test
            if len(node.orelse) == 1 and isinstance(node.orelse[0], ast.If):
                node = node.orelse[0]
            else:
                return

    def _equality_members(
        self, ctx: FileContext, test: ast.expr
    ) -> Iterator[tuple[str, str, str]]:
        """``(enum, member, subject)`` triples this condition dispatches on.

        Only ``==``/``is`` count as dispatch; membership tests like
        ``target in (A, B)`` are deliberate subsetting, not dispatch.
        Boolean ``or`` of equality tests is dispatch of both members.
        """
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.Or):
            for value in test.values:
                yield from self._equality_members(ctx, value)
            return
        if not isinstance(test, ast.Compare) or len(test.ops) != 1:
            return
        if not isinstance(test.ops[0], (ast.Eq, ast.Is)):
            return
        left, right = test.left, test.comparators[0]
        for operand, other in ((left, right), (right, left)):
            ref = _member_ref(ctx, operand)
            if ref is not None:
                yield ref[0], ref[1], ast.unparse(other)

    # -- match statements ---------------------------------------------

    def _check_matches(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Match):
                continue
            handled: dict[str, set[str]] = {}
            for case in node.cases:
                for pattern in self._flat_patterns(case.pattern):
                    if isinstance(pattern, ast.MatchValue):
                        ref = _member_ref(ctx, pattern.value)
                        if ref is not None:
                            handled.setdefault(ref[0], set()).add(ref[1])
            for enum_name, members in handled.items():
                yield from self._verify(ctx, enum_name, node, members)

    @staticmethod
    def _flat_patterns(pattern: ast.pattern) -> Iterator[ast.pattern]:
        if isinstance(pattern, ast.MatchOr):
            yield from pattern.patterns
        else:
            yield pattern

    # -- dict-literal dispatch tables ----------------------------------

    def _check_dicts(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Dict):
                continue
            handled: dict[str, set[str]] = {}
            for key in node.keys:
                if key is None:
                    continue
                ref = _member_ref(ctx, key)
                if ref is not None:
                    handled.setdefault(ref[0], set()).add(ref[1])
            for enum_name, members in handled.items():
                yield from self._verify(ctx, enum_name, node, members)


class SpecRoundTripRule(Rule):
    """FM002: every FaultSpec field must survive serialization.

    The canonical serializers (``fault_spec_to_dict`` /
    ``fault_spec_from_dict`` in ``core/results.py``) must reference
    every dataclass field of FaultSpec by name. A field missing from
    either direction means checkpoints, fingerprints, or saved
    campaigns silently drop part of the fault model (e.g. a custom
    ``noise_fraction`` resuming as the default).
    """

    rule_id = "FM002"
    summary = "FaultSpec fields must round-trip through results.py serializers"
    fixit = (
        "add the field to fault_spec_to_dict AND fault_spec_from_dict in "
        "core/results.py"
    )

    SPEC_CLASS = "FaultSpec"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        fields = ctx.project.dataclass_fields.get(self.SPEC_CLASS)
        if fields is None:
            return
        # Anchor the finding to the file that defines the dataclass so
        # the check runs exactly once per tree.
        anchor = self._spec_classdef(ctx)
        if anchor is None:
            return
        for fn_name in SPEC_SERIALIZER_NAMES:
            keys = ctx.project.serializer_keys.get(fn_name)
            if keys is None:
                yield self.violation(
                    ctx,
                    anchor,
                    f"no '{fn_name}' serializer found in the scanned tree — "
                    f"{self.SPEC_CLASS} cannot round-trip",
                )
                continue
            missing = [f for f in fields if f not in keys]
            if missing:
                yield self.violation(
                    ctx,
                    anchor,
                    f"'{fn_name}' drops {self.SPEC_CLASS} field(s): "
                    + ", ".join(missing),
                )

    def _spec_classdef(self, ctx: FileContext) -> ast.ClassDef | None:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and node.name == self.SPEC_CLASS:
                return node
        return None
