"""Observability-plane rules (OBS001).

The obs package (PR 5) rides along inside the deterministic hot loop
under a strict read-only contract: instrumentation may look at the
vehicle but must never draw randomness or write into it, or the
bit-exactness guarantee (golden step traces identical with obs enabled
and disabled) silently dies. This rule makes that contract structural.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticcheck.engine import FileContext, Rule, Violation, iter_scopes, walk_scope

#: Attribute calls that mutate their receiver in place; calling one on
#: an object reached *through a function parameter* writes observed
#: state just as surely as an assignment does.
_MUTATING_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "clear",
        "update", "setdefault", "popitem", "add", "discard",
        "sort", "reverse", "fill",
    }
)

#: Receiver names that a method may legitimately mutate.
_OWN_NAMES = frozenset({"self", "cls"})


class ObsReadOnlyRule(Rule):
    """OBS001: obs code must not draw randomness or mutate observed state.

    Inside ``repro/obs/`` this flags (a) any call into ``random`` or
    ``numpy.random`` — including RNG construction, which would desync
    the injected-generator stream counts between obs-enabled and
    obs-disabled runs — and (b) assignments, augmented assignments,
    deletes, or in-place mutating method calls targeting an attribute
    or subscript chain rooted at a function parameter other than
    ``self``/``cls`` (the observed system, broker, or event objects
    handed to observer hooks). Local variables and ``self`` state are
    free: observers own their rings, registries, and span stacks.
    """

    rule_id = "OBS001"
    summary = "obs code drawing randomness or mutating observed state"
    fixit = (
        "observers are read-only passengers: copy what you need into "
        "obs-owned state (self....) instead of writing through the "
        "observed object, and never touch random/numpy.random"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.package != "obs":
            return
        yield from self._check_randomness(ctx)
        yield from self._check_param_mutation(ctx)

    # -- (a) randomness -------------------------------------------------

    def _check_randomness(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved is None:
                continue
            if resolved == "random" or resolved.startswith("random.") or (
                resolved.startswith("numpy.random")
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"'{ast.unparse(node.func)}(...)' draws or constructs "
                    "randomness inside the observability plane",
                    fixit=(
                        "obs code must be RNG-free — the sim's injected "
                        "generator streams must count identically with obs "
                        "enabled and disabled"
                    ),
                )

    # -- (b) mutation of observed objects -------------------------------

    def _check_param_mutation(self, ctx: FileContext) -> Iterator[Violation]:
        for scope, body in iter_scopes(ctx.tree):
            if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            params = self._param_names(scope)
            if not params:
                continue
            for node in walk_scope(body):
                if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        root = self._chain_root(target)
                        if root in params:
                            yield self.violation(
                                ctx,
                                node,
                                f"assignment into '{ast.unparse(target)}' "
                                f"mutates parameter '{root}' — obs hooks "
                                "must leave observed state untouched",
                            )
                elif isinstance(node, ast.Delete):
                    for target in node.targets:
                        root = self._chain_root(target)
                        if root in params:
                            yield self.violation(
                                ctx,
                                node,
                                f"'del {ast.unparse(target)}' mutates "
                                f"parameter '{root}'",
                            )
                elif isinstance(node, ast.Call):
                    func = node.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr in _MUTATING_METHODS
                    ):
                        root = self._chain_root(func.value)
                        if root in params:
                            yield self.violation(
                                ctx,
                                node,
                                f"'.{func.attr}()' mutates parameter "
                                f"'{root}' in place",
                            )

    @staticmethod
    def _param_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> frozenset[str]:
        args = fn.args
        names = {
            a.arg
            for a in (
                *args.posonlyargs, *args.args, *args.kwonlyargs,
                *( [args.vararg] if args.vararg else [] ),
                *( [args.kwarg] if args.kwarg else [] ),
            )
        }
        return frozenset(names - _OWN_NAMES)

    @staticmethod
    def _chain_root(node: ast.expr) -> str | None:
        """Name at the root of an Attribute/Subscript chain, else None.

        A bare ``Name`` target returns ``None`` too: rebinding a local
        that happens to shadow a parameter does not mutate the caller's
        object.
        """
        if not isinstance(node, (ast.Attribute, ast.Subscript)):
            return None
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        return node.id if isinstance(node, ast.Name) else None
