"""Mission-plan persistence: geodetic flight plans as JSON.

U-space operations are filed as geodetic flight plans; this module
serialises :class:`~repro.missions.plan.MissionPlan` objects to a
self-describing JSON document (waypoints as lat/lon/alt against a named
reference origin) and back. Round-trips are exact to sub-centimetre
because the local frame is re-anchored at the same origin.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.atomicio import atomic_write_text
from repro.mathutils import GeoPoint, GeodeticReference
from repro.missions.plan import MissionPlan, Waypoint
from repro.missions.spec import DroneSpec

_SCHEMA_VERSION = 1


def plan_to_dict(plan: MissionPlan, reference: GeodeticReference) -> dict:
    """Serialise one plan against a geodetic reference origin."""
    waypoints = []
    for wp in plan.waypoints:
        point = reference.to_geodetic(wp.array)
        waypoints.append(
            {
                "latitude_deg": point.latitude_deg,
                "longitude_deg": point.longitude_deg,
                "altitude_m": point.altitude_m,
                "acceptance_radius_m": wp.acceptance_radius_m,
            }
        )
    drone = plan.drone
    return {
        "mission_id": plan.mission_id,
        "description": plan.description,
        "cruise_altitude_m": plan.cruise_altitude_m,
        "has_turns": plan.has_turns,
        "drone": {
            "drone_id": drone.drone_id,
            "name": drone.name,
            "cruise_speed_m_s": drone.cruise_speed_m_s,
            "top_speed_m_s": drone.top_speed_m_s,
            "mass_kg": drone.mass_kg,
            "dimension_m": drone.dimension_m,
            "safety_distance_m": drone.safety_distance_m,
        },
        "waypoints": waypoints,
    }


def plan_from_dict(data: dict, reference: GeodeticReference) -> MissionPlan:
    """Inverse of :func:`plan_to_dict`."""
    drone_data = data["drone"]
    drone = DroneSpec(
        drone_id=drone_data["drone_id"],
        name=drone_data["name"],
        cruise_speed_m_s=drone_data["cruise_speed_m_s"],
        top_speed_m_s=drone_data["top_speed_m_s"],
        mass_kg=drone_data["mass_kg"],
        dimension_m=drone_data["dimension_m"],
        safety_distance_m=drone_data["safety_distance_m"],
    )
    waypoints = []
    for wp in data["waypoints"]:
        ned = reference.to_local(
            GeoPoint(wp["latitude_deg"], wp["longitude_deg"], wp["altitude_m"])
        )
        waypoints.append(
            Waypoint(
                position_ned=(float(ned[0]), float(ned[1]), float(ned[2])),
                acceptance_radius_m=wp["acceptance_radius_m"],
            )
        )
    return MissionPlan(
        mission_id=data["mission_id"],
        drone=drone,
        waypoints=waypoints,
        cruise_altitude_m=data["cruise_altitude_m"],
        has_turns=data["has_turns"],
        description=data["description"],
    )


def save_plans(
    plans: list[MissionPlan], origin: GeoPoint, path: str | Path
) -> None:
    """Write a scenario (several plans + shared origin) to JSON."""
    reference = GeodeticReference(origin)
    payload = {
        "schema_version": _SCHEMA_VERSION,
        "origin": {
            "latitude_deg": origin.latitude_deg,
            "longitude_deg": origin.longitude_deg,
            "altitude_m": origin.altitude_m,
        },
        "plans": [plan_to_dict(plan, reference) for plan in plans],
    }
    atomic_write_text(Path(path), json.dumps(payload, indent=1))


def load_plans(path: str | Path) -> tuple[list[MissionPlan], GeoPoint]:
    """Read a scenario written by :func:`save_plans`."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("schema_version")
    if version != _SCHEMA_VERSION:
        raise ValueError(f"unsupported flight-plan schema version {version!r}")
    origin_data = payload["origin"]
    origin = GeoPoint(
        origin_data["latitude_deg"],
        origin_data["longitude_deg"],
        origin_data["altitude_m"],
    )
    reference = GeodeticReference(origin)
    plans = [plan_from_dict(p, reference) for p in payload["plans"]]
    return plans, origin
