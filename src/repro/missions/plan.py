"""Mission plans: waypoint routes flown by one drone."""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass, field

import numpy as np

from repro.missions.spec import DroneSpec


@dataclass(frozen=True)
class Waypoint:
    """A 3-D mission waypoint in the local NED frame.

    ``acceptance_radius_m`` is the distance at which the navigator
    considers the waypoint reached and sequences to the next one.
    """

    position_ned: tuple[float, float, float]
    acceptance_radius_m: float = 2.0

    @functools.cached_property
    def array(self) -> np.ndarray:
        """Position as an ndarray, cached on first access.

        The cache makes this a shared array: consumers must treat it as
        read-only (the hot loop reads it every tick and never copies).
        ``cached_property`` stores into ``__dict__`` directly, which is
        legal on a frozen dataclass.
        """
        return np.array(self.position_ned, dtype=float)


@dataclass
class MissionPlan:
    """One drone's mission: take off, fly the waypoints, land at the end.

    The home position is the ground point below the first waypoint; the
    landing point is below the last. ``cruise_altitude_m`` is bounded by
    the scenario ceiling (60 ft in the paper's Valencia zone).
    """

    mission_id: int
    drone: DroneSpec
    waypoints: list[Waypoint]
    cruise_altitude_m: float = 15.0
    has_turns: bool = field(default=False)
    description: str = ""

    def __post_init__(self) -> None:
        if len(self.waypoints) < 2:
            raise ValueError("a mission needs at least two waypoints")
        if self.cruise_altitude_m <= 0.0:
            raise ValueError("cruise_altitude_m must be positive")

    @functools.cached_property
    def home_ned(self) -> np.ndarray:
        """Ground position below the first waypoint (NED, z = 0).

        Cached and shared; treat as read-only.
        """
        first = self.waypoints[0].array
        return np.array([first[0], first[1], 0.0])

    @functools.cached_property
    def landing_ned(self) -> np.ndarray:
        """Ground position below the last waypoint (NED, z = 0).

        Cached and shared; treat as read-only.
        """
        last = self.waypoints[-1].array
        return np.array([last[0], last[1], 0.0])

    @property
    def cruise_length_m(self) -> float:
        """Length of the cruise polyline (excludes climb and descent)."""
        return polyline_length([wp.array for wp in self.waypoints])

    @property
    def total_length_m(self) -> float:
        """Full route length including vertical climb and descent legs."""
        return self.cruise_length_m + 2.0 * self.cruise_altitude_m

    def estimated_duration_s(
        self, climb_speed_m_s: float = 2.0, descent_speed_m_s: float = 1.0
    ) -> float:
        """Rough gold-run duration estimate used for mission timeouts."""
        if climb_speed_m_s <= 0.0 or descent_speed_m_s <= 0.0:
            raise ValueError(
                "climb_speed_m_s and descent_speed_m_s must be positive, got "
                f"{climb_speed_m_s} and {descent_speed_m_s}"
            )
        return (
            self.cruise_altitude_m / climb_speed_m_s
            + self.cruise_length_m / self.drone.cruise_speed_m_s
            + self.cruise_altitude_m / descent_speed_m_s
            + 10.0
        )


def route_polyline(plan: MissionPlan) -> list[np.ndarray]:
    """The assigned 3-D route: climb, cruise waypoints, descend.

    This is the reference the bubble monitor measures deviation against;
    the bubble travels along this polyline with the drone.
    """
    points = [plan.home_ned]
    points.extend(wp.array for wp in plan.waypoints)
    points.append(plan.landing_ned)
    return points


def polyline_length(points: list[np.ndarray]) -> float:
    """Sum of segment lengths of a polyline."""
    total = 0.0
    for a, b in zip(points, points[1:]):
        delta = b - a
        total += math.sqrt(float(delta @ delta))
    return total


def distance_to_polyline(point: np.ndarray, polyline: list[np.ndarray]) -> float:
    """Shortest 3-D distance from ``point`` to a polyline chain."""
    best = math.inf
    for a, b in zip(polyline, polyline[1:]):
        seg = b - a
        seg_len_sq = float(seg @ seg)
        if seg_len_sq < 1e-12:
            candidate = point - a
        else:
            t = float((point - a) @ seg) / seg_len_sq
            t = min(1.0, max(0.0, t))
            candidate = point - (a + t * seg)
        dist = math.sqrt(float(candidate @ candidate))
        if dist < best:
            best = dist
    return best
