"""The paper's Valencia U-space scenario: 10 urban missions.

Section III-B of the paper: an area of high-density controlled traffic
over the urban centre of Valencia, Spain — 25 km^2, 60 ft ceiling, ten
drones with distinct payloads and velocities (2 at 5 km/h, 1 at 10 km/h,
3 at 12 km/h, 3 at 14 km/h, 1 at 25 km/h), flying North-South,
East-West, and diagonal headings; four missions include turning points.

The exact Valencia coordinates are not published, so the generator lays
out a matching mission mix (same speed distribution, heading diversity,
and turn count) inside a 5 km x 5 km local frame anchored at the
Valencia city centre. Leg lengths are sized so a full-scale
(``scale=1.0``) gold run lasts roughly the paper's 491 s average; the
``scale`` parameter shrinks all horizontal geometry (and therefore the
gold duration) proportionally for CI-sized campaigns.
"""

from __future__ import annotations

import math

from repro.mathutils import GeoPoint
from repro.missions.plan import MissionPlan, Waypoint
from repro.missions.spec import DroneSpec, kmh

#: Geodetic anchor of the local NED frame (Valencia city centre).
VALENCIA_ORIGIN = GeoPoint(39.4699, -0.3763, 0.0)

#: Scenario ceiling: 60 ft in metres; cruises stay below it.
CEILING_M = 18.29

_CRUISE_ALTITUDE_M = 15.0

#: (cruise km/h, payload-laden mass kg, start x, start y, heading deg,
#:  list of (leg-fraction, turn-after deg), description)
#: Leg fractions are multiplied by the mission's speed-dependent length.
_MISSION_LAYOUT = [
    (5.0, 1.4, (1800.0, -300.0), 180.0, [(1.0, 0.0)], "slow courier, North to South"),
    (5.0, 1.6, (-1900.0, 600.0), 0.0, [(1.0, 0.0)], "slow courier, South to North"),
    (10.0, 1.5, (400.0, -2000.0), 90.0, [(0.6, 90.0), (0.4, 0.0)], "inspection, West to East with L turn"),
    (12.0, 1.5, (-600.0, 1900.0), 270.0, [(1.0, 0.0)], "delivery, East to West"),
    (12.0, 1.8, (1500.0, 1200.0), 225.0, [(0.4, -90.0), (0.35, 90.0), (0.25, 0.0)], "heavy delivery, zig-zag SW"),
    (12.0, 1.3, (-1500.0, -1500.0), 45.0, [(1.0, 0.0)], "light delivery, diagonal NE"),
    (14.0, 1.5, (2000.0, 800.0), 200.0, [(0.55, 60.0), (0.45, 0.0)], "survey, SSW with turn"),
    (14.0, 1.7, (-2000.0, -400.0), 20.0, [(1.0, 0.0)], "survey, NNE"),
    (14.0, 1.4, (300.0, 2100.0), 270.0, [(1.0, 0.0)], "survey, East to West"),
    (25.0, 1.5, (-2200.0, -1800.0), 65.0, [(0.65, -50.0), (0.35, 0.0)], "fast blood delivery, NE with turn"),
]

#: Cruise time budget (s) allocated to the horizontal legs at full scale,
#: chosen so the average full-scale gold run lands near the paper's 491 s.
_CRUISE_TIME_S = 455.0

#: Spacing of intermediate waypoints along long legs (m, full scale).
_WAYPOINT_SPACING_M = 400.0


def valencia_missions(scale: float = 1.0) -> list[MissionPlan]:
    """Build the 10-mission scenario.

    Args:
        scale: multiplier on all horizontal geometry. ``1.0`` is the
            paper-scale scenario (~491 s gold runs); smaller values give
            geometrically similar but shorter missions for fast campaigns.
    """
    if scale <= 0.0:
        raise ValueError("scale must be positive")
    missions: list[MissionPlan] = []
    for index, (speed_kmh, mass, start, heading_deg, legs, desc) in enumerate(_MISSION_LAYOUT):
        mission_id = index + 1
        cruise = kmh(speed_kmh)
        drone = DroneSpec(
            drone_id=mission_id,
            name=f"UAV-{mission_id:02d}",
            cruise_speed_m_s=cruise,
            top_speed_m_s=cruise * 1.4,
            mass_kg=mass,
        )
        total_length = _CRUISE_TIME_S * cruise * scale
        acceptance = max(1.5, 0.35 * cruise)
        waypoints = _build_waypoints(
            start_xy=(start[0] * scale, start[1] * scale),
            heading_deg=heading_deg,
            legs=legs,
            total_length_m=total_length,
            acceptance_m=acceptance,
            spacing_m=_WAYPOINT_SPACING_M * scale,
        )
        missions.append(
            MissionPlan(
                mission_id=mission_id,
                drone=drone,
                waypoints=waypoints,
                cruise_altitude_m=_CRUISE_ALTITUDE_M,
                has_turns=any(abs(turn) > 1.0 for _, turn in legs),
                description=desc,
            )
        )
    return missions


def _build_waypoints(
    start_xy: tuple[float, float],
    heading_deg: float,
    legs: list[tuple[float, float]],
    total_length_m: float,
    acceptance_m: float,
    spacing_m: float,
) -> list[Waypoint]:
    """Trace the legs, dropping intermediate waypoints every ``spacing_m``."""
    if spacing_m <= 0.0:
        raise ValueError(f"spacing_m must be positive, got {spacing_m}")
    x, y = start_xy
    heading = math.radians(heading_deg)
    points: list[tuple[float, float]] = [(x, y)]
    for fraction, turn_after_deg in legs:
        leg_len = fraction * total_length_m
        # Intermediate waypoints keep "midway between waypoints" and
        # "just before a waypoint" injection timings meaningful.
        steps = max(1, int(leg_len // spacing_m))
        step_len = leg_len / steps
        for _ in range(steps):
            x += step_len * math.cos(heading)
            y += step_len * math.sin(heading)
            points.append((x, y))
        heading += math.radians(turn_after_deg)
    return [
        Waypoint(position_ned=(px, py, -_CRUISE_ALTITUDE_M), acceptance_radius_m=acceptance_m)
        for px, py in points
    ]
