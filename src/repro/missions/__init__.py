"""Mission definitions and the paper's Valencia U-space scenario."""

from repro.missions.spec import DroneSpec
from repro.missions.plan import MissionPlan, Waypoint, route_polyline, polyline_length
from repro.missions.valencia import valencia_missions, VALENCIA_ORIGIN
from repro.missions.plan_io import save_plans, load_plans

__all__ = [
    "DroneSpec",
    "MissionPlan",
    "Waypoint",
    "route_polyline",
    "polyline_length",
    "valencia_missions",
    "VALENCIA_ORIGIN",
    "save_plans",
    "load_plans",
]
