"""Per-drone specifications used by missions and bubble sizing."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DroneSpec:
    """Physical and operational characteristics of one mission drone.

    These are the quantities the paper's bubble formulas consume:
    ``dimension_m`` is D_o (wingspan incl. props), ``safety_distance_m``
    is the manufacturer-recommended D_s, and ``top_speed_m_s`` produces
    D_m (the maximum distance covered between two tracking instances).
    ``mass_kg`` varies per mission to model the scenario's "distinct
    payloads".
    """

    drone_id: int
    name: str
    cruise_speed_m_s: float
    top_speed_m_s: float
    mass_kg: float
    dimension_m: float = 0.6
    safety_distance_m: float = 1.5

    def __post_init__(self) -> None:
        if self.cruise_speed_m_s <= 0.0:
            raise ValueError("cruise_speed_m_s must be positive")
        if self.top_speed_m_s < self.cruise_speed_m_s:
            raise ValueError("top_speed_m_s must be >= cruise_speed_m_s")
        if self.mass_kg <= 0.0:
            raise ValueError("mass_kg must be positive")

    def max_distance_per_track_m(self, tracking_interval_s: float = 1.0) -> float:
        """D_m of Eq. 1: top-speed distance between tracking instances."""
        if tracking_interval_s <= 0.0:
            raise ValueError("tracking_interval_s must be positive")
        return self.top_speed_m_s * tracking_interval_s


def kmh(value_km_h: float) -> float:
    """Convert km/h (the paper's unit for drone speeds) to m/s."""
    return value_km_h / 3.6
