"""Exporters: JSONL event logs, Prometheus text, Chrome trace JSON.

Three consumers, three formats, all written through the repo's atomic
writer (reprolint IO001) so a kill mid-export never tears an artifact:

* **JSONL** — one :class:`~repro.obs.trace.TraceEvent` dict per line;
  the format ``python -m repro.obs summarize`` and ``diff`` read, and
  the natural thing to ship to a log pipeline.
* **Prometheus text exposition** — a point-in-time snapshot of a
  :class:`~repro.obs.registry.MetricsRegistry`, written as a file
  (endpoint-file pattern: a node-exporter textfile collector or a
  test can scrape it without this process serving HTTP).
* **Chrome ``trace_event`` JSON** — load in ``chrome://tracing`` or
  Perfetto; spans become duration slices, point events instants. The
  per-subsystem cProfile breakdown from ``repro.perf`` can sit next to
  it on the same timeline scale (both are seconds-since-start).
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Iterable

from repro.core.atomicio import atomic_write_text
from repro.obs.registry import Family, Histogram, MetricsRegistry
from repro.obs.trace import TraceEvent

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


# ---------------------------------------------------------------------------
# JSONL event log


def write_events_jsonl(
    events: Iterable[TraceEvent], path: str | Path
) -> None:
    """One event dict per line, in emission order."""
    lines = [json.dumps(e.to_dict(), sort_keys=True) for e in events]
    atomic_write_text(Path(path), "\n".join(lines) + ("\n" if lines else ""))


def read_events_jsonl(path: str | Path) -> list[TraceEvent]:
    """Inverse of :func:`write_events_jsonl` (blank lines tolerated)."""
    events: list[TraceEvent] = []
    for lineno, line in enumerate(Path(path).read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            events.append(TraceEvent.from_dict(json.loads(line)))
        except (json.JSONDecodeError, KeyError) as exc:
            raise ValueError(f"{path}:{lineno}: malformed trace event: {exc}") from exc
    return events


# ---------------------------------------------------------------------------
# Prometheus text exposition


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _labels_str(names: tuple[str, ...], values: tuple[str, ...], extra: str = "") -> str:
    pairs = [f'{n}="{_escape_label(v)}"' for n, v in zip(names, values)]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _render_family(family: Family) -> list[str]:
    if not _METRIC_NAME_RE.match(family.name):
        raise ValueError(f"invalid Prometheus metric name: {family.name!r}")
    lines = []
    if family.help:
        lines.append(f"# HELP {family.name} {family.help}")
    lines.append(f"# TYPE {family.name} {family.kind}")
    for values, child in family.samples():
        labels = _labels_str(family.label_names, values)
        if isinstance(child, Histogram):
            cumulative = 0
            for bound, count in zip(child.bucket_bounds, child.bucket_counts):
                cumulative = count  # bucket_counts are already cumulative
                le = _labels_str(family.label_names, values, f'le="{bound:g}"')
                lines.append(f"{family.name}_bucket{le} {cumulative}")
            inf = _labels_str(family.label_names, values, 'le="+Inf"')
            lines.append(f"{family.name}_bucket{inf} {child.count}")
            lines.append(f"{family.name}_sum{labels} {child.total:g}")
            lines.append(f"{family.name}_count{labels} {child.count}")
        else:
            lines.append(f"{family.name}{labels} {child.value:g}")
    return lines


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text exposition format (v0.0.4)."""
    lines: list[str] = []
    for family in registry.families():
        lines.extend(_render_family(family))
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(registry: MetricsRegistry, path: str | Path) -> None:
    atomic_write_text(Path(path), render_prometheus(registry))


def parse_prometheus(text: str) -> dict[str, float]:
    """Minimal exposition parser: ``name{labels}`` -> value.

    Good enough for the CI smoke check and tests; not a full client.
    """
    out: dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            key, value = line.rsplit(" ", 1)
            out[key] = float(value)
        except ValueError as exc:
            raise ValueError(f"line {lineno}: malformed sample {line!r}") from exc
    return out


# ---------------------------------------------------------------------------
# Chrome trace_event JSON


def chrome_trace_events(
    events: Iterable[TraceEvent], pid: int = 1, tid: int = 1
) -> list[dict[str, Any]]:
    """Map our events onto the Chrome ``trace_event`` array format."""
    out: list[dict[str, Any]] = []
    for event in events:
        record: dict[str, Any] = {
            "name": event.name,
            "ph": event.kind,
            "ts": event.time_s * 1e6,  # microseconds
            "pid": pid,
            "tid": tid,
        }
        if event.attrs:
            record["args"] = event.attrs
        if event.kind == "i":
            record["s"] = "t"  # thread-scoped instant
        out.append(record)
    return out


def write_chrome_trace(
    events: Iterable[TraceEvent], path: str | Path, pid: int = 1, tid: int = 1
) -> None:
    payload = {
        "traceEvents": chrome_trace_events(events, pid=pid, tid=tid),
        "displayTimeUnit": "ms",
    }
    atomic_write_text(Path(path), json.dumps(payload) + "\n")
