"""``repro.obs`` — tracing, metrics, and a flight data recorder.

The observability plane for the reproduction: a Prometheus-style
metrics registry, structured spans and point events, and a crash-proof
black box of the last seconds of every run, all designed so that
*disabled* observability costs one no-op call per step and *enabled*
observability cannot change a single simulated bit (no RNG draws, no
mutation of observed objects — enforced by reprolint OBS001 and the
bit-exactness tests).

See DESIGN.md section 12 for the architecture and ``python -m
repro.obs --help`` for the trace/black-box inspection CLI.
"""

from repro.obs.blackbox import (
    BLACKBOX_SCHEMA,
    COLUMNS,
    BlackBox,
    blackbox_column,
    load_blackbox,
)
from repro.obs.export import (
    chrome_trace_events,
    parse_prometheus,
    read_events_jsonl,
    render_prometheus,
    write_chrome_trace,
    write_events_jsonl,
    write_prometheus,
)
from repro.obs.observer import NULL_OBSERVER, Observer, run_metadata
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Family,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_default_registry,
    set_default_registry,
)
from repro.obs.trace import (
    NULL_SINK,
    EventSink,
    SpanNode,
    TraceCollector,
    TraceEvent,
    build_span_tree,
    iter_spans,
    render_span_tree,
)

__all__ = [
    "BLACKBOX_SCHEMA",
    "COLUMNS",
    "DEFAULT_BUCKETS",
    "NULL_OBSERVER",
    "NULL_REGISTRY",
    "NULL_SINK",
    "BlackBox",
    "Counter",
    "EventSink",
    "Family",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "Observer",
    "SpanNode",
    "TraceCollector",
    "TraceEvent",
    "blackbox_column",
    "build_span_tree",
    "chrome_trace_events",
    "get_default_registry",
    "iter_spans",
    "load_blackbox",
    "parse_prometheus",
    "read_events_jsonl",
    "render_prometheus",
    "render_span_tree",
    "run_metadata",
    "set_default_registry",
    "write_chrome_trace",
    "write_events_jsonl",
    "write_prometheus",
]
