"""Structured spans and point events: the tracing side of ``repro.obs``.

The data model is deliberately tiny — a flat, append-only list of
:class:`TraceEvent` records with three kinds:

* ``"B"`` / ``"E"`` — begin/end of a *span* (campaign, case, run,
  flight phase), matched by ``span_id`` and nested via ``parent_id``;
* ``"i"`` — an instant *point event* (injection start/stop, failsafe
  transition, IMU switchover, bubble violation, harness error).

The letters are the Chrome ``trace_event`` phase codes, so the export
to ``chrome://tracing`` / Perfetto in :mod:`repro.obs.export` is a
field-for-field mapping.

Instrumented modules (commander, failsafe engine, redundancy manager)
do not know about span bookkeeping: they hold an :class:`EventSink`
attribute — :data:`NULL_SINK` by default, a :class:`TraceCollector`
when observability is on — and call ``emit``/``phase`` at their
transition points. Timestamps are always *passed in* by the caller
(simulated seconds inside the vehicle, campaign-relative wall seconds
in the harness); the collector itself never reads a clock, which keeps
traces of a deterministic run deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


@dataclass(slots=True)
class TraceEvent:
    """One trace record (span begin/end or instant event)."""

    kind: str  # "B" (span begin) | "E" (span end) | "i" (instant)
    name: str
    time_s: float
    span_id: int = 0
    parent_id: int | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "kind": self.kind,
            "name": self.name,
            "time_s": self.time_s,
            "span_id": self.span_id,
        }
        if self.parent_id is not None:
            out["parent_id"] = self.parent_id
        if self.attrs:
            out["attrs"] = self.attrs
        return out

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "TraceEvent":
        return TraceEvent(
            kind=data["kind"],
            name=data["name"],
            time_s=data["time_s"],
            span_id=data.get("span_id", 0),
            parent_id=data.get("parent_id"),
            attrs=data.get("attrs", {}),
        )


class EventSink:
    """The no-op base every instrumented module holds by default.

    Both methods ignore everything; :class:`TraceCollector` overrides
    them. Keeping the disabled path a plain attribute call (no ``if``)
    is what lets the flight stack stay instrumented at zero branch
    cost — the same trick as :data:`repro.obs.registry.NULL_REGISTRY`.
    """

    __slots__ = ()

    def emit(self, name: str, time_s: float, **attrs: Any) -> None:
        pass

    def phase(self, time_s: float, name: str, **attrs: Any) -> None:
        pass


#: Shared no-op sink (stateless, so one instance serves the process).
NULL_SINK = EventSink()


class TraceCollector(EventSink):
    """Collects spans and events for one campaign, case, or run."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []
        self._next_id = 1
        self._open: list[TraceEvent] = []  # span-begin stack
        self._phase_span: TraceEvent | None = None
        #: Optional tap called with every point event — the observer
        #: uses it to feed metrics and the telemetry broker without the
        #: emitting module knowing either exists.
        self.on_point: Callable[[TraceEvent], None] | None = None

    # -- spans ---------------------------------------------------------

    @property
    def _parent(self) -> int | None:
        return self._open[-1].span_id if self._open else None

    def begin_span(self, name: str, time_s: float, **attrs: Any) -> int:
        span_id = self._next_id
        self._next_id += 1
        event = TraceEvent("B", name, time_s, span_id, self._parent, dict(attrs))
        self.events.append(event)
        self._open.append(event)
        return span_id

    def end_span(self, time_s: float, **attrs: Any) -> None:
        """End the innermost open span (a phase span ends first)."""
        if not self._open:
            raise ValueError("end_span with no open span")
        begin = self._open.pop()
        if begin is self._phase_span:
            self._phase_span = None
        self.events.append(
            TraceEvent("E", begin.name, time_s, begin.span_id, begin.parent_id, dict(attrs))
        )

    def end_all(self, time_s: float) -> None:
        """Close every open span (crash-path flush)."""
        while self._open:
            self.end_span(time_s)

    # -- flight phases -------------------------------------------------

    def phase(self, time_s: float, name: str, **attrs: Any) -> None:
        """Transition the current flight-phase span.

        Phases are mutually exclusive, so the previous phase span (if
        any) is ended at the same timestamp the new one begins. They
        nest under whatever span is currently open (usually ``run``).
        """
        if self._phase_span is not None and self._open and self._open[-1] is self._phase_span:
            self.end_span(time_s)
        self.begin_span(f"phase:{name}", time_s, **attrs)
        self._phase_span = self._open[-1]

    # -- point events --------------------------------------------------

    def emit(self, name: str, time_s: float, **attrs: Any) -> None:
        event = TraceEvent("i", name, time_s, 0, self._parent, dict(attrs))
        self.events.append(event)
        if self.on_point is not None:
            self.on_point(event)

    # -- queries -------------------------------------------------------

    def points(self, name: str | None = None) -> list[TraceEvent]:
        """Instant events, optionally filtered by name."""
        return [
            e for e in self.events if e.kind == "i" and (name is None or e.name == name)
        ]


# ---------------------------------------------------------------------------
# span-tree reconstruction (shared by the CLI and the demo)


@dataclass
class SpanNode:
    """One reconstructed span with its children and point events."""

    name: str
    span_id: int
    start_s: float
    end_s: float | None
    attrs: dict[str, Any]
    end_attrs: dict[str, Any] = field(default_factory=dict)
    children: list["SpanNode"] = field(default_factory=list)
    points: list[TraceEvent] = field(default_factory=list)

    @property
    def duration_s(self) -> float | None:
        if self.end_s is None:
            return None
        return self.end_s - self.start_s


def build_span_tree(events: list[TraceEvent]) -> tuple[list[SpanNode], list[TraceEvent]]:
    """Rebuild the span forest from a flat event list.

    Returns ``(roots, orphan_points)`` where orphan points are instant
    events that carry no parent span (e.g. harness-level notes).
    """
    nodes: dict[int, SpanNode] = {}
    roots: list[SpanNode] = []
    orphans: list[TraceEvent] = []
    for event in events:
        if event.kind == "B":
            node = SpanNode(
                name=event.name,
                span_id=event.span_id,
                start_s=event.time_s,
                end_s=None,
                attrs=event.attrs,
            )
            nodes[event.span_id] = node
            parent = nodes.get(event.parent_id) if event.parent_id is not None else None
            if parent is not None:
                parent.children.append(node)
            else:
                roots.append(node)
        elif event.kind == "E":
            node = nodes.get(event.span_id)
            if node is not None:
                node.end_s = event.time_s
                node.end_attrs = event.attrs
        else:  # instant
            parent = nodes.get(event.parent_id) if event.parent_id is not None else None
            if parent is not None:
                parent.points.append(event)
            else:
                orphans.append(event)
    return roots, orphans


def render_span_tree(
    roots: list[SpanNode], orphans: list[TraceEvent] | None = None
) -> str:
    """ASCII rendering of the span forest with nested point events."""
    lines: list[str] = []

    def fmt_attrs(attrs: dict[str, Any]) -> str:
        if not attrs:
            return ""
        body = ", ".join(f"{k}={v}" for k, v in attrs.items())
        return f"  [{body}]"

    def walk(node: SpanNode, indent: int) -> None:
        pad = "  " * indent
        duration = node.duration_s
        dur = f"{duration:.2f}s" if duration is not None else "open"
        merged = {**node.attrs, **node.end_attrs}
        lines.append(f"{pad}{node.name}  {node.start_s:.2f}s +{dur}{fmt_attrs(merged)}")
        timeline: list[tuple[float, int, TraceEvent | SpanNode]] = []
        for i, point in enumerate(node.points):
            timeline.append((point.time_s, i, point))
        for i, child in enumerate(node.children):
            timeline.append((child.start_s, len(node.points) + i, child))
        for _t, _i, item in sorted(timeline, key=lambda e: (e[0], e[1])):
            if isinstance(item, SpanNode):
                walk(item, indent + 1)
            else:
                lines.append(
                    f"{pad}  * {item.name} @ {item.time_s:.2f}s{fmt_attrs(item.attrs)}"
                )

    for root in roots:
        walk(root, 0)
    for orphan in orphans or []:
        lines.append(f"* {orphan.name} @ {orphan.time_s:.2f}s{fmt_attrs(orphan.attrs)}")
    return "\n".join(lines)


def iter_spans(roots: list[SpanNode]) -> Iterator[SpanNode]:
    """Depth-first iteration over a span forest."""
    stack = list(reversed(roots))
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children))
