"""``python -m repro.obs`` — inspect traces and black boxes.

Three subcommands:

* ``summarize <file>`` — print the span tree, point-event counts, and
  (for a black box) the run metadata. Accepts a JSONL event log or a
  black-box dump; black boxes embed their run's trace events, so one
  artifact answers both "what happened" and "when".
* ``diff <a> <b>`` — compare two traces: event-count deltas per name
  and per-span duration deltas. The tool for "what changed between the
  baseline crash and the mitigated rescue".
* ``render <blackbox>`` — draw the recorded trajectory in the paper's
  Figure 3-5 style: a top-down north/east plot plus an altitude strip,
  with the fault-injection window marked.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter as TallyCounter
from pathlib import Path
from typing import Any

import numpy as np

from repro.obs.blackbox import blackbox_column, load_blackbox
from repro.obs.export import read_events_jsonl
from repro.obs.trace import TraceEvent, build_span_tree, iter_spans, render_span_tree


def _load_events(path: Path) -> tuple[list[TraceEvent], dict[str, Any] | None]:
    """Events from a JSONL log or a black-box dump (plus its metadata)."""
    if path.suffix == ".jsonl":
        return read_events_jsonl(path), None
    payload = load_blackbox(path)
    events = [TraceEvent.from_dict(d) for d in payload.get("events", [])]
    return events, payload["metadata"]


# ---------------------------------------------------------------------------
# summarize


def cmd_summarize(args: argparse.Namespace) -> int:
    path = Path(args.file)
    events, metadata = _load_events(path)
    if metadata:
        print("run metadata:")
        for key in sorted(metadata):
            print(f"  {key}: {metadata[key]}")
        print()
    roots, orphans = build_span_tree(events)
    if roots or orphans:
        print("span tree:")
        print(render_span_tree(roots, orphans))
        print()
    tally = TallyCounter(e.name for e in events if e.kind == "i")
    if tally:
        print("point events:")
        for name, count in sorted(tally.items()):
            print(f"  {count:5d}  {name}")
    if not events:
        print("(no trace events)")
    return 0


# ---------------------------------------------------------------------------
# diff


def _span_durations(events: list[TraceEvent]) -> dict[str, float]:
    """Total duration per span name (closed spans only)."""
    roots, _ = build_span_tree(events)
    durations: dict[str, float] = {}
    for node in iter_spans(roots):
        if node.duration_s is not None:
            durations[node.name] = durations.get(node.name, 0.0) + node.duration_s
    return durations


def cmd_diff(args: argparse.Namespace) -> int:
    events_a, _ = _load_events(Path(args.a))
    events_b, _ = _load_events(Path(args.b))
    tally_a = TallyCounter(e.name for e in events_a if e.kind == "i")
    tally_b = TallyCounter(e.name for e in events_b if e.kind == "i")
    names = sorted(set(tally_a) | set(tally_b))
    print(f"point events ({args.a} vs {args.b}):")
    if not names:
        print("  (none in either trace)")
    for name in names:
        a, b = tally_a.get(name, 0), tally_b.get(name, 0)
        marker = "  " if a == b else ("+ " if b > a else "- ")
        print(f"  {marker}{name}: {a} -> {b}")
    dur_a = _span_durations(events_a)
    dur_b = _span_durations(events_b)
    span_names = sorted(set(dur_a) | set(dur_b))
    if span_names:
        print("span durations (s):")
        for name in span_names:
            a_s = dur_a.get(name)
            b_s = dur_b.get(name)
            a_txt = f"{a_s:.2f}" if a_s is not None else "-"
            b_txt = f"{b_s:.2f}" if b_s is not None else "-"
            delta = f" ({b_s - a_s:+.2f})" if a_s is not None and b_s is not None else ""
            print(f"  {name}: {a_txt} -> {b_txt}{delta}")
    return 0


# ---------------------------------------------------------------------------
# render


def _render_topdown(
    north: np.ndarray,
    east: np.ndarray,
    fault_active: np.ndarray,
    width: int,
    height: int,
) -> str:
    """Figure 3-5 style top-down plot: flown ``*``, injected ``#``,
    end ``X`` (same glyphs as :mod:`repro.core.figures`)."""
    lo_n, hi_n = float(north.min()), float(north.max())
    lo_e, hi_e = float(east.min()), float(east.max())
    span_n = max(hi_n - lo_n, 1e-6)
    span_e = max(hi_e - lo_e, 1e-6)
    grid = [[" "] * width for _ in range(height)]
    for n, e, faulted in zip(north, east, fault_active):
        col = int((e - lo_e) / span_e * (width - 1))
        row = int((1.0 - (n - lo_n) / span_n) * (height - 1))
        grid[row][col] = "#" if faulted else "*"
    col = int((east[-1] - lo_e) / span_e * (width - 1))
    row = int((1.0 - (north[-1] - lo_n) / span_n) * (height - 1))
    grid[row][col] = "X"
    return "\n".join("".join(r) for r in grid)


def _render_altitude(
    times: np.ndarray,
    altitude: np.ndarray,
    fault_active: np.ndarray,
    width: int,
    height: int,
) -> str:
    """Altitude-vs-time strip chart with the injection window marked."""
    lo_t, hi_t = float(times.min()), float(times.max())
    lo_a, hi_a = float(altitude.min()), float(altitude.max())
    span_t = max(hi_t - lo_t, 1e-6)
    span_a = max(hi_a - lo_a, 1e-6)
    grid = [[" "] * width for _ in range(height)]
    for t, a, faulted in zip(times, altitude, fault_active):
        col = int((t - lo_t) / span_t * (width - 1))
        row = int((1.0 - (a - lo_a) / span_a) * (height - 1))
        grid[row][col] = "#" if faulted else "*"
    lines = ["".join(r) for r in grid]
    lines.append(
        f"t: {lo_t:.1f}s .. {hi_t:.1f}s   alt: {lo_a:.1f}m .. {hi_a:.1f}m"
    )
    return "\n".join(lines)


def cmd_render(args: argparse.Namespace) -> int:
    payload = load_blackbox(Path(args.file))
    if payload["rows"].shape[0] == 0:
        print("(black box is empty)")
        return 1
    times = blackbox_column(payload, "time_s")
    north = blackbox_column(payload, "truth_pos_n")
    east = blackbox_column(payload, "truth_pos_e")
    down = blackbox_column(payload, "truth_pos_d")
    fault_active = blackbox_column(payload, "fault_active") > 0.5
    metadata = payload["metadata"]
    header = ", ".join(f"{k}={metadata[k]}" for k in sorted(metadata))
    if header:
        print(header)
    print(f"last {times[-1] - times[0]:.1f}s of flight "
          f"({payload['rows'].shape[0]} steps recorded)")
    print()
    print("top-down (north up, east right; flown '*', injected '#', end 'X'):")
    print(_render_topdown(north, east, fault_active, args.width, args.height))
    print()
    print("altitude (m above origin):")
    print(_render_altitude(times, -down, fault_active, args.width, args.height // 2))
    return 0


# ---------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect repro.obs traces and black boxes.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize", help="print span tree and event counts")
    p_sum.add_argument("file", help="JSONL event log or black-box dump")
    p_sum.set_defaults(func=cmd_summarize)

    p_diff = sub.add_parser("diff", help="compare two traces")
    p_diff.add_argument("a", help="baseline trace (JSONL or black box)")
    p_diff.add_argument("b", help="comparison trace (JSONL or black box)")
    p_diff.set_defaults(func=cmd_diff)

    p_render = sub.add_parser(
        "render", help="draw a black box as Figure 3-5 style ASCII plots"
    )
    p_render.add_argument("file", help="black-box dump")
    p_render.add_argument("--width", type=int, default=72)
    p_render.add_argument("--height", type=int, default=24)
    p_render.set_defaults(func=cmd_render)

    args = parser.parse_args(argv)
    try:
        result: int = args.func(args)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return result


if __name__ == "__main__":
    sys.exit(main())
