"""Metrics registry: counters, gauges, and histograms with labels.

The instrument model follows the Prometheus client conventions the
serving world standardised on — a *registry* owns named metric
families, a family with label names hands out per-label-set children
via :meth:`~Metric.labels`, and the text exposition format in
:mod:`repro.obs.export` renders the whole registry.

Two properties matter more here than in a web service:

* **Determinism.** Instruments hold plain floats and dicts; nothing
  reads a clock or draws randomness, so a metrics snapshot taken after
  a deterministic run is itself deterministic (reprolint OBS001 keeps
  it that way). Families and children render in sorted order.
* **Branchless disabled mode.** :data:`NULL_REGISTRY` hands out
  singleton no-op instruments, so instrumented code holds an attribute
  whose methods do nothing — no ``if enabled`` at any call site, which
  is what keeps the obs-disabled hot loop inside the bench budget.
"""

from __future__ import annotations

from typing import Iterator, Sequence

#: Default latency-ish bucket boundaries (seconds); chosen to cover
#: both per-case wall clock and per-run flight durations at any scale.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 60.0, 120.0, 300.0, 600.0,
)

LabelValues = tuple[str, ...]


class Counter:
    """Monotonically increasing count (one child of a family)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0.0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``bucket_counts[i]`` counts observations ``<= bucket_bounds[i]``;
    the implicit ``+Inf`` bucket is ``count``.
    """

    __slots__ = ("bucket_bounds", "bucket_counts", "count", "total")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram buckets must be sorted ascending")
        self.bucket_bounds = bounds
        self.bucket_counts = [0] * len(bounds)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        for i, bound in enumerate(self.bucket_bounds):
            if value <= bound:
                self.bucket_counts[i] += 1


class NullCounter(Counter):
    """No-op counter; every instrumented call is a cheap pass."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


Instrument = Counter | Gauge | Histogram

_KINDS: dict[str, type[Instrument]] = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
}


class Family:
    """One named metric family: its help text, kind, and children.

    A family without label names has exactly one child (the empty
    label tuple); families with labels create children on first use of
    each label-value combination.
    """

    __slots__ = ("name", "kind", "help", "label_names", "children", "_buckets")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        label_names: tuple[str, ...],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = label_names
        self._buckets = tuple(buckets)
        self.children: dict[LabelValues, Instrument] = {}
        if not label_names:
            self.children[()] = self._make()

    def _make(self) -> Instrument:
        if self.kind == "histogram":
            return Histogram(self._buckets)
        return _KINDS[self.kind]()

    @property
    def default(self) -> Instrument:
        """The unlabelled child (only valid without label names)."""
        if self.label_names:
            raise ValueError(
                f"metric {self.name!r} has labels {self.label_names}; "
                "use .labels(...)"
            )
        return self.children[()]

    def labels(self, **labels: str) -> Instrument:
        """Child instrument for one label-value combination."""
        if tuple(sorted(labels)) != tuple(sorted(self.label_names)):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.label_names}, "
                f"got {tuple(labels)}"
            )
        values = tuple(str(labels[k]) for k in self.label_names)
        child = self.children.get(values)
        if child is None:
            child = self.children[values] = self._make()
        return child

    def samples(self) -> Iterator[tuple[LabelValues, Instrument]]:
        """Children in sorted label order (deterministic export)."""
        for values in sorted(self.children):
            yield values, self.children[values]


class MetricsRegistry:
    """Owns metric families; get-or-create by name, kind-checked."""

    def __init__(self) -> None:
        self._families: dict[str, Family] = {}

    def _register(
        self,
        name: str,
        kind: str,
        help: str,
        label_names: Sequence[str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Family:
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind or family.label_names != tuple(label_names):
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind} "
                    f"with labels {family.label_names}"
                )
            return family
        family = Family(name, kind, help, tuple(label_names), buckets)
        self._families[name] = family
        return family

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Family:
        return self._register(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Family:
        return self._register(name, "gauge", help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Family:
        return self._register(name, "histogram", help, labels, buckets)

    def families(self) -> list[Family]:
        """All families in sorted name order (deterministic export)."""
        return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> Family | None:
        return self._families.get(name)

    def value(self, name: str, **labels: str) -> float:
        """Convenience: current value of a counter/gauge child."""
        family = self._families[name]
        child = family.labels(**labels) if labels else family.default
        if isinstance(child, Histogram):
            raise ValueError(f"metric {name!r} is a histogram; read its fields")
        return child.value

    def as_dict(self) -> dict[str, dict[str, float]]:
        """Flat snapshot for tests/logs: family -> {label-key: value}."""
        out: dict[str, dict[str, float]] = {}
        for family in self.families():
            rows: dict[str, float] = {}
            for values, child in family.samples():
                key = ",".join(
                    f"{k}={v}" for k, v in zip(family.label_names, values)
                )
                if isinstance(child, Histogram):
                    rows[f"{key}#count" if key else "#count"] = float(child.count)
                    rows[f"{key}#sum" if key else "#sum"] = child.total
                else:
                    rows[key] = child.value
            out[family.name] = rows
        return out


class _NullFamily(Family):
    """Family whose every child is the same no-op instrument."""

    __slots__ = ("_null",)

    def __init__(self, kind: str) -> None:
        super().__init__(name=f"null_{kind}", kind=kind, help="", label_names=())
        null_kinds: dict[str, Instrument] = {
            "counter": NullCounter(),
            "gauge": NullGauge(),
            "histogram": NullHistogram(),
        }
        self._null = null_kinds[kind]
        self.children[()] = self._null

    @property
    def default(self) -> Instrument:
        return self._null

    def labels(self, **labels: str) -> Instrument:
        return self._null


class NullRegistry(MetricsRegistry):
    """Registry for disabled mode: every family is a shared no-op.

    Instrumented code does ``registry.counter(...).labels(...).inc()``
    unconditionally; with this registry the chain terminates in a pass
    statement, so there is no observer branch anywhere in the hot path.
    """

    def __init__(self) -> None:
        super().__init__()
        self._nulls = {kind: _NullFamily(kind) for kind in _KINDS}

    def _register(
        self,
        name: str,
        kind: str,
        help: str,
        label_names: Sequence[str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Family:
        return self._nulls[kind]

    def families(self) -> list[Family]:
        return []


#: The shared disabled-mode registry (no-op, allocation-free to use).
NULL_REGISTRY = NullRegistry()

#: Process-global default registry, in the Prometheus-client tradition:
#: harness-side code that wants "the" registry without plumbing uses
#: this; tests swap it with :func:`set_default_registry`.
_DEFAULT_REGISTRY = MetricsRegistry()


def get_default_registry() -> MetricsRegistry:
    return _DEFAULT_REGISTRY


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-global registry; returns the previous one."""
    global _DEFAULT_REGISTRY
    previous = _DEFAULT_REGISTRY
    _DEFAULT_REGISTRY = registry
    return previous
