"""The :class:`Observer` facade: one object the vehicle reports into.

``UavSystem`` holds exactly one observer attribute. In disabled mode it
is :data:`NULL_OBSERVER`, whose hooks are empty methods — the hot loop
pays one attribute lookup and a no-op call per step, nothing else. In
enabled mode the observer:

* begins a ``run`` span (and, via the sinks it installs on the
  commander / failsafe engine / redundancy manager, nested
  flight-phase spans and transition point events);
* detects injection-window edges and bubble-violation increments each
  step and emits them as point events;
* records every step into the :class:`~repro.obs.blackbox.BlackBox`;
* mirrors every point event into the metrics registry (and, when a
  telemetry broker is attached, onto the broker's ``event/<id>``
  topic, where the existing :class:`~repro.telemetry.tracker.Tracker`
  picks it up);
* on run end, dumps the black box for CRASHED / FAILSAFE / TIMEOUT
  outcomes.

The contract (enforced by tests and reprolint OBS001): hooks *read*
the system and never mutate it, draw no randomness, and therefore
cannot change a single bit of any run.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.obs.blackbox import BlackBox
from repro.obs.registry import (
    NULL_REGISTRY,
    MetricsRegistry,
    get_default_registry,
)
from repro.obs.trace import NULL_SINK, TraceCollector, TraceEvent

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.system import UavSystem
    from repro.telemetry.broker import Broker


class Observer:
    """Instrumentation plane for one vehicle run."""

    enabled = True

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        trace: TraceCollector | None = None,
        blackbox: BlackBox | None = None,
        blackbox_dir: str | Path | None = None,
        blackbox_name: str | None = None,
    ) -> None:
        self.metrics = registry if registry is not None else get_default_registry()
        self.trace = trace if trace is not None else TraceCollector()
        self.blackbox = blackbox if blackbox is not None else BlackBox()
        self.blackbox_dir = Path(blackbox_dir) if blackbox_dir is not None else None
        self.blackbox_name = blackbox_name
        self.trace.on_point = self._on_point
        self._events_total = self.metrics.counter(
            "obs_events_total",
            "Point events observed, by event name.",
            labels=("event",),
        )
        self._runs_total = self.metrics.counter(
            "runs_total", "Vehicle runs finished, by outcome.", labels=("outcome",)
        )
        self._flight_seconds = self.metrics.histogram(
            "run_flight_duration_seconds", "Flight duration per finished run."
        )
        self._broker: "Broker | None" = None
        self._broker_drone_id = 0
        # Edge-detection state (observer-internal; never read by the sim).
        self._fault_active = False
        self._inner = 0
        self._outer = 0

    # -- wiring --------------------------------------------------------

    def attach_broker(self, broker: "Broker", drone_id: int) -> None:
        """Mirror point events onto ``event/<drone_id>`` for the tracker."""
        self._broker = broker
        self._broker_drone_id = drone_id

    def _on_point(self, event: TraceEvent) -> None:
        self._events_total.labels(event=event.name).inc()
        if self._broker is not None:
            from repro.telemetry.messages import FlightEvent

            self._broker.publish(
                f"event/{self._broker_drone_id}",
                FlightEvent(
                    drone_id=self._broker_drone_id,
                    time_s=event.time_s,
                    kind=event.name,
                    data=dict(event.attrs),
                ),
            )

    # -- vehicle hooks (called by UavSystem) ---------------------------

    def on_run_start(self, system: "UavSystem") -> None:
        self.trace.begin_span(
            "run",
            system.physics.time_s,
            mission_id=system.plan.mission_id,
            fault=system.fault.label if system.fault else "Gold Run",
        )

    def on_step(self, system: "UavSystem") -> None:
        """Per-tick hook: black-box row plus edge-triggered events.

        This runs every simulation step, so the injector's activity
        check is inlined (spec window compare) rather than routed
        through ``injector.is_active``.
        """
        t = system.physics.time_s
        spec = system.injector.spec
        active = spec is not None and spec.is_active(t)
        self.blackbox.record(system, active)
        if active != self._fault_active:
            self._fault_active = active
            if active:
                self.trace.emit(
                    "injection.start",
                    t,
                    fault=system.fault.label if system.fault else "?",
                )
            else:
                self.trace.emit("injection.stop", t)
        counts = system.bubble_monitor.counts
        if counts.inner != self._inner:
            self._inner = counts.inner
            self.trace.emit("bubble.inner_violation", t, total=counts.inner)
        if counts.outer != self._outer:
            self._outer = counts.outer
            self.trace.emit("bubble.outer_violation", t, total=counts.outer)

    def on_run_end(self, system: "UavSystem") -> str | None:
        """Close spans, bump outcome metrics, dump the FDR if warranted.

        Returns the black-box artifact path for non-completed runs with
        a configured ``blackbox_dir`` (``None`` otherwise); the caller
        carries it into the :class:`~repro.system.MissionResult`.
        """
        t = system.physics.time_s
        outcome = system.commander.outcome
        outcome_value = outcome.value if outcome is not None else "unknown"
        self.trace.emit("mission.outcome", t, outcome=outcome_value)
        self.trace.end_all(t)
        self._runs_total.labels(outcome=outcome_value).inc()
        takeoff = system.commander.takeoff_time_s or 0.0
        end = system.commander.end_time_s or t
        self._flight_seconds.default.observe(end - takeoff)
        # String compare, not MissionOutcome identity: importing the
        # flightstack here would cycle (commander imports obs.trace).
        if self.blackbox_dir is None or (outcome is not None and outcome.value == "completed"):
            return None
        name = self.blackbox_name or (
            f"blackbox_mission{system.plan.mission_id:02d}.json"
        )
        return self.blackbox.dump(
            self.blackbox_dir / name,
            metadata=run_metadata(system),
            events=[e.to_dict() for e in self.trace.events],
        )


def run_metadata(system: "UavSystem") -> dict[str, Any]:
    """Post-mortem header: everything needed to identify the run."""
    return {
        "mission_id": system.plan.mission_id,
        "fault": system.fault.label if system.fault else "Gold Run",
        "outcome": (
            system.commander.outcome.value
            if system.commander.outcome is not None
            else "unknown"
        ),
        "failsafe_trigger": system.failsafe.trigger.value,
        "isolation_outcome": system.failsafe.isolation_outcome.value,
        "imu_switchovers": len(system.redundancy.events),
        "seed": system.config.seed,
        "end_time_s": system.physics.time_s,
    }


class _NullObserver(Observer):
    """Disabled mode: every hook is an immediate return.

    A singleton (:data:`NULL_OBSERVER`) shared by every uninstrumented
    vehicle; it owns no buffers and installs :data:`NULL_SINK` — using
    it costs the hot loop one no-op method call per step.
    """

    enabled = False

    def __init__(self) -> None:
        self.metrics = NULL_REGISTRY
        self.trace = NULL_SINK  # type: ignore[assignment]
        self.blackbox = None  # type: ignore[assignment]
        self.blackbox_dir = None
        self.blackbox_name = None

    def attach_broker(self, broker: "Broker", drone_id: int) -> None:
        pass

    def on_run_start(self, system: "UavSystem") -> None:
        pass

    def on_step(self, system: "UavSystem") -> None:
        pass

    def on_run_end(self, system: "UavSystem") -> str | None:
        return None


#: The shared disabled-mode observer.
NULL_OBSERVER = _NullObserver()
