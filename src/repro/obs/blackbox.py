"""Crash-proof flight data recorder: the last N seconds of every run.

A :class:`BlackBox` keeps a preallocated ring buffer of per-step state
— ground truth, EKF estimate, raw gyro, motor commands, commander
phase, failsafe state, redundancy primary, and fault-window activity —
so that when a run ends in a crash or failsafe the *lead-up* is still
in memory, exactly like the FDR in a real aircraft. The buffer is
written on every physics tick and costs no allocation per step: one
row of one preallocated ``(capacity, WIDTH)`` float64 array.

Categorical columns (phase, failsafe state) are stored as small codes
assigned on first sight; the code tables ride along in the dump, so
the recorder never needs to import the flight stack (and the format
survives enum renames).

Dumps go through :func:`repro.core.atomicio.atomic_write_text`: a kill
mid-dump can never leave a torn artifact next to the campaign results.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.atomicio import atomic_write_text

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.system import UavSystem

#: Dump format version (bump on column changes).
BLACKBOX_SCHEMA = 1

#: Column layout of one ring row. Order is the wire format: the dump
#: writes ``columns`` alongside the data, so readers never hard-code
#: indices.
COLUMNS: tuple[str, ...] = (
    "time_s",
    "truth_pos_n", "truth_pos_e", "truth_pos_d",
    "truth_vel_n", "truth_vel_e", "truth_vel_d",
    "truth_quat_w", "truth_quat_x", "truth_quat_y", "truth_quat_z",
    "truth_rate_x", "truth_rate_y", "truth_rate_z",
    "est_pos_n", "est_pos_e", "est_pos_d",
    "est_vel_n", "est_vel_e", "est_vel_d",
    "est_quat_w", "est_quat_x", "est_quat_y", "est_quat_z",
    "gyro_x", "gyro_y", "gyro_z",
    "motor_0", "motor_1", "motor_2", "motor_3",
    "attitude_std_rad",
    "phase_code",
    "failsafe_code",
    "fault_active",
    "primary_member",
)

_WIDTH = len(COLUMNS)
_COL = {name: i for i, name in enumerate(COLUMNS)}


class BlackBox:
    """Preallocated ring buffer of per-step vehicle state."""

    def __init__(self, seconds: float = 8.0, dt_s: float = 0.01) -> None:
        if seconds <= 0.0 or dt_s <= 0.0:
            raise ValueError("seconds and dt_s must be positive")
        self.capacity = max(1, int(round(seconds / dt_s)))
        self.seconds = seconds
        self.dt_s = dt_s
        self._data = np.zeros((self.capacity, _WIDTH))
        self._idx = 0
        self._count = 0
        # Code tables for categorical columns, built as states appear.
        self._phase_codes: dict[str, int] = {}
        self._failsafe_codes: dict[str, int] = {}

    def __len__(self) -> int:
        return min(self._count, self.capacity)

    @property
    def total_recorded(self) -> int:
        """Rows ever recorded (>= len() once the ring has wrapped)."""
        return self._count

    def record(self, system: "UavSystem", fault_active: bool) -> None:
        """Write one ring row from the system's current state.

        Strictly read-only on ``system`` (reprolint OBS001): the row is
        a copy, so later simulation steps cannot retroactively change
        recorded history. Runs every simulation step, so the code-table
        lookups are inlined and mutation roots at obs-owned locals.
        """
        row = self._data[self._idx]
        truth = system.physics.state
        ekf = system.ekf
        row[0] = system.physics.time_s
        row[1:4] = truth.position_ned
        row[4:7] = truth.velocity_ned
        row[7:11] = truth.quaternion
        row[11:14] = truth.angular_rate_body
        row[14:17] = ekf.position_ned
        row[17:20] = ekf.velocity_ned
        row[20:24] = ekf.quaternion
        row[24:27] = system._last_gyro
        row[27:31] = system.physics.airframe.motors.effective_commands
        row[31] = ekf.attitude_std_rad
        phase_codes = self._phase_codes
        phase = system.commander.phase.value
        phase_code = phase_codes.get(phase)
        if phase_code is None:
            phase_code = phase_codes[phase] = len(phase_codes)
        row[32] = phase_code
        failsafe_codes = self._failsafe_codes
        failsafe = system.failsafe.state.value
        failsafe_code = failsafe_codes.get(failsafe)
        if failsafe_code is None:
            failsafe_code = failsafe_codes[failsafe] = len(failsafe_codes)
        row[33] = failsafe_code
        row[34] = 1.0 if fault_active else 0.0
        row[35] = system.redundancy.primary
        self._idx += 1
        if self._idx == self.capacity:
            self._idx = 0
        self._count += 1

    def rows(self) -> np.ndarray:
        """The recorded rows in chronological order (oldest first)."""
        if self._count < self.capacity:
            return self._data[: self._count].copy()
        return np.concatenate((self._data[self._idx:], self._data[: self._idx]))

    def column(self, name: str) -> np.ndarray:
        """One named column of :meth:`rows`."""
        return self.rows()[:, _COL[name]]

    # -- persistence ---------------------------------------------------

    def to_payload(
        self,
        metadata: dict[str, Any] | None = None,
        events: list[dict[str, Any]] | None = None,
    ) -> dict[str, Any]:
        """The dump dictionary (JSON-ready)."""
        data = self.rows()
        return {
            "schema": BLACKBOX_SCHEMA,
            "seconds": self.seconds,
            "dt_s": self.dt_s,
            "columns": list(COLUMNS),
            "phase_codes": dict(self._phase_codes),
            "failsafe_codes": dict(self._failsafe_codes),
            "total_recorded": self._count,
            "metadata": metadata or {},
            "events": events or [],
            "rows": [[float(v) for v in row] for row in data],
        }

    def dump(
        self,
        path: str | Path,
        metadata: dict[str, Any] | None = None,
        events: list[dict[str, Any]] | None = None,
    ) -> str:
        """Write the post-mortem artifact atomically; returns the path.

        ``events`` is the run's trace-event list (as dicts), embedded
        so a single artifact reconstructs both the continuous state and
        the discrete transitions that led to the terminal outcome.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            path, json.dumps(self.to_payload(metadata, events)) + "\n"
        )
        return str(path)


def load_blackbox(path: str | Path) -> dict[str, Any]:
    """Read a dump back; validates the schema tag and column table."""
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != BLACKBOX_SCHEMA:
        raise ValueError(
            f"unsupported black-box schema {payload.get('schema')!r} in {path}"
        )
    missing = {"columns", "rows", "phase_codes", "metadata"} - set(payload)
    if missing:
        raise ValueError(f"black-box file {path} is missing keys: {sorted(missing)}")
    payload["rows"] = np.array(payload["rows"], dtype=float).reshape(
        -1, len(payload["columns"])
    )
    return payload


def blackbox_column(payload: dict[str, Any], name: str) -> np.ndarray:
    """One named column from a loaded dump."""
    return payload["rows"][:, payload["columns"].index(name)]
