"""Fixed-step 6-DOF integration of the quadrotor with ground contact."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mathutils import (
    quat_conjugate_into,
    quat_from_euler,
    quat_integrate_into,
    quat_rotate_into,
    quat_to_euler,
)
from repro.sim.airframe import QuadrotorAirframe
from repro.sim.environment import Environment
from repro.sim.state import RigidBodyState

#: Hard physical limits that keep the integrator sane while a fault is
#: slamming the controls; real vehicles break up long before these.
_MAX_SPEED_M_S = 60.0
_MAX_RATE_RAD_S = 60.0


@dataclass(slots=True)
class GroundContact:
    """Record of the most recent ground-contact event."""

    time_s: float
    impact_speed_m_s: float
    vertical_speed_m_s: float
    tilt_rad: float


class QuadrotorPhysics:
    """Ground-truth propagation of one quadrotor.

    Integrates translational dynamics with semi-implicit Euler and
    attitude with the quaternion exponential map, at the caller's fixed
    step (the top-level system uses 100 Hz). Exposes the *true* specific
    force and angular rate that the IMU model samples.
    """

    def __init__(
        self,
        airframe: QuadrotorAirframe | None = None,
        environment: Environment | None = None,
        initial_state: RigidBodyState | None = None,
    ):
        self.airframe = airframe or QuadrotorAirframe()
        self.environment = environment or Environment()
        self.state = initial_state.copy() if initial_state else RigidBodyState()
        self.time_s = 0.0
        self.on_ground = self.state.altitude_m <= 1e-6
        self.last_contact: GroundContact | None = None
        # True specific force (accelerometer ground truth): what an ideal
        # accelerometer strapped to the body would read, in body axes.
        # Updated in place every step; copy before storing across steps.
        self.specific_force_body = np.array([0.0, 0.0, -self.environment.gravity_m_s2])
        # Hot-loop work buffers (in-place forms are bit-identical to the
        # allocating originals; see DESIGN.md section 11).
        self._accel = np.zeros(3)
        self._non_grav = np.zeros(3)
        self._q_conj = np.zeros(4)
        self._iw = np.zeros(3)
        self._cross = np.zeros(3)
        self._tau_net = np.zeros(3)
        self._w_dot = np.zeros(3)

    def step(self, motor_commands: np.ndarray, dt: float) -> RigidBodyState:
        """Advance physics by ``dt`` with the given normalised motor commands."""
        if dt <= 0.0:
            raise ValueError("dt must be positive")
        env = self.environment
        env.wind.step(dt)

        thrusts = self.airframe.motors.step(motor_commands, dt)
        force_world, torque_body = self.airframe.forces_and_torques(
            thrusts,
            self.state.quaternion,
            self.state.velocity_ned,
            self.state.angular_rate_body,
            env,
        )

        mass = self.airframe.params.mass_kg

        # Ground reaction: while resting on the plane, the normal force
        # cancels any net downward force, so the accelerometer correctly
        # reads -g instead of free-fall zero. (`force_world` is the
        # airframe's transient buffer, so it can be edited directly.)
        if self.on_ground and force_world[2] > 0.0:
            force_world[2] = 0.0

        accel_world = self._accel
        np.divide(force_world, mass, out=accel_world)

        # The accelerometer measures specific force: total non-gravitational
        # acceleration, expressed in body axes.
        np.subtract(accel_world, env.gravity_ned, out=self._non_grav)
        quat_conjugate_into(self.state.quaternion, self._q_conj)
        quat_rotate_into(self._q_conj, self._non_grav, self.specific_force_body)

        # Rotational dynamics: I w_dot = tau - w x (I w)
        w = self.state.angular_rate_body
        np.matmul(self.airframe.inertia, w, out=self._iw)
        iw = self._iw
        w0 = w[0]
        w1 = w[1]
        w2 = w[2]
        self._cross[0] = w1 * iw[2] - w2 * iw[1]
        self._cross[1] = w2 * iw[0] - w0 * iw[2]
        self._cross[2] = w0 * iw[1] - w1 * iw[0]
        np.subtract(torque_body, self._cross, out=self._tau_net)
        np.matmul(self.airframe.inertia_inv, self._tau_net, out=self._w_dot)
        w_dot = self._w_dot

        # Semi-implicit Euler: velocities first, then poses. All state
        # arrays are updated in place (bit-identical to the allocating
        # `v + a * dt` form).
        v = self.state.velocity_ned
        v[0] = v[0] + accel_world[0] * dt
        v[1] = v[1] + accel_world[1] * dt
        v[2] = v[2] + accel_world[2] * dt
        _clamp_vec_inplace(v, _MAX_SPEED_M_S)
        w[0] = w[0] + w_dot[0] * dt
        w[1] = w[1] + w_dot[1] * dt
        w[2] = w[2] + w_dot[2] * dt
        _clamp_vec_inplace(w, _MAX_RATE_RAD_S)
        pos = self.state.position_ned
        pos[0] = pos[0] + v[0] * dt
        pos[1] = pos[1] + v[1] * dt
        pos[2] = pos[2] + v[2] * dt
        quat_integrate_into(
            self.state.quaternion, w, dt, out=self.state.quaternion
        )

        self._handle_ground(dt)
        self.time_s += dt
        return self.state

    def _handle_ground(self, dt: float) -> None:
        """Clamp the vehicle at the ground plane and record impacts."""
        below = self.state.position_ned[2] >= 0.0
        if below and not self.on_ground:
            # Touchdown (or impact) event: record the incoming velocity.
            self.last_contact = GroundContact(
                time_s=self.time_s,
                impact_speed_m_s=self.state.speed_m_s,
                vertical_speed_m_s=float(self.state.velocity_ned[2]),
                tilt_rad=self.state.tilt_rad,
            )
        if below:
            self.on_ground = True
            self.state.position_ned[2] = 0.0
            if self.state.velocity_ned[2] > 0.0:
                self.state.velocity_ned[2] = 0.0
            # Ground friction bleeds off horizontal motion and rotation.
            self.state.velocity_ned[:2] *= max(0.0, 1.0 - 8.0 * dt)
            self.state.angular_rate_body *= max(0.0, 1.0 - 12.0 * dt)
            roll, pitch, yaw = quat_to_euler(self.state.quaternion)
            if abs(roll) < 0.35 and abs(pitch) < 0.35:
                # Settle gently onto the gear when nearly level.
                self.state.quaternion = quat_from_euler(
                    roll * max(0.0, 1.0 - 5.0 * dt), pitch * max(0.0, 1.0 - 5.0 * dt), yaw
                )
        elif self.state.altitude_m > 0.02:
            self.on_ground = False


def _clamp_vec(vec: np.ndarray, max_norm: float) -> np.ndarray:
    norm_sq = float(vec @ vec)
    if norm_sq > max_norm * max_norm:
        return vec * (max_norm / np.sqrt(norm_sq))
    return vec


def _clamp_vec_inplace(vec: np.ndarray, max_norm: float) -> None:
    """In-place :func:`_clamp_vec` (same dot, same scale, same rounding)."""
    norm_sq = float(vec @ vec)
    if norm_sq > max_norm * max_norm:
        np.multiply(vec, max_norm / np.sqrt(norm_sq), out=vec)
