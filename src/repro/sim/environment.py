"""World environment: gravity, air density, and a stochastic wind model."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Standard gravitational acceleration (m/s^2), positive magnitude.
GRAVITY_M_S2 = 9.80665

#: Sea-level air density (kg/m^3) used by the drag model.
AIR_DENSITY_KG_M3 = 1.225


class WindModel:
    """Constant wind plus Ornstein-Uhlenbeck gusts.

    Each axis of the gust vector follows an OU process
    ``dg = -g/tau * dt + sigma * sqrt(2*dt/tau) * N(0,1)``, giving
    band-limited turbulence with stationary standard deviation ``sigma``.
    The model is deterministic for a given seed, which the campaign
    runner relies on for reproducible experiments.
    """

    def __init__(
        self,
        mean_wind_ned: np.ndarray | None = None,
        gust_sigma_m_s: float = 0.3,
        gust_tau_s: float = 3.0,
        seed: int = 0,
    ):
        self.mean_wind_ned = (
            np.zeros(3) if mean_wind_ned is None else np.asarray(mean_wind_ned, dtype=float)
        )
        if gust_sigma_m_s < 0.0:
            raise ValueError("gust_sigma_m_s must be non-negative")
        if gust_tau_s <= 0.0:
            raise ValueError("gust_tau_s must be positive")
        self.gust_sigma_m_s = gust_sigma_m_s
        self.gust_tau_s = gust_tau_s
        self._rng = np.random.default_rng(seed)
        self._gust = np.zeros(3)
        # Hot-loop work buffers (bit-identical in-place forms of the
        # original expressions; see DESIGN.md section 11).
        self._noise = np.zeros(3)
        self._delta = np.zeros(3)
        self._wind = np.zeros(3)

    def step(self, dt: float) -> np.ndarray:
        """Advance the gust process and return the current wind (NED m/s).

        The returned array is a reused buffer; copy it to keep it across
        steps.
        """
        if self.gust_sigma_m_s > 0.0:
            decay = dt / self.gust_tau_s
            self._rng.standard_normal(out=self._noise)
            # In-place form of
            #   gust += -gust * decay + sigma * sqrt(2 * decay) * noise
            # keeping the exact operation order of the allocating original.
            np.multiply(self._gust, -decay, out=self._delta)
            np.multiply(self._noise, self.gust_sigma_m_s * np.sqrt(2.0 * decay), out=self._noise)
            np.add(self._delta, self._noise, out=self._delta)
            self._gust += self._delta
        np.add(self.mean_wind_ned, self._gust, out=self._wind)
        return self._wind

    @property
    def current_wind_ned(self) -> np.ndarray:
        """Wind vector from the most recent :meth:`step` (NED m/s).

        Returns a reused buffer; copy it to keep it across steps.
        """
        np.add(self.mean_wind_ned, self._gust, out=self._wind)
        return self._wind


@dataclass
class Environment:
    """Bundle of environmental conditions for one simulation run."""

    gravity_m_s2: float = GRAVITY_M_S2
    air_density_kg_m3: float = AIR_DENSITY_KG_M3
    wind: WindModel = field(default_factory=WindModel)

    def __post_init__(self) -> None:
        self._gravity_ned = np.array([0.0, 0.0, self.gravity_m_s2])

    @property
    def gravity_ned(self) -> np.ndarray:
        """Gravity acceleration vector in NED (down positive).

        Cached at construction (``gravity_m_s2`` is fixed for a run);
        treat the returned array as read-only.
        """
        return self._gravity_ned
