"""Quadrotor physics simulation — the Gazebo substitute.

This package owns *ground truth*: the true rigid-body state of each
vehicle, integrated at a fixed step from motor commands, aerodynamic
forces, wind, and ground contact. Nothing in here ever sees sensor data
or fault injection; faults live entirely in the sensing path
(:mod:`repro.sensors` + :mod:`repro.core.injector`), exactly as in the
paper's PX4 setup where the injector corrupts sensor output, not physics.
"""

from repro.sim.state import RigidBodyState
from repro.sim.environment import Environment, WindModel, GRAVITY_M_S2
from repro.sim.motors import MotorModel, MotorBank
from repro.sim.airframe import QuadrotorAirframe, AirframeParams
from repro.sim.dynamics import QuadrotorPhysics, GroundContact

__all__ = [
    "RigidBodyState",
    "Environment",
    "WindModel",
    "GRAVITY_M_S2",
    "MotorModel",
    "MotorBank",
    "QuadrotorAirframe",
    "AirframeParams",
    "QuadrotorPhysics",
    "GroundContact",
]
