"""Rotor/motor actuation model.

Each motor is commanded with a normalised setpoint in ``[0, 1]`` and
responds with first-order lag, producing thrust proportional to the
square of its effective command (a standard static rotor map). The yaw
reaction torque is proportional to thrust via the rotor drag ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mathutils import clamp


@dataclass
class MotorModel:
    """Parameters of a single rotor + ESC + propeller unit.

    Attributes:
        max_thrust_n: thrust at full command (Newtons).
        time_constant_s: first-order response time constant.
        torque_ratio_m: yaw reaction torque per Newton of thrust
            (metres); sign is applied by the airframe's spin layout.
    """

    max_thrust_n: float = 8.0
    time_constant_s: float = 0.04
    torque_ratio_m: float = 0.016

    def __post_init__(self) -> None:
        if self.max_thrust_n <= 0.0:
            raise ValueError("max_thrust_n must be positive")
        if self.time_constant_s <= 0.0:
            raise ValueError("time_constant_s must be positive")


class MotorBank:
    """The set of four motors with shared dynamics.

    Tracks each motor's lagged internal command and converts commands to
    per-motor thrust. Commands outside [0, 1] are clamped, mirroring ESC
    saturation.
    """

    def __init__(self, model: MotorModel, count: int = 4):
        if count < 1:
            raise ValueError("motor count must be >= 1")
        self.model = model
        self.count = count
        self._effective = np.zeros(count)
        # Hot-loop work buffers; `step` returns `self._thrust` without
        # copying, so callers must consume it before the next step.
        self._cmd = np.zeros(count)
        self._delta = np.zeros(count)
        self._thrust = np.zeros(count)

    def reset(self) -> None:
        """Return all motors to zero output (disarmed)."""
        self._effective[:] = 0.0

    def step(self, commands: np.ndarray, dt: float) -> np.ndarray:
        """Advance motor lag and return per-motor thrust (Newtons).

        Args:
            commands: normalised motor setpoints, clamped to [0, 1].
            dt: integration step (seconds).
        """
        commands = np.asarray(commands, dtype=float)
        if commands.shape != (self.count,):
            raise ValueError(f"expected {self.count} motor commands, got {commands.shape}")
        np.maximum(commands, 0.0, out=self._cmd)
        np.minimum(self._cmd, 1.0, out=self._cmd)
        alpha = clamp(dt / self.model.time_constant_s, 0.0, 1.0)
        # In-place form of `effective += alpha * (cmd - effective)` and
        # `max_thrust * effective**2`, preserving the rounding of the
        # allocating originals bit-for-bit.
        np.subtract(self._cmd, self._effective, out=self._delta)
        self._delta *= alpha
        self._effective += self._delta
        np.multiply(self._effective, self._effective, out=self._thrust)
        self._thrust *= self.model.max_thrust_n
        return self._thrust

    @property
    def effective_commands(self) -> np.ndarray:
        """Current lagged commands (copy)."""
        return self._effective.copy()

    def thrusts(self) -> np.ndarray:
        """Thrust produced at the current lagged commands (no stepping)."""
        return self.model.max_thrust_n * self._effective**2
