"""Quadrotor airframe: geometry, mass properties, and force/torque map."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mathutils import quat_rotate_into
from repro.sim.environment import Environment
from repro.sim.motors import MotorBank, MotorModel


@dataclass
class AirframeParams:
    """Physical parameters of a quad-X multirotor.

    The defaults model a ~1.5 kg, 0.45 m-class delivery quad, which is in
    the weight/speed class of the paper's Valencia scenario drones. The
    ``dimension_m`` and ``safety_distance_m`` fields feed the inner-bubble
    formula (Eq. 1 of the paper): ``dimension_m`` is ``D_o`` (wingspan)
    and ``safety_distance_m`` is the manufacturer-recommended ``D_s``.
    """

    mass_kg: float = 1.5
    inertia_diag: tuple[float, float, float] = (0.029, 0.029, 0.055)
    arm_length_m: float = 0.25
    drag_area_m2: float = 0.05
    linear_drag_coeff: float = 0.25
    angular_damping: float = 0.008
    angular_damping_linear: float = 0.12
    motor: MotorModel = field(default_factory=MotorModel)
    dimension_m: float = 0.6
    safety_distance_m: float = 1.5

    def __post_init__(self) -> None:
        if self.mass_kg <= 0.0:
            raise ValueError("mass_kg must be positive")
        if any(i <= 0.0 for i in self.inertia_diag):
            raise ValueError("inertia must be positive definite")
        if self.arm_length_m <= 0.0:
            raise ValueError("arm_length_m must be positive")

    @property
    def hover_thrust_fraction(self) -> float:
        """Normalised per-motor command fraction that balances gravity.

        With the quadratic rotor map, hover needs
        ``command = sqrt(m*g / (n * T_max))``.
        """
        from repro.sim.environment import GRAVITY_M_S2

        weight = self.mass_kg * GRAVITY_M_S2
        return float(np.sqrt(weight / (4.0 * self.motor.max_thrust_n)))


class QuadrotorAirframe:
    """Maps per-motor thrusts to net body force and torque.

    Motor layout (quad-X, FRD body frame, index / position / spin):

    ==  ============  ====
    0   front-right   CCW
    1   back-left     CCW
    2   front-left    CW
    3   back-right    CW
    ==  ============  ====

    CCW rotors (viewed from above) exert a positive-yaw reaction torque
    on the body in the FRD/NED convention used here.
    """

    #: Per-motor (x, y) lever arms as multiples of arm_length, and spin sign.
    _LAYOUT = (
        (+0.7071, +0.7071, +1.0),
        (-0.7071, -0.7071, +1.0),
        (+0.7071, -0.7071, -1.0),
        (-0.7071, +0.7071, -1.0),
    )

    def __init__(self, params: AirframeParams | None = None):
        self.params = params or AirframeParams()
        self.motors = MotorBank(self.params.motor, count=4)
        self.inertia = np.diag(self.params.inertia_diag)
        self.inertia_inv = np.diag([1.0 / i for i in self.params.inertia_diag])
        arm = self.params.arm_length_m
        self._positions = np.array([(x * arm, y * arm) for x, y, _ in self._LAYOUT])
        self._spins = np.array([s for _, _, s in self._LAYOUT])
        # Column views reused every tick (same strides as slicing fresh,
        # so the BLAS dot products round identically).
        self._lever_x = self._positions[:, 0]
        self._lever_y = self._positions[:, 1]
        # Hot-loop work buffers. `forces_and_torques` returns `_force`
        # and `_torque` without copying; they are valid until the next
        # call (the physics step consumes them immediately).
        self._thrust_body = np.zeros(3)
        self._thrust_world = np.zeros(3)
        self._v_rel = np.zeros(3)
        self._mg = np.zeros(3)
        self._force = np.zeros(3)
        self._torque = np.zeros(3)

    def forces_and_torques(
        self,
        thrusts_n: np.ndarray,
        quaternion: np.ndarray,
        velocity_ned: np.ndarray,
        angular_rate_body: np.ndarray,
        env: Environment,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return (world-frame force, body-frame torque).

        Force includes gravity, rotor thrust, and aerodynamic drag against
        the wind-relative velocity. Torque includes thrust lever arms, yaw
        reaction, and rotational damping.
        """
        p = self.params
        total_thrust = float(np.sum(thrusts_n))

        # Thrust acts along -z body (upward for a level vehicle).
        tb = self._thrust_body
        tb[2] = -total_thrust
        quat_rotate_into(quaternion, tb, self._thrust_world)

        v_rel = self._v_rel
        np.subtract(velocity_ned, env.wind.current_wind_ned, out=v_rel)
        speed = float(np.sqrt(v_rel @ v_rel))
        # drag = -(0.5 * rho * A * speed + c_lin) * v_rel, folded in place.
        np.multiply(
            v_rel,
            -(0.5 * env.air_density_kg_m3 * p.drag_area_m2 * speed + p.linear_drag_coeff),
            out=v_rel,
        )

        force = self._force
        np.add(self._thrust_world, v_rel, out=force)
        np.multiply(env.gravity_ned, p.mass_kg, out=self._mg)
        np.add(force, self._mg, out=force)

        # Torque from thrust lever arms: r x F with F = (0, 0, -T).
        tau_x = float(-np.dot(self._lever_y, thrusts_n))
        tau_y = float(np.dot(self._lever_x, thrusts_n))
        tau_z = float(np.dot(self._spins, thrusts_n)) * p.motor.torque_ratio_m

        w = angular_rate_body
        w0 = w[0]
        w1 = w[1]
        w2 = w[2]
        neg_ad = -p.angular_damping
        adl = p.angular_damping_linear
        torque = self._torque
        torque[0] = tau_x + ((neg_ad * w0) * abs(w0) - adl * w0)
        torque[1] = tau_y + ((neg_ad * w1) * abs(w1) - adl * w1)
        torque[2] = tau_z + ((neg_ad * w2) * abs(w2) - adl * w2)
        return force, torque
