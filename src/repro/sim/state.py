"""True rigid-body state of a simulated vehicle."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mathutils import quat_identity, quat_to_euler


def _zeros3() -> np.ndarray:
    return np.zeros(3)


@dataclass(slots=True)
class RigidBodyState:
    """Ground-truth kinematic state in the NED world frame.

    Attributes:
        position_ned: metres, down positive (``-position_ned[2]`` is
            altitude above the world origin).
        velocity_ned: metres/second in the world frame.
        quaternion: body-to-world Hamilton quaternion ``[w, x, y, z]``.
        angular_rate_body: body-frame rates (rad/s, FRD axes).
    """

    position_ned: np.ndarray = field(default_factory=_zeros3)
    velocity_ned: np.ndarray = field(default_factory=_zeros3)
    quaternion: np.ndarray = field(default_factory=quat_identity)
    angular_rate_body: np.ndarray = field(default_factory=_zeros3)

    @property
    def altitude_m(self) -> float:
        """Altitude above the world origin, positive up."""
        return -float(self.position_ned[2])

    @property
    def speed_m_s(self) -> float:
        """Ground speed magnitude (3-D)."""
        v = self.velocity_ned
        return float(np.sqrt(v @ v))

    @property
    def euler_rad(self) -> tuple[float, float, float]:
        """(roll, pitch, yaw) in radians."""
        return quat_to_euler(self.quaternion)

    @property
    def tilt_rad(self) -> float:
        """Angle between the body z axis and the world down axis.

        Zero when level; pi when fully inverted. This is the quantity the
        failsafe's attitude-failure detector monitors.
        """
        # Body down axis expressed in world frame is the third column of
        # the rotation matrix; its z component is 1 - 2(x^2 + y^2).
        w, x, y, z = self.quaternion
        cos_tilt = 1.0 - 2.0 * (x * x + y * y)
        cos_tilt = min(1.0, max(-1.0, cos_tilt))
        return float(np.arccos(cos_tilt))

    def copy(self) -> "RigidBodyState":
        """Deep copy (arrays are duplicated)."""
        return RigidBodyState(
            position_ned=self.position_ned.copy(),
            velocity_ned=self.velocity_ned.copy(),
            quaternion=self.quaternion.copy(),
            angular_rate_body=self.angular_rate_body.copy(),
        )
