"""Error-state extended Kalman filter for multirotor navigation.

State layout (nominal):
    quaternion (body->world), velocity NED, position NED,
    gyro bias, accel bias.

Error state (15): ``[d_theta(3), d_vel(3), d_pos(3), d_bias_gyro(3),
d_bias_accel(3)]`` with the attitude error defined in the body frame,
``q_true = q_nominal * exp(d_theta)``.

The filter predicts at the IMU rate and applies GPS position/velocity,
barometric height, and magnetometer yaw updates with chi-square
innovation gating. Gated (rejected) innovations are reported through
:class:`~repro.estimation.health.InnovationMonitor`, which is what the
failsafe engine watches — mirroring PX4's EKF health flags.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.mathutils import (
    quat_from_axis_angle,
    quat_from_axis_angle_into,
    quat_integrate,
    quat_integrate_into,
    quat_multiply,
    quat_multiply_into,
    quat_normalize,
    quat_normalize_into,
    quat_rotate,
    quat_to_euler,
    quat_to_rotation_matrix,
    quat_to_rotation_matrix_into,
    skew,
    wrap_angle,
)
from repro.sensors.imu import ImuSample
from repro.sensors.gps import GpsSample
from repro.estimation.health import InnovationMonitor

# Error-state block indices.
_TH = slice(0, 3)
_V = slice(3, 6)
_P = slice(6, 9)
_BG = slice(9, 12)
_BA = slice(12, 15)


@dataclass
class EkfParams:
    """Noise densities, bias limits, and innovation gates.

    The gates are expressed as sigma multiples; an innovation whose
    normalised squared magnitude exceeds ``gate**2`` is rejected and
    counted by the health monitor.
    """

    gyro_noise: float = 0.03
    accel_noise: float = 0.2
    gyro_bias_walk: float = 5e-4
    accel_bias_walk: float = 3e-3
    gyro_bias_limit: float = 0.4
    accel_bias_limit: float = 1.0
    gps_pos_gate: float = 5.0
    gps_vel_gate: float = 5.0
    baro_gate: float = 5.0
    mag_gate: float = 4.0
    baro_noise_m: float = 0.3
    mag_noise_rad: float = 0.05
    #: Ablation switch: disable the PX4-style fusion-timeout hard reset
    #: (the mechanism that lets the filter recover after divergence).
    enable_fusion_reset: bool = True


@dataclass(slots=True)
class EkfState:
    """Nominal state snapshot (arrays are views; copy before storing)."""

    quaternion: np.ndarray
    velocity_ned: np.ndarray
    position_ned: np.ndarray
    gyro_bias: np.ndarray
    accel_bias: np.ndarray

    @property
    def yaw_rad(self) -> float:
        return quat_to_euler(self.quaternion)[2]

    def copy(self) -> "EkfState":
        return EkfState(
            self.quaternion.copy(),
            self.velocity_ned.copy(),
            self.position_ned.copy(),
            self.gyro_bias.copy(),
            self.accel_bias.copy(),
        )


class Ekf:
    """The estimator: IMU-driven prediction plus gated aiding updates."""

    #: Consecutive per-axis GPS rejections before the corresponding state
    #: block is hard-reset to the measurement (PX4's fusion-timeout
    #: reset). At the 5 Hz GPS rate this is ~1.6 s of disagreement.
    RESET_REJECTION_COUNT = 8

    def __init__(
        self,
        params: EkfParams | None = None,
        gravity_m_s2: float = 9.80665,
        initial_position_ned: np.ndarray | None = None,
        initial_yaw_rad: float = 0.0,
    ):
        self.params = params or EkfParams()
        self._gravity_ned = np.array([0.0, 0.0, gravity_m_s2])
        self.quaternion = quat_from_axis_angle(np.array([0.0, 0.0, 1.0]), initial_yaw_rad)
        self.velocity_ned = np.zeros(3)
        self.position_ned = (
            np.zeros(3)
            if initial_position_ned is None
            else np.array(initial_position_ned, dtype=float)
        )
        self.gyro_bias = np.zeros(3)
        self.accel_bias = np.zeros(3)

        # Initial uncertainty: well-initialised SITL vehicle on the pad.
        self.covariance = np.diag(
            [0.01] * 3 + [0.1] * 3 + [0.25] * 3 + [1e-4] * 3 + [1e-2] * 3
        )
        self.monitor = InnovationMonitor()
        self.time_s = 0.0
        # Angular rate after bias removal; the rate controller consumes
        # the raw gyro, but logging and failsafe use this too.
        self.rate_body = np.zeros(3)
        # Stuck-sensor (flatline) detection: a real MEMS gyro never emits
        # bit-identical samples (thermal noise), so an exactly-constant
        # triad means the data stream is dead or frozen. The last raw
        # triads are kept as scalars (element-wise `==` has exactly
        # `np.array_equal` semantics for fixed-shape triads, including
        # NaN) so the check allocates nothing.
        self._lg0 = 0.0
        self._lg1 = 0.0
        self._lg2 = 0.0
        self._have_lg = False
        self._gyro_flatline_count = 0
        self._la0 = 0.0
        self._la1 = 0.0
        self._la2 = 0.0
        self._have_la = False
        self._accel_flatline_count = 0
        # Array form of the flatline memory, maintained only by the naive
        # reference implementation (repro.perf.reference) which shares
        # this class's state via deepcopy.
        self._last_raw_gyro: np.ndarray | None = None
        self._last_raw_accel: np.ndarray | None = None
        # Latched filter fault: a full-IMU dropout (both triads
        # flatlined) means the inertial solution integrity is gone; like
        # PX4's EKF failure handling, the fault latches until landing.
        self.imu_stale_latched = False

        # -- Hot-loop work buffers ------------------------------------
        # Every in-place expression below mirrors its allocating
        # original operation-for-operation (same order, same rounding);
        # the differential and golden-trace tests pin this.
        self._omega = np.zeros(3)
        self._accel = np.zeros(3)
        self._rot = np.zeros((3, 3))
        self._neg_rot = np.zeros((3, 3))
        self._accel_world = np.zeros(3)
        self._phi = np.eye(15)
        self._eye15 = np.eye(15)
        self._skew = np.zeros((3, 3))
        self._neg_eye3 = -np.eye(3)
        self._I3 = np.eye(3)
        self._t33 = np.zeros((3, 3))
        self._t33b = np.zeros((3, 3))
        self._cov_tmp = np.zeros((15, 15))
        self._sym = np.zeros((15, 15))
        # The diagonal view stays valid because the covariance array is
        # only ever written in place after construction.
        self._diag = self.covariance.ravel()[::16]
        self._ph = np.zeros(15)
        self._k = np.zeros(15)
        self._dx = np.zeros(15)
        self._outer = np.zeros((15, 15))
        self._dq4 = np.zeros(4)
        self._bias_tmp = np.zeros(3)
        self._innov3 = np.zeros(3)
        self._pos_var = np.zeros(3)
        self._vel_var = np.full(3, 0.15**2)
        self._h_baro = np.zeros(15)
        self._h_baro[8] = -1.0  # d(alt)/d(p_down)
        self._h_mag = np.zeros(15)
        self._unit_h: dict[int, np.ndarray] = {}
        self._axis_names: dict[str, tuple[str, str, str]] = {}
        self._neg_ez = np.array([0.0, 0.0, -1.0])
        self._expected = np.zeros(3)
        self._measured = np.zeros(3)
        self._err = np.zeros(3)

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------

    def predict(self, imu: ImuSample, dt: float) -> None:
        """Propagate nominal state and covariance with one IMU sample."""
        if dt <= 0.0:
            raise ValueError("dt must be positive")
        p = self.params
        omega = self._omega
        accel = self._accel
        np.subtract(imu.gyro, self.gyro_bias, out=omega)
        np.subtract(imu.accel, self.accel_bias, out=accel)
        self.rate_body = omega

        # Flatline detection: with the gyro stream dead (zeros or frozen)
        # the attitude is no longer measured, only *dead-reckoned*, so the
        # attitude process noise must grow accordingly. The inflated
        # covariance lets GPS-velocity innovations correct the attitude
        # through the velocity/attitude cross-covariance — without this,
        # the filter keeps trusting a sensor that has stopped reporting.
        g0 = imu.gyro[0]
        g1 = imu.gyro[1]
        g2 = imu.gyro[2]
        if self._have_lg and g0 == self._lg0 and g1 == self._lg1 and g2 == self._lg2:
            self._gyro_flatline_count += 1
        else:
            self._gyro_flatline_count = 0
        self._lg0 = g0
        self._lg1 = g1
        self._lg2 = g2
        self._have_lg = True
        gyro_noise = p.gyro_noise if self._gyro_flatline_count < 20 else 0.8

        a0 = imu.accel[0]
        a1 = imu.accel[1]
        a2 = imu.accel[2]
        if self._have_la and a0 == self._la0 and a1 == self._la1 and a2 == self._la2:
            self._accel_flatline_count += 1
        else:
            self._accel_flatline_count = 0
        self._la0 = a0
        self._la1 = a1
        self._la2 = a2
        self._have_la = True
        if self._gyro_flatline_count >= 50 and self._accel_flatline_count >= 50:
            self.imu_stale_latched = True

        rot = self._rot
        quat_to_rotation_matrix_into(self.quaternion, rot)
        accel_world = self._accel_world
        np.matmul(rot, accel, out=accel_world)
        accel_world += self._gravity_ned

        # Nominal propagation: `p + v dt + 0.5 a dt^2` and `v + a dt`,
        # scalarised with the exact grouping of the vector originals.
        pos = self.position_ned
        vel = self.velocity_ned
        pos[0] = pos[0] + vel[0] * dt + 0.5 * accel_world[0] * dt * dt
        pos[1] = pos[1] + vel[1] * dt + 0.5 * accel_world[1] * dt * dt
        pos[2] = pos[2] + vel[2] * dt + 0.5 * accel_world[2] * dt * dt
        vel[0] = vel[0] + accel_world[0] * dt
        vel[1] = vel[1] + accel_world[1] * dt
        vel[2] = vel[2] + accel_world[2] * dt
        quat_integrate_into(self.quaternion, omega, dt, out=self.quaternion)

        # Covariance propagation: Phi = I + F dt (adequate at IMU rate).
        phi = self._phi
        np.copyto(phi, self._eye15)
        s33 = self._skew
        s33[0, 1] = -omega[2]
        s33[0, 2] = omega[1]
        s33[1, 0] = omega[2]
        s33[1, 2] = -omega[0]
        s33[2, 0] = -omega[1]
        s33[2, 1] = omega[0]
        np.multiply(s33, dt, out=self._t33)
        phi[0:3, 0:3] -= self._t33
        np.multiply(self._neg_eye3, dt, out=self._t33)
        phi[0:3, 9:12] = self._t33
        s33[0, 1] = -accel[2]
        s33[0, 2] = accel[1]
        s33[1, 0] = accel[2]
        s33[1, 2] = -accel[0]
        s33[2, 0] = -accel[1]
        s33[2, 1] = accel[0]
        np.negative(rot, out=self._neg_rot)
        np.matmul(self._neg_rot, s33, out=self._t33b)
        np.multiply(self._t33b, dt, out=self._t33b)
        phi[3:6, 0:3] = self._t33b
        np.multiply(rot, dt, out=self._t33)
        np.negative(self._t33, out=self._t33)
        phi[3:6, 12:15] = self._t33
        np.multiply(self._I3, dt, out=self._t33)
        phi[6:9, 3:6] = self._t33

        np.matmul(phi, self.covariance, out=self._cov_tmp)
        np.matmul(self._cov_tmp, phi.T, out=self.covariance)
        diag = self._diag
        diag[_TH] += (gyro_noise**2) * dt
        diag[_V] += (p.accel_noise**2) * dt
        diag[_BG] += (p.gyro_bias_walk**2) * dt
        diag[_BA] += (p.accel_bias_walk**2) * dt
        self.time_s = imu.time_s

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def update_gps(self, fix: GpsSample) -> None:
        """Apply GPS position and velocity aiding.

        If a channel has been in sustained rejection (the filter diverged
        from reality, e.g. because an IMU fault dragged the prediction
        away), the corresponding state block is hard-reset to the fix —
        PX4's fusion-timeout behaviour, and the mechanism that lets
        vehicles recover once a short injection ends.
        """
        if self.params.enable_fusion_reset:
            if self.monitor.group_max_consecutive("gps_vel") >= self.RESET_REJECTION_COUNT:
                self._reset_block(_V, fix.velocity_ned, 1.0, "gps_vel")
            if self.monitor.group_max_consecutive("gps_pos") >= self.RESET_REJECTION_COUNT:
                self._reset_block(_P, fix.position_ned, 4.0, "gps_pos")

        p = self.params
        pos_var = self._pos_var
        pos_var[0] = fix.horizontal_accuracy_m**2
        pos_var[1] = fix.horizontal_accuracy_m**2
        pos_var[2] = fix.vertical_accuracy_m**2
        innov = self._innov3
        np.subtract(fix.position_ned, self.position_ned, out=innov)
        self._vector_update(innov, _P, pos_var, p.gps_pos_gate, "gps_pos")

        np.subtract(fix.velocity_ned, self.velocity_ned, out=innov)
        self._vector_update(innov, _V, self._vel_var, p.gps_vel_gate, "gps_vel")

    def update_baro(self, altitude_m: float) -> None:
        """Apply barometric height aiding (altitude positive up)."""
        innov = altitude_m - (-self.position_ned[2])
        self._scalar_update(
            innov, self._h_baro, self.params.baro_noise_m**2, self.params.baro_gate, "baro"
        )

    def update_mag_yaw(self, yaw_meas_rad: float) -> None:
        """Apply magnetometer yaw aiding."""
        yaw_est = quat_to_euler(self.quaternion)[2]
        innov = wrap_angle(yaw_meas_rad - yaw_est)
        rot = quat_to_rotation_matrix_into(self.quaternion, self._rot)
        h = self._h_mag
        # Small body-frame attitude errors map to world-frame errors via R;
        # yaw error is the world-z component. Entries outside [0:3] stay 0.
        h[_TH] = rot[2, :]
        self._scalar_update(innov, h, self.params.mag_noise_rad**2, self.params.mag_gate, "mag")

    #: Gain (1/s) of the complementary gravity-tilt correction.
    GRAVITY_AIDING_GAIN = 3.0

    def update_gravity_tilt(
        self, accel_body: np.ndarray, gyro_body: np.ndarray, dt: float = 0.05
    ) -> None:
        """Quasi-static tilt aiding from the accelerometer's gravity vector.

        When the specific force is close to 1 g and the measured rates are
        small, the accelerometer direction observes roll/pitch. The
        correction is applied as a Mahony-style complementary blend,
        ``q <- q * exp(k * err * dt)``, rather than a gated Kalman update:
        its authority must scale with the error so the filter can re-level
        after (or during) a gyro fault window, when the gyro-trusting
        covariance would otherwise gate the information out exactly when
        it is needed. During violent motion or accelerometer faults the
        quasi-static check keeps it out of the loop.
        """
        g = self._gravity_ned[2]
        # math.sqrt(float(v @ v)) == np.linalg.norm(v) bit-for-bit (same
        # BLAS dot) without the linalg wrapper cost; used on every hot
        # norm in the loop.
        norm = math.sqrt(float(accel_body @ accel_body))
        quasi_static = (
            abs(norm - g) <= 0.12 * g and math.sqrt(float(gyro_body @ gyro_body)) <= 0.25
        )
        if not quasi_static:
            return
        rot = quat_to_rotation_matrix_into(self.quaternion, self._rot)
        expected = self._expected
        np.matmul(rot.T, self._neg_ez, out=expected)
        measured = self._measured
        np.divide(accel_body, norm, out=measured)
        # Small-angle attitude error (body frame); z component excluded —
        # gravity says nothing about yaw.
        err = self._err
        err[0] = measured[1] * expected[2] - measured[2] * expected[1]
        err[1] = measured[2] * expected[0] - measured[0] * expected[2]
        err[2] = 0.0
        err_norm = math.sqrt(float(err @ err))
        self.monitor.record("grav", self.time_s, err_norm, True)
        if err_norm < 1e-9:
            return
        angle = self.GRAVITY_AIDING_GAIN * dt * err_norm
        quat_from_axis_angle_into(err, min(angle, 0.3), self._dq4)
        quat_multiply_into(self.quaternion, self._dq4, self.quaternion)
        quat_normalize_into(self.quaternion, self.quaternion)

    # ------------------------------------------------------------------
    # Sensor switchover
    # ------------------------------------------------------------------

    def reseed_after_imu_switch(self) -> None:
        """Re-seed the delta-state after the primary IMU is replaced.

        The bias estimates, flatline trackers, and innovation history
        all describe the *retired* sensor: the new member has its own
        turn-on biases, and the rejection windows accumulated while
        flying corrupted data would keep the failsafe's EKF-health
        trigger latched long after the data went clean. Position is
        kept (GPS-derived, sensor-independent); attitude and velocity
        covariance are inflated so the aiding updates can pull the
        nominal state back from wherever the fault dragged it.
        """
        diag = self.covariance.ravel()[::16]
        for block, variance in ((_BG, 1e-4), (_BA, 1e-2)):
            self.covariance[block, :] = 0.0
            self.covariance[:, block] = 0.0
            diag[block] = variance
        self.gyro_bias[:] = 0.0
        self.accel_bias[:] = 0.0
        diag[_TH] += 0.02
        diag[_V] += 0.25
        self.monitor.reset_all_windows()
        self._have_lg = False
        self._last_raw_gyro = None
        self._gyro_flatline_count = 0
        self._have_la = False
        self._last_raw_accel = None
        self._accel_flatline_count = 0
        self.imu_stale_latched = False

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _reset_block(self, block: slice, value: np.ndarray, variance: float, channel: str) -> None:
        """Hard-reset one state block to a measurement and re-open gates."""
        if block == _V:
            self.velocity_ned = np.asarray(value, float).copy()
        elif block == _P:
            self.position_ned = np.asarray(value, float).copy()
        else:  # pragma: no cover - only vel/pos resets are defined
            raise ValueError("only velocity/position blocks can be reset")
        self.covariance[block, :] = 0.0
        self.covariance[:, block] = 0.0
        diag = self.covariance.ravel()[:: 16]
        diag[block] = variance
        self.monitor.clear_group_streaks(channel)

    def _vector_update(
        self,
        innovation: np.ndarray,
        block: slice,
        meas_var: np.ndarray,
        gate: float,
        name: str,
    ) -> None:
        """Sequential per-axis scalar updates for a direct-observation block."""
        start = block.start
        names = self._axis_names.get(name)
        if names is None:
            names = (f"{name}_0", f"{name}_1", f"{name}_2")
            self._axis_names[name] = names
        for axis in range(3):
            h = self._unit_h.get(start + axis)
            if h is None:
                h = np.zeros(15)
                h[start + axis] = 1.0
                self._unit_h[start + axis] = h
            self._scalar_update(
                float(innovation[axis]), h, float(meas_var[axis]), gate, names[axis]
            )

    def _scalar_update(
        self, innovation: float, h: np.ndarray, meas_var: float, gate: float, name: str
    ) -> None:
        """One gated scalar Kalman update."""
        ph = self._ph
        np.matmul(self.covariance, h, out=ph)
        # Covariance is PSD and meas_var > 0, but a fault window can
        # collapse both toward zero; the floor keeps the gain finite.
        s = max(float(h @ ph) + meas_var, 1e-12)
        test_ratio = (innovation * innovation) / (gate * gate * s)
        accepted = test_ratio <= 1.0
        self.monitor.record(name, self.time_s, test_ratio, accepted)
        if not accepted:
            return
        k = self._k
        np.divide(ph, s, out=k)
        np.multiply(k, innovation, out=self._dx)
        self._inject_error(self._dx)
        # Joseph-lite: symmetric covariance decrement, written in place
        # (`k[:, None] * ph` is bit-identical to `np.outer(k, ph)`).
        np.multiply(k[:, None], ph, out=self._outer)
        np.subtract(self.covariance, self._outer, out=self.covariance)
        np.add(self.covariance, self.covariance.T, out=self._sym)
        np.multiply(self._sym, 0.5, out=self.covariance)

    def _inject_error(self, dx: np.ndarray) -> None:
        """Fold an error-state correction into the nominal state."""
        p = self.params
        th = dx[_TH]
        quat_from_axis_angle_into(th, math.sqrt(float(th @ th)), self._dq4)
        quat_multiply_into(self.quaternion, self._dq4, self.quaternion)
        quat_normalize_into(self.quaternion, self.quaternion)
        self.velocity_ned += dx[_V]
        self.position_ned += dx[_P]
        np.add(self.gyro_bias, dx[_BG], out=self._bias_tmp)
        np.maximum(self._bias_tmp, -p.gyro_bias_limit, out=self.gyro_bias)
        np.minimum(self.gyro_bias, p.gyro_bias_limit, out=self.gyro_bias)
        np.add(self.accel_bias, dx[_BA], out=self._bias_tmp)
        np.maximum(self._bias_tmp, -p.accel_bias_limit, out=self.accel_bias)
        np.minimum(self.accel_bias, p.accel_bias_limit, out=self.accel_bias)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def attitude_std_rad(self) -> float:
        """1-sigma tilt uncertainty (worst roll/pitch axis)."""
        return float(np.sqrt(max(self.covariance[0, 0], self.covariance[1, 1])))

    @property
    def attitude_confidence(self) -> float:
        """Confidence factor in (0, 1] for gain scheduling.

        1.0 while the attitude is known to better than ~3 degrees,
        decaying toward a floor as the uncertainty grows (gyro flatline,
        violent fault transients).
        """
        sigma = self.attitude_std_rad
        reference = 0.06
        if sigma <= reference:
            return 1.0
        return max(0.12, reference / sigma)

    @property
    def state(self) -> EkfState:
        """Current nominal state (live views; copy before storing)."""
        return EkfState(
            self.quaternion,
            self.velocity_ned,
            self.position_ned,
            self.gyro_bias,
            self.accel_bias,
        )

    def rotate_body_to_world(self, v: np.ndarray) -> np.ndarray:
        """Rotate a body-frame vector into the world frame with q_hat."""
        return quat_rotate(self.quaternion, v)
