"""Error-state extended Kalman filter for multirotor navigation.

State layout (nominal):
    quaternion (body->world), velocity NED, position NED,
    gyro bias, accel bias.

Error state (15): ``[d_theta(3), d_vel(3), d_pos(3), d_bias_gyro(3),
d_bias_accel(3)]`` with the attitude error defined in the body frame,
``q_true = q_nominal * exp(d_theta)``.

The filter predicts at the IMU rate and applies GPS position/velocity,
barometric height, and magnetometer yaw updates with chi-square
innovation gating. Gated (rejected) innovations are reported through
:class:`~repro.estimation.health.InnovationMonitor`, which is what the
failsafe engine watches — mirroring PX4's EKF health flags.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mathutils import (
    quat_from_axis_angle,
    quat_integrate,
    quat_multiply,
    quat_normalize,
    quat_rotate,
    quat_to_euler,
    quat_to_rotation_matrix,
    skew,
    wrap_angle,
)
from repro.sensors.imu import ImuSample
from repro.sensors.gps import GpsSample
from repro.estimation.health import InnovationMonitor

# Error-state block indices.
_TH = slice(0, 3)
_V = slice(3, 6)
_P = slice(6, 9)
_BG = slice(9, 12)
_BA = slice(12, 15)


@dataclass
class EkfParams:
    """Noise densities, bias limits, and innovation gates.

    The gates are expressed as sigma multiples; an innovation whose
    normalised squared magnitude exceeds ``gate**2`` is rejected and
    counted by the health monitor.
    """

    gyro_noise: float = 0.03
    accel_noise: float = 0.2
    gyro_bias_walk: float = 5e-4
    accel_bias_walk: float = 3e-3
    gyro_bias_limit: float = 0.4
    accel_bias_limit: float = 1.0
    gps_pos_gate: float = 5.0
    gps_vel_gate: float = 5.0
    baro_gate: float = 5.0
    mag_gate: float = 4.0
    baro_noise_m: float = 0.3
    mag_noise_rad: float = 0.05
    #: Ablation switch: disable the PX4-style fusion-timeout hard reset
    #: (the mechanism that lets the filter recover after divergence).
    enable_fusion_reset: bool = True


@dataclass
class EkfState:
    """Nominal state snapshot (arrays are views; copy before storing)."""

    quaternion: np.ndarray
    velocity_ned: np.ndarray
    position_ned: np.ndarray
    gyro_bias: np.ndarray
    accel_bias: np.ndarray

    @property
    def yaw_rad(self) -> float:
        return quat_to_euler(self.quaternion)[2]

    def copy(self) -> "EkfState":
        return EkfState(
            self.quaternion.copy(),
            self.velocity_ned.copy(),
            self.position_ned.copy(),
            self.gyro_bias.copy(),
            self.accel_bias.copy(),
        )


class Ekf:
    """The estimator: IMU-driven prediction plus gated aiding updates."""

    #: Consecutive per-axis GPS rejections before the corresponding state
    #: block is hard-reset to the measurement (PX4's fusion-timeout
    #: reset). At the 5 Hz GPS rate this is ~1.6 s of disagreement.
    RESET_REJECTION_COUNT = 8

    def __init__(
        self,
        params: EkfParams | None = None,
        gravity_m_s2: float = 9.80665,
        initial_position_ned: np.ndarray | None = None,
        initial_yaw_rad: float = 0.0,
    ):
        self.params = params or EkfParams()
        self._gravity_ned = np.array([0.0, 0.0, gravity_m_s2])
        self.quaternion = quat_from_axis_angle(np.array([0.0, 0.0, 1.0]), initial_yaw_rad)
        self.velocity_ned = np.zeros(3)
        self.position_ned = (
            np.zeros(3) if initial_position_ned is None else np.asarray(initial_position_ned, float)
        )
        self.gyro_bias = np.zeros(3)
        self.accel_bias = np.zeros(3)

        # Initial uncertainty: well-initialised SITL vehicle on the pad.
        self.covariance = np.diag(
            [0.01] * 3 + [0.1] * 3 + [0.25] * 3 + [1e-4] * 3 + [1e-2] * 3
        )
        self.monitor = InnovationMonitor()
        self.time_s = 0.0
        # Angular rate after bias removal; the rate controller consumes
        # the raw gyro, but logging and failsafe use this too.
        self.rate_body = np.zeros(3)
        # Stuck-sensor (flatline) detection: a real MEMS gyro never emits
        # bit-identical samples (thermal noise), so an exactly-constant
        # triad means the data stream is dead or frozen.
        self._last_raw_gyro: np.ndarray | None = None
        self._gyro_flatline_count = 0
        self._last_raw_accel: np.ndarray | None = None
        self._accel_flatline_count = 0
        # Latched filter fault: a full-IMU dropout (both triads
        # flatlined) means the inertial solution integrity is gone; like
        # PX4's EKF failure handling, the fault latches until landing.
        self.imu_stale_latched = False

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------

    def predict(self, imu: ImuSample, dt: float) -> None:
        """Propagate nominal state and covariance with one IMU sample."""
        if dt <= 0.0:
            raise ValueError("dt must be positive")
        p = self.params
        omega = imu.gyro - self.gyro_bias
        accel = imu.accel - self.accel_bias
        self.rate_body = omega

        # Flatline detection: with the gyro stream dead (zeros or frozen)
        # the attitude is no longer measured, only *dead-reckoned*, so the
        # attitude process noise must grow accordingly. The inflated
        # covariance lets GPS-velocity innovations correct the attitude
        # through the velocity/attitude cross-covariance — without this,
        # the filter keeps trusting a sensor that has stopped reporting.
        if self._last_raw_gyro is not None and np.array_equal(imu.gyro, self._last_raw_gyro):
            self._gyro_flatline_count += 1
        else:
            self._gyro_flatline_count = 0
        self._last_raw_gyro = imu.gyro.copy()
        gyro_noise = p.gyro_noise if self._gyro_flatline_count < 20 else 0.8

        if self._last_raw_accel is not None and np.array_equal(imu.accel, self._last_raw_accel):
            self._accel_flatline_count += 1
        else:
            self._accel_flatline_count = 0
        self._last_raw_accel = imu.accel.copy()
        if self._gyro_flatline_count >= 50 and self._accel_flatline_count >= 50:
            self.imu_stale_latched = True

        rot = quat_to_rotation_matrix(self.quaternion)
        accel_world = rot @ accel + self._gravity_ned

        # Nominal propagation.
        self.position_ned = self.position_ned + self.velocity_ned * dt + 0.5 * accel_world * dt * dt
        self.velocity_ned = self.velocity_ned + accel_world * dt
        self.quaternion = quat_integrate(self.quaternion, omega, dt)

        # Covariance propagation: Phi = I + F dt (adequate at IMU rate).
        phi = np.eye(15)
        phi[_TH, _TH] -= skew(omega) * dt
        phi[_TH, _BG] = -np.eye(3) * dt
        phi[_V, _TH] = -rot @ skew(accel) * dt
        phi[_V, _BA] = -rot * dt
        phi[_P, _V] = np.eye(3) * dt

        self.covariance = phi @ self.covariance @ phi.T
        diag = self.covariance.ravel()[:: 16]
        diag[_TH] += (gyro_noise**2) * dt
        diag[_V] += (p.accel_noise**2) * dt
        diag[_BG] += (p.gyro_bias_walk**2) * dt
        diag[_BA] += (p.accel_bias_walk**2) * dt
        self.time_s = imu.time_s

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def update_gps(self, fix: GpsSample) -> None:
        """Apply GPS position and velocity aiding.

        If a channel has been in sustained rejection (the filter diverged
        from reality, e.g. because an IMU fault dragged the prediction
        away), the corresponding state block is hard-reset to the fix —
        PX4's fusion-timeout behaviour, and the mechanism that lets
        vehicles recover once a short injection ends.
        """
        if self.params.enable_fusion_reset:
            if self.monitor.group_max_consecutive("gps_vel") >= self.RESET_REJECTION_COUNT:
                self._reset_block(_V, fix.velocity_ned, 1.0, "gps_vel")
            if self.monitor.group_max_consecutive("gps_pos") >= self.RESET_REJECTION_COUNT:
                self._reset_block(_P, fix.position_ned, 4.0, "gps_pos")

        p = self.params
        pos_var = np.array(
            [
                fix.horizontal_accuracy_m**2,
                fix.horizontal_accuracy_m**2,
                fix.vertical_accuracy_m**2,
            ]
        )
        innov_p = fix.position_ned - self.position_ned
        self._vector_update(innov_p, _P, pos_var, p.gps_pos_gate, "gps_pos")

        vel_var = np.full(3, 0.15**2)
        innov_v = fix.velocity_ned - self.velocity_ned
        self._vector_update(innov_v, _V, vel_var, p.gps_vel_gate, "gps_vel")

    def update_baro(self, altitude_m: float) -> None:
        """Apply barometric height aiding (altitude positive up)."""
        innov = altitude_m - (-self.position_ned[2])
        h = np.zeros(15)
        h[8] = -1.0  # d(alt)/d(p_down)
        self._scalar_update(innov, h, self.params.baro_noise_m**2, self.params.baro_gate, "baro")

    def update_mag_yaw(self, yaw_meas_rad: float) -> None:
        """Apply magnetometer yaw aiding."""
        yaw_est = quat_to_euler(self.quaternion)[2]
        innov = wrap_angle(yaw_meas_rad - yaw_est)
        rot = quat_to_rotation_matrix(self.quaternion)
        h = np.zeros(15)
        # Small body-frame attitude errors map to world-frame errors via R;
        # yaw error is the world-z component.
        h[_TH] = rot[2, :]
        self._scalar_update(innov, h, self.params.mag_noise_rad**2, self.params.mag_gate, "mag")

    #: Gain (1/s) of the complementary gravity-tilt correction.
    GRAVITY_AIDING_GAIN = 3.0

    def update_gravity_tilt(
        self, accel_body: np.ndarray, gyro_body: np.ndarray, dt: float = 0.05
    ) -> None:
        """Quasi-static tilt aiding from the accelerometer's gravity vector.

        When the specific force is close to 1 g and the measured rates are
        small, the accelerometer direction observes roll/pitch. The
        correction is applied as a Mahony-style complementary blend,
        ``q <- q * exp(k * err * dt)``, rather than a gated Kalman update:
        its authority must scale with the error so the filter can re-level
        after (or during) a gyro fault window, when the gyro-trusting
        covariance would otherwise gate the information out exactly when
        it is needed. During violent motion or accelerometer faults the
        quasi-static check keeps it out of the loop.
        """
        g = self._gravity_ned[2]
        norm = float(np.linalg.norm(accel_body))
        quasi_static = abs(norm - g) <= 0.12 * g and float(np.linalg.norm(gyro_body)) <= 0.25
        if not quasi_static:
            return
        rot = quat_to_rotation_matrix(self.quaternion)
        expected = rot.T @ np.array([0.0, 0.0, -1.0])
        measured = accel_body / norm
        # Small-angle attitude error (body frame); z component excluded —
        # gravity says nothing about yaw.
        err = np.cross(measured, expected)
        err[2] = 0.0
        err_norm = float(np.linalg.norm(err))
        self.monitor.record("grav", self.time_s, err_norm, True)
        if err_norm < 1e-9:
            return
        angle = self.GRAVITY_AIDING_GAIN * dt * err_norm
        dq = quat_from_axis_angle(err, min(angle, 0.3))
        self.quaternion = quat_normalize(quat_multiply(self.quaternion, dq))

    # ------------------------------------------------------------------
    # Sensor switchover
    # ------------------------------------------------------------------

    def reseed_after_imu_switch(self) -> None:
        """Re-seed the delta-state after the primary IMU is replaced.

        The bias estimates, flatline trackers, and innovation history
        all describe the *retired* sensor: the new member has its own
        turn-on biases, and the rejection windows accumulated while
        flying corrupted data would keep the failsafe's EKF-health
        trigger latched long after the data went clean. Position is
        kept (GPS-derived, sensor-independent); attitude and velocity
        covariance are inflated so the aiding updates can pull the
        nominal state back from wherever the fault dragged it.
        """
        diag = self.covariance.ravel()[::16]
        for block, variance in ((_BG, 1e-4), (_BA, 1e-2)):
            self.covariance[block, :] = 0.0
            self.covariance[:, block] = 0.0
            diag[block] = variance
        self.gyro_bias = np.zeros(3)
        self.accel_bias = np.zeros(3)
        diag[_TH] += 0.02
        diag[_V] += 0.25
        self.monitor.reset_all_windows()
        self._last_raw_gyro = None
        self._gyro_flatline_count = 0
        self._last_raw_accel = None
        self._accel_flatline_count = 0
        self.imu_stale_latched = False

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _reset_block(self, block: slice, value: np.ndarray, variance: float, channel: str) -> None:
        """Hard-reset one state block to a measurement and re-open gates."""
        if block == _V:
            self.velocity_ned = np.asarray(value, float).copy()
        elif block == _P:
            self.position_ned = np.asarray(value, float).copy()
        else:  # pragma: no cover - only vel/pos resets are defined
            raise ValueError("only velocity/position blocks can be reset")
        self.covariance[block, :] = 0.0
        self.covariance[:, block] = 0.0
        diag = self.covariance.ravel()[:: 16]
        diag[block] = variance
        self.monitor.clear_group_streaks(channel)

    def _vector_update(
        self,
        innovation: np.ndarray,
        block: slice,
        meas_var: np.ndarray,
        gate: float,
        name: str,
    ) -> None:
        """Sequential per-axis scalar updates for a direct-observation block."""
        start = block.start
        for axis in range(3):
            h = np.zeros(15)
            h[start + axis] = 1.0
            self._scalar_update(
                float(innovation[axis]), h, float(meas_var[axis]), gate, f"{name}_{axis}"
            )

    def _scalar_update(
        self, innovation: float, h: np.ndarray, meas_var: float, gate: float, name: str
    ) -> None:
        """One gated scalar Kalman update."""
        ph = self.covariance @ h
        # Covariance is PSD and meas_var > 0, but a fault window can
        # collapse both toward zero; the floor keeps the gain finite.
        s = max(float(h @ ph) + meas_var, 1e-12)
        test_ratio = (innovation * innovation) / (gate * gate * s)
        accepted = test_ratio <= 1.0
        self.monitor.record(name, self.time_s, test_ratio, accepted)
        if not accepted:
            return
        k = ph / s
        self._inject_error(k * innovation)
        # Joseph-lite: symmetric covariance decrement.
        self.covariance = self.covariance - np.outer(k, ph)
        self.covariance = 0.5 * (self.covariance + self.covariance.T)

    def _inject_error(self, dx: np.ndarray) -> None:
        """Fold an error-state correction into the nominal state."""
        p = self.params
        dq = quat_from_axis_angle(dx[_TH], float(np.linalg.norm(dx[_TH])))
        self.quaternion = quat_normalize(quat_multiply(self.quaternion, dq))
        self.velocity_ned = self.velocity_ned + dx[_V]
        self.position_ned = self.position_ned + dx[_P]
        self.gyro_bias = np.clip(
            self.gyro_bias + dx[_BG], -p.gyro_bias_limit, p.gyro_bias_limit
        )
        self.accel_bias = np.clip(
            self.accel_bias + dx[_BA], -p.accel_bias_limit, p.accel_bias_limit
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def attitude_std_rad(self) -> float:
        """1-sigma tilt uncertainty (worst roll/pitch axis)."""
        return float(np.sqrt(max(self.covariance[0, 0], self.covariance[1, 1])))

    @property
    def attitude_confidence(self) -> float:
        """Confidence factor in (0, 1] for gain scheduling.

        1.0 while the attitude is known to better than ~3 degrees,
        decaying toward a floor as the uncertainty grows (gyro flatline,
        violent fault transients).
        """
        sigma = self.attitude_std_rad
        reference = 0.06
        if sigma <= reference:
            return 1.0
        return max(0.12, reference / sigma)

    @property
    def state(self) -> EkfState:
        """Current nominal state (live views; copy before storing)."""
        return EkfState(
            self.quaternion,
            self.velocity_ned,
            self.position_ned,
            self.gyro_bias,
            self.accel_bias,
        )

    def rotate_body_to_world(self, v: np.ndarray) -> np.ndarray:
        """Rotate a body-frame vector into the world frame with q_hat."""
        return quat_rotate(self.quaternion, v)
