"""State estimation — the PX4 EKF2 substitute.

A 15-error-state extended Kalman filter fuses (possibly fault-injected)
IMU data with GPS, barometer, and magnetometer aiding. The paper's whole
causal chain runs through this filter: corrupted accelerometer samples
bend the velocity/position estimate (trajectory deviation, bubble
violations), while corrupted gyroscope samples destroy attitude
knowledge and destabilise the vehicle (crash / failsafe).
"""

from repro.estimation.ekf import Ekf, EkfParams, EkfState
from repro.estimation.health import EstimatorHealth, InnovationMonitor

__all__ = ["Ekf", "EkfParams", "EkfState", "EstimatorHealth", "InnovationMonitor"]
