"""Estimator health: innovation bookkeeping and fault flags.

PX4 exposes EKF innovation test ratios and "filter fault" flags that the
commander's failsafe logic consumes; this module reproduces that
interface. Two views of each innovation channel are kept:

* ``consecutive_rejections`` — drives the filter's own *fusion-timeout
  reset* (a short streak means the filter and the aiding source
  disagree and the state block should be re-seeded);
* a rolling accept/reject window — drives the *failsafe health flag*.
  Resets clear the streak but not the window, so a filter that is stuck
  in a reject/reset/reject cycle (violent IMU corruption) still degrades
  to "failed", while one that recovers after a reset (mild corruption)
  does not. This split is what lets Acc-Zeros-style faults stay flyable
  while Min/Max/Random faults escalate to the failsafe, as the paper
  observes.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field


@dataclass
class ChannelHealth:
    """Rolling statistics for one innovation channel."""

    #: Share of the rolling window that must be populated before the
    #: channel may report ``failed`` (15/25 with the default window).
    FAILED_MIN_FILL = 0.6

    window_size: int = 25
    last_test_ratio: float = 0.0
    peak_test_ratio: float = 0.0
    consecutive_rejections: int = 0
    total_rejections: int = 0
    total_updates: int = 0
    recent: deque[bool] = field(default_factory=deque)

    def __post_init__(self) -> None:
        if self.window_size < 1:
            raise ValueError("window_size must be >= 1")
        # Re-bound whatever deque we were given so window_size is the
        # single source of truth (a plain default deque is unbounded).
        self.recent = deque(self.recent, maxlen=self.window_size)
        # Incrementally maintained accept count: `failed` is polled every
        # tick per channel, so summing the window there is O(n) wasted.
        self._accepted = sum(self.recent)
        self._min_fill = max(1, round(self.FAILED_MIN_FILL * self.window_size))

    def record(self, test_ratio: float, accepted: bool) -> None:
        self.last_test_ratio = test_ratio
        self.peak_test_ratio = max(self.peak_test_ratio, test_ratio)
        self.total_updates += 1
        if len(self.recent) == self.window_size:
            self._accepted -= self.recent[0]  # evicted by the append below
        self.recent.append(accepted)
        self._accepted += accepted
        if accepted:
            self.consecutive_rejections = 0
        else:
            self.consecutive_rejections += 1
            self.total_rejections += 1

    @property
    def rejection_fraction(self) -> float:
        """Share of rejected updates in the rolling window."""
        if not self.recent:
            return 0.0
        return 1.0 - self._accepted / len(self.recent)

    @property
    def failed(self) -> bool:
        """Sustained, near-total rejection in the rolling window."""
        return len(self.recent) >= self._min_fill and self.rejection_fraction >= 0.8

    def reset_window(self) -> None:
        """Forget the rolling history (e.g. after a sensor switchover)."""
        self.recent.clear()
        self._accepted = 0
        self.consecutive_rejections = 0


class InnovationMonitor:
    """Records accept/reject decisions per innovation channel.

    Vector measurements use per-axis channel names (``gps_vel_0`` ...),
    so a single bad axis cannot hide behind two healthy ones; group
    queries (:meth:`group_failed`) match on the prefix.
    """

    def __init__(self) -> None:
        self.channels: dict[str, ChannelHealth] = defaultdict(ChannelHealth)
        # Prefix -> member list, rebuilt whenever a channel appears. The
        # channel set grows monotonically (defaultdict, never deleted),
        # so a count check is a complete invalidation test.
        self._groups: dict[str, list[ChannelHealth]] = {}
        self._cached_count = 0

    def record(self, channel: str, time_s: float, test_ratio: float, accepted: bool) -> None:
        """Record one innovation decision."""
        self.channels[channel].record(test_ratio, accepted)

    def channel_failed(self, channel: str) -> bool:
        """True when a channel's rolling window shows sustained rejection."""
        return self.channels[channel].failed

    def _group(self, prefix: str) -> list[ChannelHealth]:
        if len(self.channels) != self._cached_count:
            self._groups.clear()
            self._cached_count = len(self.channels)
        group = self._groups.get(prefix)
        if group is None:
            group = [
                health
                for name, health in self.channels.items()
                if name == prefix or name.startswith(prefix + "_")
            ]
            self._groups[prefix] = group
        return group

    def group_failed(self, prefix: str) -> bool:
        """True when any channel named ``prefix`` or ``prefix_*`` failed."""
        return any(health.failed for health in self._group(prefix))

    def group_max_consecutive(self, prefix: str) -> int:
        """Largest per-axis rejection streak in a channel group."""
        return max(
            (health.consecutive_rejections for health in self._group(prefix)),
            default=0,
        )

    def clear_group_streaks(self, prefix: str) -> None:
        """Reset rejection streaks after a state reset (windows persist)."""
        for health in self._group(prefix):
            health.consecutive_rejections = 0

    def reset_all_windows(self) -> None:
        """Forget every channel's rolling history.

        Used on IMU switchover: the rejections accumulated against the
        failed sensor say nothing about the new primary, and a stale
        ~80%-rejected window would keep the failsafe's EKF-health
        trigger latched for the whole isolation budget.
        """
        for health in self.channels.values():
            health.reset_window()

    def any_velocity_position_failed(self) -> bool:
        """PX4-style 'filter fault' proxy used by the failsafe engine."""
        return self.group_failed("gps_pos") or self.group_failed("gps_vel")

    def test_ratio(self, channel: str) -> float:
        """Most recent normalised innovation test ratio for ``channel``."""
        return self.channels[channel].last_test_ratio


@dataclass(slots=True)
class EstimatorHealth:
    """Snapshot of estimator health consumed by the failsafe engine."""

    #: Attitude 1-sigma uncertainty (rad) above which the attitude
    #: estimate is declared invalid. A gyro-dead vehicle held together by
    #: GPS-velocity corrections plateaus well below this; only a fully
    #: dead IMU (no gyro *and* no specific-force observability) crosses it.
    ATTITUDE_INVALID_STD_RAD = 0.55

    velocity_aiding_failed: bool
    position_aiding_failed: bool
    yaw_aiding_failed: bool
    worst_test_ratio: float
    attitude_std_rad: float = 0.0
    imu_stale: bool = False

    @classmethod
    def from_monitor(
        cls,
        monitor: InnovationMonitor,
        attitude_std_rad: float = 0.0,
        imu_stale: bool = False,
    ) -> "EstimatorHealth":
        worst = max(
            (ch.last_test_ratio for ch in monitor.channels.values()), default=0.0
        )
        return cls(
            velocity_aiding_failed=monitor.group_failed("gps_vel"),
            position_aiding_failed=monitor.group_failed("gps_pos"),
            yaw_aiding_failed=monitor.group_failed("mag"),
            worst_test_ratio=worst,
            attitude_std_rad=attitude_std_rad,
            imu_stale=imu_stale,
        )

    @property
    def attitude_invalid(self) -> bool:
        """True when the attitude estimate is too uncertain to fly on."""
        return self.attitude_std_rad > self.ATTITUDE_INVALID_STD_RAD

    @property
    def degraded(self) -> bool:
        """True when any aiding source or the attitude estimate failed."""
        return (
            self.velocity_aiding_failed
            or self.position_aiding_failed
            or self.yaw_aiding_failed
            or self.attitude_invalid
            or self.imu_stale
        )
