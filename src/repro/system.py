"""`UavSystem`: one simulated vehicle with its full PX4-like stack.

Wires together, in the paper's architecture (Fig. 1):

    physics (truth) -> sensors -> **fault injector** -> EKF -> outer
    control loops -> attitude loop -> rate loop (raw gyro!) -> mixer ->
    physics

plus the commander/navigator/failsafe vehicle management, the bubble
monitor fed at U-space tracking instances, the flight recorder, and an
optional telemetry broker.

The loop runs at a fixed 100 Hz physics/control rate with GPS at 5 Hz,
baro/mag at 20 Hz, and tracking at 1 Hz.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.control import (
    AttitudeController,
    Mixer,
    PositionController,
    PositionControllerParams,
    RateController,
)
from repro.core.faults import FaultSpec
from repro.estimation import Ekf, EkfParams, EstimatorHealth
from repro.flightstack import (
    Commander,
    CrashDetector,
    FailsafeEngine,
    FailsafeState,
    FlightParams,
    FlightPhase,
    IsolationOutcome,
    MissionOutcome,
)
from repro.missions.plan import MissionPlan
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.redundancy import ImuBank, RedundancyConfig, RedundancyManager
from repro.sensors import Barometer, GpsModel, Magnetometer
from repro.sim import (
    AirframeParams,
    Environment,
    QuadrotorAirframe,
    QuadrotorPhysics,
    RigidBodyState,
    WindModel,
)
from repro.telemetry import Broker, FlightRecorder, TrackMessage
from repro.uspace import BubbleMonitor


@dataclass
class SystemConfig:
    """Rates, seeds, and parameter overrides for one vehicle run."""

    physics_dt_s: float = 0.01
    tracking_interval_s: float = 1.0
    recorder_rate_hz: float = 5.0
    risk_factor: float = 1.0
    seed: int = 0
    wind_gust_sigma_m_s: float = 0.25
    flight_params: FlightParams = field(default_factory=FlightParams)
    ekf_params: EkfParams = field(default_factory=EkfParams)
    #: Ablation switch: when False the attitude loop always runs at full
    #: gain, ignoring the estimator's attitude confidence.
    confidence_scheduling: bool = True
    #: Redundant IMU bank + voter; disabled = the paper's single-IMU
    #: vehicle, bit-identical to the pre-redundancy pipeline.
    redundancy: RedundancyConfig = field(default_factory=RedundancyConfig)

    def __post_init__(self) -> None:
        if self.physics_dt_s <= 0.0:
            raise ValueError("physics_dt_s must be positive")


@dataclass
class MissionResult:
    """Everything the paper's metrics need from one run."""

    mission_id: int
    outcome: MissionOutcome
    flight_duration_s: float
    distance_km: float
    inner_violations: int
    outer_violations: int
    tracking_instances: int
    max_deviation_m: float
    crash_time_s: float | None
    failsafe_time_s: float | None
    fault_label: str
    failsafe_trigger: str = "none"
    isolation_outcome: str = "not_attempted"
    isolation_succeeded: bool | None = None
    imu_switchovers: int = 0
    #: Path of the black-box dump written by the observer when the run
    #: did not complete (None when obs is off or the run completed).
    blackbox_path: str | None = None

    @property
    def completed(self) -> bool:
        return self.outcome == MissionOutcome.COMPLETED


class UavSystem:
    """One vehicle, one mission, one (optional) fault injection."""

    def __init__(
        self,
        plan: MissionPlan,
        config: SystemConfig | None = None,
        fault: FaultSpec | None = None,
        broker: Broker | None = None,
        obs: Observer | None = None,
    ):
        self.plan = plan
        self.config = config or SystemConfig()
        cfg = self.config
        seed = cfg.seed + plan.mission_id * 1009

        airframe = QuadrotorAirframe(AirframeParams(mass_kg=plan.drone.mass_kg))
        environment = Environment(
            wind=WindModel(gust_sigma_m_s=cfg.wind_gust_sigma_m_s, seed=seed + 1)
        )
        initial_yaw = self._initial_yaw(plan)
        initial = RigidBodyState()
        initial.position_ned = plan.home_ned.copy()
        from repro.mathutils import quat_from_euler

        initial.quaternion = quat_from_euler(0.0, 0.0, initial_yaw)
        self.physics = QuadrotorPhysics(airframe, environment, initial)

        # Member 0 of the bank reuses the historical IMU seed, so a
        # disabled-redundancy vehicle (bank of one) is bit-identical to
        # the original single-IMU pipeline.
        red = cfg.redundancy
        self.imu_bank = ImuBank(
            fault,
            num_members=red.num_members if red.enabled else 1,
            base_seed=seed + 2,
        )
        self.imu = self.imu_bank.members[0]
        self.injector = self.imu_bank.injectors[0]
        self.redundancy = RedundancyManager(
            red.voter, self.imu_bank.num_members, enabled=red.enabled
        )
        self.gps = GpsModel(seed=seed + 3)
        self.baro = Barometer(seed=seed + 4)
        self.mag = Magnetometer(seed=seed + 5)
        self.fault = fault

        self.ekf = Ekf(
            params=cfg.ekf_params,
            initial_position_ned=plan.home_ned,
            initial_yaw_rad=initial_yaw,
        )

        pos_params = PositionControllerParams(
            max_speed_xy_m_s=plan.drone.top_speed_m_s,
        )
        self.position_controller = PositionController(
            params=pos_params,
            mass_kg=plan.drone.mass_kg,
            max_total_thrust_n=4.0 * airframe.params.motor.max_thrust_n,
        )
        self.attitude_controller = AttitudeController()
        self.rate_controller = RateController()
        self.mixer = Mixer()

        self.commander = Commander(plan, cfg.flight_params)
        self.failsafe = FailsafeEngine(cfg.flight_params)
        self.crash_detector = CrashDetector()
        self.bubble_monitor = BubbleMonitor(
            plan, tracking_interval_s=cfg.tracking_interval_s, risk_factor=cfg.risk_factor
        )
        # Observability plane: NULL_OBSERVER's hooks and sinks are all
        # no-ops, so an uninstrumented vehicle pays one empty call per
        # step and zero branches. The commander/failsafe/redundancy
        # modules emit into the observer's trace at their transitions;
        # the flight recorder feeds its registry.
        self.obs = obs if obs is not None else NULL_OBSERVER
        self.commander.obs = self.obs.trace
        self.failsafe.obs = self.obs.trace
        self.redundancy.obs = self.obs.trace
        if broker is not None:
            self.obs.attach_broker(broker, plan.mission_id)
        self.recorder = FlightRecorder(
            rate_hz=cfg.recorder_rate_hz, registry=self.obs.metrics
        )
        self.broker = broker
        self._last_gyro = np.zeros(3)
        # Idle motor command, shared read-only (MotorBank clips into its
        # own buffer).
        self._idle_motors = np.zeros(4)

    @staticmethod
    def _initial_yaw(plan: MissionPlan) -> float:
        """Face the first leg before takeoff, like a pre-armed PX4 vehicle."""
        first = plan.waypoints[0].array
        second = plan.waypoints[1].array
        return math.atan2(second[1] - first[1], second[0] - first[0])

    # ------------------------------------------------------------------

    def step(self) -> None:
        """Advance the whole system by one physics tick."""
        cfg = self.config
        dt = cfg.physics_dt_s
        t = self.physics.time_s
        truth = self.physics.state

        # 1. Sensing (+ fault injection on the IMU path). The redundancy
        # manager picks which bank member feeds the stack; switchover is
        # only allowed while the failsafe is isolating.
        samples = self.imu_bank.sample(
            t, self.physics.specific_force_body, truth.angular_rate_body, dt
        )
        selection = self.redundancy.select(
            t, samples, dt, isolating=self.failsafe.state == FailsafeState.ISOLATING
        )
        imu_sample = selection.sample
        if selection.switched:
            # New physical sensor: re-seed the estimator's delta-state
            # and give the failsafe a fresh isolation window.
            self.ekf.reseed_after_imu_switch()
            self.failsafe.report_isolation(t, IsolationOutcome.SWITCHED)
        elif selection.exhausted:
            self.failsafe.report_isolation(t, IsolationOutcome.EXHAUSTED)
        self._last_gyro = imu_sample.gyro

        # 2. Estimation.
        self.ekf.predict(imu_sample, dt)
        fix = self.gps.maybe_sample(t, truth.position_ned, truth.velocity_ned)
        if fix is not None:
            self.ekf.update_gps(fix)
        alt = self.baro.maybe_sample(t, truth.altitude_m)
        if alt is not None:
            self.ekf.update_baro(alt)
        yaw = self.mag.maybe_sample(t, truth.quaternion)
        if yaw is not None:
            self.ekf.update_mag_yaw(yaw)
            self.ekf.update_gravity_tilt(imu_sample.accel, imu_sample.gyro)
        elif self.redundancy.degraded:
            # No healthy bank member left: the gyro-integrated attitude
            # is drifting on faulty data, so run the complementary
            # gravity-tilt blend every tick instead of at the mag rate.
            self.ekf.update_gravity_tilt(imu_sample.accel, imu_sample.gyro, dt)

        ekf = self.ekf
        est_tilt = self._estimated_tilt()

        # 3. Vehicle management.
        health = EstimatorHealth.from_monitor(
            self.ekf.monitor,
            attitude_std_rad=self.ekf.attitude_std_rad,
            imu_stale=self.ekf.imu_stale_latched,
        )
        # Failure detection arms only clear of the ground: takeoff and
        # touchdown transients produce legitimate rate spikes (PX4
        # equally suppresses failure detection while landed).
        airborne = not self.physics.on_ground and truth.altitude_m > 2.0
        self.failsafe.update(
            t,
            imu_sample.gyro,
            est_tilt,
            health,
            in_flight=self.commander.in_flight and airborne,
        )
        landing_expected = self.commander.phase in (
            FlightPhase.LANDING,
            FlightPhase.FAILSAFE_LAND,
        )
        self.crash_detector.assess_contact(self.physics.last_contact, landing_expected)
        out = self.commander.update(
            t,
            ekf.position_ned,
            on_ground=self.physics.on_ground,
            failsafe_engaged=self.failsafe.engaged,
            crashed=self.crash_detector.crashed,
        )

        # 4. Control cascade.
        if out.thrust_idle:
            motors = self._idle_motors
        else:
            vel_sp = self.position_controller.velocity_setpoint(
                out.position_sp_ned,
                ekf.position_ned,
                feedforward_ned=out.velocity_ff_ned,
                cruise_speed_m_s=out.cruise_speed_m_s or None,
            )
            accel_sp = self.position_controller.acceleration_setpoint(
                vel_sp, ekf.velocity_ned, dt
            )
            collective, q_sp = self.position_controller.thrust_and_attitude(
                accel_sp, out.yaw_sp_rad
            )
            confidence = (
                self.ekf.attitude_confidence if cfg.confidence_scheduling else 1.0
            )
            rate_sp = self.attitude_controller.rate_setpoint(
                ekf.quaternion, q_sp, confidence=confidence
            )
            torque = self.rate_controller.torque_command(rate_sp, imu_sample.gyro, dt)
            motors = self.mixer.mix(collective, torque)

        # 5. Physics.
        self.physics.step(motors, dt)

        # 6. Surveillance and logging (reported = estimated state). The
        # airspeed and true tilt are only computed on the ticks where the
        # 1 Hz tracker / 5 Hz recorder actually consume them.
        if self.bubble_monitor.due(t):
            airspeed = float(np.linalg.norm(ekf.velocity_ned))
            point = self.bubble_monitor.maybe_track(t, ekf.position_ned, airspeed)
            if point is not None and self.broker is not None:
                self.broker.publish(
                    f"track/{self.plan.mission_id}",
                    TrackMessage(
                        drone_id=self.plan.mission_id,
                        time_s=t,
                        position_ned=tuple(ekf.position_ned),
                        velocity_ned=tuple(ekf.velocity_ned),
                        airspeed_m_s=airspeed,
                    ),
                )
        if self.recorder.due(t):
            self.recorder.maybe_record(
                t,
                truth.position_ned,
                ekf.position_ned,
                truth.velocity_ned,
                ekf.velocity_ned,
                truth.tilt_rad,
                self.commander.phase.value,
                self.injector.is_active(t),
            )
        self.obs.on_step(self)

    def _estimated_tilt(self) -> float:
        """Tilt angle of the EKF attitude estimate."""
        w, x, y, z = self.ekf.quaternion
        cos_tilt = 1.0 - 2.0 * (x * x + y * y)
        return math.acos(min(1.0, max(-1.0, cos_tilt)))

    # ------------------------------------------------------------------

    def run(self, max_time_s: float | None = None) -> MissionResult:
        """Fly the mission to a terminal verdict and compute the metrics."""
        self.obs.on_run_start(self)
        self.commander.arm_and_takeoff(self.physics.time_s)
        params = self.config.flight_params
        hard_cap = max_time_s or max(
            params.mission_timeout_min_s + 60.0,
            self.plan.estimated_duration_s() * (params.mission_timeout_factor + 0.5),
        )
        while not self.commander.terminal and self.physics.time_s < hard_cap:
            self.step()
        if not self.commander.terminal:
            self.commander.outcome = MissionOutcome.TIMEOUT
            self.commander.end_time_s = self.physics.time_s

        blackbox_path = self.obs.on_run_end(self)
        takeoff = self.commander.takeoff_time_s or 0.0
        end = self.commander.end_time_s or self.physics.time_s
        counts = self.bubble_monitor.counts
        return MissionResult(
            mission_id=self.plan.mission_id,
            outcome=self.commander.outcome,
            flight_duration_s=end - takeoff,
            distance_km=self.recorder.estimated_distance_m / 1000.0,
            inner_violations=counts.inner,
            outer_violations=counts.outer,
            tracking_instances=counts.tracking_instances,
            max_deviation_m=counts.max_deviation_m,
            crash_time_s=(
                self.crash_detector.report.time_s if self.crash_detector.report else None
            ),
            failsafe_time_s=self.failsafe.engaged_time_s,
            fault_label=self.fault.label if self.fault else "Gold Run",
            failsafe_trigger=self.failsafe.trigger.value,
            isolation_outcome=self.failsafe.isolation_outcome.value,
            isolation_succeeded=self.failsafe.isolation_succeeded,
            imu_switchovers=len(self.redundancy.events),
            blackbox_path=blackbox_path,
        )
