"""Cascaded flight control — the PX4 multicopter controller substitute.

The cascade mirrors PX4's topology, which matters for fault propagation:

* position -> velocity -> acceleration loops consume **EKF estimates**,
  so accelerometer faults reach them through the filter;
* the attitude loop consumes the **EKF quaternion**;
* the body-rate loop consumes the **raw gyro signal** directly, so
  gyroscope faults destabilise the vehicle with no filtering in between
  (exactly why the paper finds gyro faults so much deadlier).
"""

from repro.control.pid import Pid, PidParams
from repro.control.position import PositionController, PositionControllerParams
from repro.control.attitude import AttitudeController, AttitudeControllerParams
from repro.control.rate import RateController, RateControllerParams
from repro.control.mixer import Mixer

__all__ = [
    "Pid",
    "PidParams",
    "PositionController",
    "PositionControllerParams",
    "AttitudeController",
    "AttitudeControllerParams",
    "RateController",
    "RateControllerParams",
    "Mixer",
]
