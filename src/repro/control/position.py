"""Position and velocity control: from setpoints to a thrust vector.

Implements PX4's ``mc_pos_control`` structure: a P position loop feeding
a PID velocity loop whose output is an acceleration setpoint, converted
to a desired thrust direction + magnitude and a tilt-limited attitude
setpoint.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.control.pid import Pid, PidParams
from repro.mathutils import clamp, quat_from_rotation_matrix_into


@dataclass
class PositionControllerParams:
    """Gains and envelope limits for the outer loops."""

    pos_p: float = 0.95
    vel_pid: PidParams = field(
        default_factory=lambda: PidParams(
            kp=2.8, ki=0.6, kd=0.15, output_limit=8.0, integral_limit=2.0
        )
    )
    max_speed_xy_m_s: float = 12.0
    max_speed_up_m_s: float = 3.0
    max_speed_down_m_s: float = 2.0
    max_tilt_rad: float = math.radians(35.0)
    hover_thrust: float = 0.5
    max_thrust: float = 0.95
    min_thrust: float = 0.08


class PositionController:
    """Outer-loop controller producing attitude + thrust setpoints."""

    def __init__(
        self,
        params: PositionControllerParams | None = None,
        mass_kg: float = 1.5,
        max_total_thrust_n: float = 32.0,
        gravity_m_s2: float = 9.80665,
    ):
        self.params = params or PositionControllerParams()
        if max_total_thrust_n <= 0.0:
            raise ValueError(
                f"max_total_thrust_n must be positive, got {max_total_thrust_n}"
            )
        self.mass_kg = mass_kg
        self.max_total_thrust_n = max_total_thrust_n
        self.gravity = gravity_m_s2
        self._vel_pid = Pid(self.params.vel_pid, dim=3)
        # Hot-loop work buffers; the setpoint methods return these
        # without copying, and they stay valid until the next call.
        self._vel_sp = np.zeros(3)
        self._vel_err = np.zeros(3)
        self._thrust_vec = np.zeros(3)
        self._body_z = np.zeros(3)
        self._body_y = np.zeros(3)
        self._body_x = np.zeros(3)
        self._rot_sp = np.zeros((3, 3))
        self._q_sp = np.zeros(4)

    def reset(self) -> None:
        """Clear loop memory (call on mode transitions)."""
        self._vel_pid.reset()

    def velocity_setpoint(
        self,
        position_sp_ned: np.ndarray,
        position_ned: np.ndarray,
        feedforward_ned: np.ndarray | None = None,
        cruise_speed_m_s: float | None = None,
    ) -> np.ndarray:
        """P position loop with per-axis envelope limits."""
        p = self.params
        vel_sp = self._vel_sp
        np.subtract(position_sp_ned, position_ned, out=vel_sp)
        np.multiply(vel_sp, p.pos_p, out=vel_sp)
        if feedforward_ned is not None:
            vel_sp += feedforward_ned
        max_xy = cruise_speed_m_s if cruise_speed_m_s is not None else p.max_speed_xy_m_s
        _clamp_norm_inplace(vel_sp[:2], max_xy)
        vel_sp[2] = clamp(float(vel_sp[2]), -p.max_speed_up_m_s, p.max_speed_down_m_s)
        return vel_sp

    def acceleration_setpoint(
        self, velocity_sp_ned: np.ndarray, velocity_ned: np.ndarray, dt: float
    ) -> np.ndarray:
        """PID velocity loop producing an NED acceleration setpoint."""
        np.subtract(velocity_sp_ned, velocity_ned, out=self._vel_err)
        return self._vel_pid.update(self._vel_err, velocity_ned, dt)

    def thrust_and_attitude(
        self, accel_sp_ned: np.ndarray, yaw_sp_rad: float
    ) -> tuple[float, np.ndarray]:
        """Convert an acceleration setpoint to (collective, q_setpoint).

        The desired specific-thrust vector is ``a_sp - g`` (NED); its
        direction gives the body -z axis, its magnitude the collective.
        Tilt is limited by rotating the thrust direction back toward
        vertical when it exceeds ``max_tilt_rad``.
        """
        p = self.params
        # Desired thrust (sans mass) pointing "up" along -z for hover.
        # (`x - 0.0 == x` bit-for-bit, so only the z component subtracts.)
        thrust_vec = self._thrust_vec
        thrust_vec[0] = accel_sp_ned[0]
        thrust_vec[1] = accel_sp_ned[1]
        thrust_vec[2] = accel_sp_ned[2] - self.gravity

        # A multirotor cannot push downward: even a maximal descent
        # demand keeps some upward thrust (PX4's minimum thrust-z), which
        # also guarantees the attitude setpoint is never inverted.
        min_up = 0.2 * self.gravity
        if thrust_vec[2] > -min_up:
            thrust_vec[2] = -min_up

        # Tilt limiting: angle between thrust_vec and straight up (-z).
        # math.sqrt(float(v @ v)) == np.linalg.norm(v) bit-for-bit (same
        # BLAS dot), minus the linalg wrapper cost.
        norm = math.sqrt(float(thrust_vec @ thrust_vec))
        if norm < 1e-6:
            thrust_vec[0] = 0.0
            thrust_vec[1] = 0.0
            thrust_vec[2] = -self.gravity
            norm = self.gravity
        cos_tilt = -thrust_vec[2] / norm
        tilt = math.acos(clamp(cos_tilt, -1.0, 1.0))
        if tilt > p.max_tilt_rad:
            # Keep the vertical component, shrink the horizontal one.
            vertical = -thrust_vec[2]
            if vertical < 1e-6:
                vertical = self.gravity * 0.5
            max_horizontal = vertical * math.tan(p.max_tilt_rad)
            _clamp_norm_inplace(thrust_vec[:2], max_horizontal)
            norm = math.sqrt(float(thrust_vec @ thrust_vec))

        # Desired body +z (down) in world frame: -thrust_vec / norm.
        body_z = self._body_z
        np.negative(thrust_vec, out=body_z)
        np.divide(body_z, norm, out=body_z)

        # Build the full desired rotation from body_z and the yaw setpoint.
        # body_y = cross(body_z, yaw_vec) with yaw_vec = [cos, sin, 0];
        # the explicit `* 0.0` terms keep signed zeros identical to the
        # allocating np.cross original.
        cy = math.cos(yaw_sp_rad)
        sy = math.sin(yaw_sp_rad)
        body_y = self._body_y
        body_y[0] = body_z[1] * 0.0 - body_z[2] * sy
        body_y[1] = body_z[2] * cy - body_z[0] * 0.0
        body_y[2] = body_z[0] * sy - body_z[1] * cy
        y_norm = math.sqrt(float(body_y @ body_y))
        if y_norm < 1e-6:
            # Thrust nearly horizontal along yaw direction; pick any leg.
            body_y[0] = -sy
            body_y[1] = cy
            body_y[2] = 0.0
            y_norm = 1.0
        np.divide(body_y, y_norm, out=body_y)
        body_x = self._body_x
        body_x[0] = body_y[1] * body_z[2] - body_y[2] * body_z[1]
        body_x[1] = body_y[2] * body_z[0] - body_y[0] * body_z[2]
        body_x[2] = body_y[0] * body_z[1] - body_y[1] * body_z[0]
        rot_sp = self._rot_sp
        rot_sp[:, 0] = body_x
        rot_sp[:, 1] = body_y
        rot_sp[:, 2] = body_z
        q_sp = quat_from_rotation_matrix_into(rot_sp, self._q_sp)

        collective = clamp(
            self.mass_kg * norm / self.max_total_thrust_n, p.min_thrust, p.max_thrust
        )
        return collective, q_sp


def _clamp_norm_inplace(vec: np.ndarray, max_norm: float) -> None:
    """In-place :func:`repro.mathutils.clamp_norm` (same dot, same scale)."""
    if max_norm < 0.0:
        raise ValueError(f"max_norm must be non-negative, got {max_norm}")
    norm_sq = float(vec @ vec)
    if norm_sq > max_norm * max_norm:
        np.multiply(vec, max_norm / math.sqrt(norm_sq), out=vec)
