"""Position and velocity control: from setpoints to a thrust vector.

Implements PX4's ``mc_pos_control`` structure: a P position loop feeding
a PID velocity loop whose output is an acceleration setpoint, converted
to a desired thrust direction + magnitude and a tilt-limited attitude
setpoint.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.control.pid import Pid, PidParams
from repro.mathutils import clamp, clamp_norm, quat_from_rotation_matrix


@dataclass
class PositionControllerParams:
    """Gains and envelope limits for the outer loops."""

    pos_p: float = 0.95
    vel_pid: PidParams = field(
        default_factory=lambda: PidParams(
            kp=2.8, ki=0.6, kd=0.15, output_limit=8.0, integral_limit=2.0
        )
    )
    max_speed_xy_m_s: float = 12.0
    max_speed_up_m_s: float = 3.0
    max_speed_down_m_s: float = 2.0
    max_tilt_rad: float = math.radians(35.0)
    hover_thrust: float = 0.5
    max_thrust: float = 0.95
    min_thrust: float = 0.08


class PositionController:
    """Outer-loop controller producing attitude + thrust setpoints."""

    def __init__(
        self,
        params: PositionControllerParams | None = None,
        mass_kg: float = 1.5,
        max_total_thrust_n: float = 32.0,
        gravity_m_s2: float = 9.80665,
    ):
        self.params = params or PositionControllerParams()
        if max_total_thrust_n <= 0.0:
            raise ValueError(
                f"max_total_thrust_n must be positive, got {max_total_thrust_n}"
            )
        self.mass_kg = mass_kg
        self.max_total_thrust_n = max_total_thrust_n
        self.gravity = gravity_m_s2
        self._vel_pid = Pid(self.params.vel_pid, dim=3)

    def reset(self) -> None:
        """Clear loop memory (call on mode transitions)."""
        self._vel_pid.reset()

    def velocity_setpoint(
        self,
        position_sp_ned: np.ndarray,
        position_ned: np.ndarray,
        feedforward_ned: np.ndarray | None = None,
        cruise_speed_m_s: float | None = None,
    ) -> np.ndarray:
        """P position loop with per-axis envelope limits."""
        p = self.params
        vel_sp = p.pos_p * (position_sp_ned - position_ned)
        if feedforward_ned is not None:
            vel_sp = vel_sp + feedforward_ned
        max_xy = cruise_speed_m_s if cruise_speed_m_s is not None else p.max_speed_xy_m_s
        vel_sp[:2] = clamp_norm(vel_sp[:2], max_xy)
        vel_sp[2] = clamp(float(vel_sp[2]), -p.max_speed_up_m_s, p.max_speed_down_m_s)
        return vel_sp

    def acceleration_setpoint(
        self, velocity_sp_ned: np.ndarray, velocity_ned: np.ndarray, dt: float
    ) -> np.ndarray:
        """PID velocity loop producing an NED acceleration setpoint."""
        return self._vel_pid.update(velocity_sp_ned - velocity_ned, velocity_ned, dt)

    def thrust_and_attitude(
        self, accel_sp_ned: np.ndarray, yaw_sp_rad: float
    ) -> tuple[float, np.ndarray]:
        """Convert an acceleration setpoint to (collective, q_setpoint).

        The desired specific-thrust vector is ``a_sp - g`` (NED); its
        direction gives the body -z axis, its magnitude the collective.
        Tilt is limited by rotating the thrust direction back toward
        vertical when it exceeds ``max_tilt_rad``.
        """
        p = self.params
        # Desired thrust (sans mass) pointing "up" along -z for hover.
        thrust_vec = accel_sp_ned - np.array([0.0, 0.0, self.gravity])

        # A multirotor cannot push downward: even a maximal descent
        # demand keeps some upward thrust (PX4's minimum thrust-z), which
        # also guarantees the attitude setpoint is never inverted.
        min_up = 0.2 * self.gravity
        if thrust_vec[2] > -min_up:
            thrust_vec[2] = -min_up

        # Tilt limiting: angle between thrust_vec and straight up (-z).
        norm = float(np.linalg.norm(thrust_vec))
        if norm < 1e-6:
            thrust_vec = np.array([0.0, 0.0, -self.gravity])
            norm = self.gravity
        cos_tilt = -thrust_vec[2] / norm
        tilt = math.acos(clamp(cos_tilt, -1.0, 1.0))
        if tilt > p.max_tilt_rad:
            # Keep the vertical component, shrink the horizontal one.
            vertical = -thrust_vec[2]
            if vertical < 1e-6:
                vertical = self.gravity * 0.5
            max_horizontal = vertical * math.tan(p.max_tilt_rad)
            thrust_vec[:2] = clamp_norm(thrust_vec[:2], max_horizontal)
            norm = float(np.linalg.norm(thrust_vec))

        body_z = -thrust_vec / norm  # desired body +z (down) in world frame

        # Build the full desired rotation from body_z and the yaw setpoint.
        yaw_vec = np.array([math.cos(yaw_sp_rad), math.sin(yaw_sp_rad), 0.0])
        body_y = np.cross(body_z, yaw_vec)
        y_norm = float(np.linalg.norm(body_y))
        if y_norm < 1e-6:
            # Thrust nearly horizontal along yaw direction; pick any leg.
            body_y = np.array([-math.sin(yaw_sp_rad), math.cos(yaw_sp_rad), 0.0])
            y_norm = 1.0
        body_y = body_y / y_norm
        body_x = np.cross(body_y, body_z)
        rot_sp = np.column_stack([body_x, body_y, body_z])
        q_sp = quat_from_rotation_matrix(rot_sp)

        collective = clamp(
            self.mass_kg * norm / self.max_total_thrust_n, p.min_thrust, p.max_thrust
        )
        return collective, q_sp
