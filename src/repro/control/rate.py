"""Body-rate PID controller — the innermost loop.

Crucially, this loop's measurement input is the **raw gyroscope
signal** (after the fault injector), not the EKF rate estimate. This
matches PX4's ``mc_rate_control`` and is the direct path by which
gyro fault injections destabilise the vehicle in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.control.pid import Pid, PidParams


@dataclass
class RateControllerParams:
    """Per-axis rate-loop gains (roll/pitch share gains; yaw separate)."""

    roll_pitch: PidParams = field(
        default_factory=lambda: PidParams(
            kp=0.16, ki=0.2, kd=0.004, output_limit=1.0, integral_limit=0.3
        )
    )
    yaw: PidParams = field(
        default_factory=lambda: PidParams(
            kp=0.18, ki=0.1, kd=0.0, output_limit=0.4, integral_limit=0.2
        )
    )


class RateController:
    """PID on body rates producing normalised torque commands in [-1, 1]."""

    def __init__(self, params: RateControllerParams | None = None):
        self.params = params or RateControllerParams()
        self._rp_pid = Pid(self.params.roll_pitch, dim=2)
        self._yaw_pid = Pid(self.params.yaw, dim=1)
        # Hot-loop work buffers; `torque_command` returns `_torque`
        # without copying (valid until the next call).
        self._rp_err = np.zeros(2)
        self._yaw_err = np.zeros(1)
        self._torque = np.zeros(3)

    def reset(self) -> None:
        """Clear loop memory (call on arming/mode transitions)."""
        self._rp_pid.reset()
        self._yaw_pid.reset()

    def torque_command(
        self, rate_sp: np.ndarray, gyro_rate: np.ndarray, dt: float
    ) -> np.ndarray:
        """Return normalised [roll, pitch, yaw] torque commands."""
        np.subtract(rate_sp[:2], gyro_rate[:2], out=self._rp_err)
        rp_cmd = self._rp_pid.update(self._rp_err, gyro_rate[:2], dt)
        self._yaw_err[0] = rate_sp[2] - gyro_rate[2]
        yaw_cmd = self._yaw_pid.update(self._yaw_err, gyro_rate[2:3], dt)
        torque = self._torque
        torque[0] = rp_cmd[0]
        torque[1] = rp_cmd[1]
        torque[2] = yaw_cmd[0]
        return torque
