"""Quaternion attitude controller producing body-rate setpoints.

PX4's ``mc_att_control``: a proportional law on the quaternion
attitude error with reduced-attitude priority (tilt corrected at full
gain, yaw at reduced gain) and rate-setpoint limiting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.mathutils import quat_conjugate_into, quat_multiply_into, quat_normalize_into


@dataclass
class AttitudeControllerParams:
    """Attitude P gains and rate envelope."""

    attitude_p: float = 6.0
    yaw_weight: float = 0.4
    max_rate_rad_s: float = math.radians(120.0)
    max_yaw_rate_rad_s: float = math.radians(45.0)


class AttitudeController:
    """Maps (q_estimate, q_setpoint) to a body-rate setpoint."""

    def __init__(self, params: AttitudeControllerParams | None = None):
        self.params = params or AttitudeControllerParams()
        # Hot-loop work buffers; `rate_setpoint` returns `_rate_sp`
        # without copying (valid until the next call).
        self._qc = np.zeros(4)
        self._qe = np.zeros(4)
        self._rate_sp = np.zeros(3)

    def rate_setpoint(
        self,
        q_estimate: np.ndarray,
        q_setpoint: np.ndarray,
        confidence: float = 1.0,
    ) -> np.ndarray:
        """Proportional quaternion error -> body rate setpoint (rad/s).

        ``confidence`` in (0, 1] derates both the gain and the rate
        envelope. The vehicle system feeds the estimator's attitude
        confidence here: when the attitude is only coarsely known (e.g.
        the gyro stream has flatlined and the attitude is being carried
        by GPS-velocity corrections), commanding full-authority
        corrections onto a stale estimate rings the airframe apart —
        flying gently is what keeps a degraded vehicle alive.
        """
        if not 0.0 < confidence <= 1.0:
            raise ValueError(f"confidence must be in (0, 1], got {confidence}")
        p = self.params
        q_err = self._qe
        quat_conjugate_into(q_estimate, self._qc)
        quat_multiply_into(self._qc, q_setpoint, q_err)
        quat_normalize_into(q_err, q_err)
        if q_err[0] < 0.0:
            np.negative(q_err, out=q_err)  # take the short way around

        # Small-angle: rotation vector ~ 2 * vector part.
        rate_sp = self._rate_sp
        np.multiply(q_err[1:4], 2.0 * p.attitude_p * confidence, out=rate_sp)
        rate_sp[2] *= p.yaw_weight

        max_rate = p.max_rate_rad_s * confidence
        max_yaw = p.max_yaw_rate_rad_s * confidence
        rate_sp[0] = _clamp(rate_sp[0], max_rate)
        rate_sp[1] = _clamp(rate_sp[1], max_rate)
        rate_sp[2] = _clamp(rate_sp[2], max_yaw)
        return rate_sp


def _clamp(value: float, limit: float) -> float:
    return min(max(value, -limit), limit)
