"""Control allocation: collective + torques to per-motor commands."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class MixerGains:
    """Authority of each normalised torque axis in command units."""

    roll_pitch: float = 0.30
    yaw: float = 0.25


class Mixer:
    """Quad-X mixer with attitude-priority desaturation.

    The sign table matches :class:`repro.sim.airframe.QuadrotorAirframe`'s
    motor layout (front-right, back-left, front-left, back-right). When a
    command saturates, the collective is shifted to preserve the torque
    commands — the same priority PX4's desaturation applies, and the
    reason violently faulted vehicles lose altitude while fighting for
    attitude.
    """

    #: Per-motor signs for (roll, pitch, yaw) contributions.
    _SIGNS = np.array(
        [
            [-1.0, +1.0, +1.0],  # front-right, CCW
            [+1.0, -1.0, +1.0],  # back-left,  CCW
            [+1.0, +1.0, -1.0],  # front-left, CW
            [-1.0, -1.0, -1.0],  # back-right, CW
        ]
    )

    def __init__(self, gains: MixerGains | None = None):
        self.gains = gains or MixerGains()
        g = self.gains
        # Hot-loop work buffers; `mix` returns `_fractions` without
        # copying (valid until the next call).
        self._weights = np.array([g.roll_pitch, g.roll_pitch, g.yaw])
        self._tq = np.zeros(3)
        self._fractions = np.zeros(4)

    def mix(self, collective: float, torque_cmd: np.ndarray) -> np.ndarray:
        """Return 4 normalised motor commands in [0, 1].

        Args:
            collective: normalised total thrust demand in [0, 1],
                expressed as a *thrust fraction* of maximum total thrust.
            torque_cmd: normalised [roll, pitch, yaw] in [-1, 1].

        Allocation happens in thrust-fraction space; the final commands
        take the square root of each motor's thrust fraction because the
        rotor map is quadratic (thrust = T_max * command^2), so that the
        commanded collective is actually produced.
        """
        tq = self._tq
        np.maximum(torque_cmd, -1.0, out=tq)
        np.minimum(tq, 1.0, out=tq)
        np.multiply(tq, self._weights, out=tq)
        torque_part = self._fractions
        np.matmul(self._SIGNS, tq, out=torque_part)

        # When the torque demand alone spans more than the [0, 1] command
        # range, no collective shift can fit it; scale it down uniformly
        # (preserving ratios and signs) so the final clip never zeroes a
        # motor and flips a small torque's direction.
        span = float(torque_part.max() - torque_part.min())
        if span > 1.0:
            np.divide(torque_part, span, out=torque_part)
        fractions = torque_part
        np.add(fractions, collective, out=fractions)

        # Desaturate by shifting collective; torque differences survive.
        overflow = fractions.max() - 1.0
        if overflow > 0.0:
            fractions -= overflow
        underflow = -fractions.min()
        if underflow > 0.0:
            fractions += min(underflow, max(0.0, 1.0 - fractions.max()))
        np.maximum(fractions, 0.0, out=fractions)
        np.minimum(fractions, 1.0, out=fractions)
        np.sqrt(fractions, out=fractions)
        return fractions
