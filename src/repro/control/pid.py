"""A vector PID controller with anti-windup and derivative filtering."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class PidParams:
    """Gains and limits for a (possibly vector-valued) PID loop.

    ``output_limit`` and ``integral_limit`` bound each component
    symmetrically; ``derivative_filter_hz`` low-passes the derivative
    term so noisy (or fault-injected) measurements do not ring the loop.
    """

    kp: float
    ki: float = 0.0
    kd: float = 0.0
    output_limit: float = float("inf")
    integral_limit: float = float("inf")
    derivative_filter_hz: float = 30.0


class Pid:
    """PID on the error signal, derivative on the measurement.

    Derivative-on-measurement avoids derivative kick on setpoint steps,
    which a mission of discrete waypoints produces constantly.
    """

    def __init__(self, params: PidParams, dim: int = 3):
        self.params = params
        self.dim = dim
        self._integral = np.zeros(dim)
        self._prev_measurement: np.ndarray | None = None
        self._deriv_filtered = np.zeros(dim)

    def reset(self) -> None:
        """Clear integral and derivative memory."""
        self._integral[:] = 0.0
        self._prev_measurement = None
        self._deriv_filtered[:] = 0.0

    def update(self, error: np.ndarray, measurement: np.ndarray, dt: float) -> np.ndarray:
        """Advance the loop and return the actuation command."""
        p = self.params
        error = np.asarray(error, dtype=float)
        if dt <= 0.0:
            raise ValueError(f"dt must be positive, got {dt}")

        if p.ki > 0.0:
            self._integral = np.clip(
                self._integral + error * dt, -p.integral_limit, p.integral_limit
            )

        deriv = np.zeros(self.dim)
        if p.kd > 0.0 and self._prev_measurement is not None:
            raw = -(measurement - self._prev_measurement) / dt
            alpha = min(1.0, 2.0 * np.pi * p.derivative_filter_hz * dt)
            self._deriv_filtered += alpha * (raw - self._deriv_filtered)
            deriv = self._deriv_filtered
        self._prev_measurement = np.array(measurement, dtype=float, copy=True)

        out = p.kp * error + p.ki * self._integral + p.kd * deriv
        return np.clip(out, -p.output_limit, p.output_limit)

    @property
    def integral(self) -> np.ndarray:
        """Current integral state (copy)."""
        return self._integral.copy()
