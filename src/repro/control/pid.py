"""A vector PID controller with anti-windup and derivative filtering."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class PidParams:
    """Gains and limits for a (possibly vector-valued) PID loop.

    ``output_limit`` and ``integral_limit`` bound each component
    symmetrically; ``derivative_filter_hz`` low-passes the derivative
    term so noisy (or fault-injected) measurements do not ring the loop.
    """

    kp: float
    ki: float = 0.0
    kd: float = 0.0
    output_limit: float = float("inf")
    integral_limit: float = float("inf")
    derivative_filter_hz: float = 30.0


class Pid:
    """PID on the error signal, derivative on the measurement.

    Derivative-on-measurement avoids derivative kick on setpoint steps,
    which a mission of discrete waypoints produces constantly.
    """

    def __init__(self, params: PidParams, dim: int = 3):
        self.params = params
        self.dim = dim
        self._integral = np.zeros(dim)
        self._prev_measurement: np.ndarray | None = None
        self._deriv_filtered = np.zeros(dim)
        # Hot-loop work buffers; `update` returns `_out` without copying.
        # `_zero_deriv` stands in for the allocating path's fresh zeros
        # when the derivative term is inactive and is never written.
        self._out = np.zeros(dim)
        self._tmp = np.zeros(dim)
        self._zero_deriv = np.zeros(dim)

    def reset(self) -> None:
        """Clear integral and derivative memory."""
        self._integral[:] = 0.0
        self._prev_measurement = None
        self._deriv_filtered[:] = 0.0

    def update(self, error: np.ndarray, measurement: np.ndarray, dt: float) -> np.ndarray:
        """Advance the loop and return the actuation command."""
        p = self.params
        error = np.asarray(error, dtype=float)
        if dt <= 0.0:
            raise ValueError(f"dt must be positive, got {dt}")

        # Every in-place expression mirrors the allocating original
        # operation-for-operation, so outputs match bit-for-bit.
        tmp = self._tmp
        if p.ki > 0.0:
            np.multiply(error, dt, out=tmp)
            np.add(self._integral, tmp, out=tmp)
            # maximum/minimum chain == np.clip bit-for-bit (incl. NaN);
            # it skips np.clip's python dispatch layers, which dominated
            # the per-step profile at three clips per PID update.
            np.maximum(tmp, -p.integral_limit, out=self._integral)
            np.minimum(self._integral, p.integral_limit, out=self._integral)

        deriv = self._zero_deriv
        if p.kd > 0.0 and self._prev_measurement is not None:
            # raw = -(measurement - prev) / dt
            np.subtract(measurement, self._prev_measurement, out=tmp)
            np.negative(tmp, out=tmp)
            np.divide(tmp, dt, out=tmp)
            alpha = min(1.0, 2.0 * np.pi * p.derivative_filter_hz * dt)
            np.subtract(tmp, self._deriv_filtered, out=tmp)
            tmp *= alpha
            self._deriv_filtered += tmp
            deriv = self._deriv_filtered
        if self._prev_measurement is None:
            self._prev_measurement = np.array(measurement, dtype=float, copy=True)
        else:
            np.copyto(self._prev_measurement, measurement)

        out = self._out
        np.multiply(error, p.kp, out=out)
        np.multiply(self._integral, p.ki, out=tmp)
        out += tmp
        np.multiply(deriv, p.kd, out=tmp)
        out += tmp
        np.maximum(out, -p.output_limit, out=out)
        np.minimum(out, p.output_limit, out=out)
        return out

    @property
    def integral(self) -> np.ndarray:
        """Current integral state (copy)."""
        return self._integral.copy()
