"""GNSS receiver model: noisy position/velocity at a low rate."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class GpsParams:
    """GNSS error model.

    Horizontal/vertical accuracies default to a good multi-band receiver
    in open sky; the paper's missions fly in simulated clear conditions
    (GPS faults were covered by the authors' earlier studies, not here).
    """

    rate_hz: float = 5.0
    horizontal_noise_m: float = 0.4
    vertical_noise_m: float = 0.8
    velocity_noise_m_s: float = 0.1

    def __post_init__(self) -> None:
        if self.rate_hz <= 0.0:
            raise ValueError("rate_hz must be positive")


@dataclass(slots=True)
class GpsSample:
    """One GNSS fix: NED position and velocity with quoted accuracies."""

    time_s: float
    position_ned: np.ndarray
    velocity_ned: np.ndarray
    horizontal_accuracy_m: float
    vertical_accuracy_m: float


class GpsModel:
    """Samples ground truth into GNSS fixes at ``rate_hz``.

    :meth:`maybe_sample` returns ``None`` between fixes so the caller can
    drive it from the fast physics loop without bookkeeping.
    """

    def __init__(self, params: GpsParams | None = None, seed: int = 0):
        self.params = params or GpsParams()
        self._rng = np.random.default_rng(seed)
        self._interval = 1.0 / self.params.rate_hz
        self._next_sample_time = 0.0

    def maybe_sample(
        self, time_s: float, position_ned: np.ndarray, velocity_ned: np.ndarray
    ) -> GpsSample | None:
        """Return a fix if one is due at ``time_s``, else ``None``."""
        if time_s + 1e-9 < self._next_sample_time:
            return None
        self._next_sample_time = time_s + self._interval
        p = self.params
        pos_noise = np.array(
            [
                self._rng.normal(0.0, p.horizontal_noise_m),
                self._rng.normal(0.0, p.horizontal_noise_m),
                self._rng.normal(0.0, p.vertical_noise_m),
            ]
        )
        vel_noise = self._rng.normal(0.0, p.velocity_noise_m_s, size=3)
        return GpsSample(
            time_s=time_s,
            position_ned=position_ned + pos_noise,
            velocity_ned=velocity_ned + vel_noise,
            horizontal_accuracy_m=p.horizontal_noise_m,
            vertical_accuracy_m=p.vertical_noise_m,
        )
