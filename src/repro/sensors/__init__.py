"""Sensor models — the PX4 driver-layer substitute.

Every sensor samples ground truth from :mod:`repro.sim`, applies its own
imperfection model (bias, white noise, saturation, latency), and emits
measurements. The fault injector (:mod:`repro.core.injector`) sits
*between* the IMU and the EKF, corrupting the already-sampled output —
the same injection point the paper uses inside PX4 (corrupting sensor
data output, not physics).
"""

from repro.sensors.imu import (
    Accelerometer,
    Gyroscope,
    Imu,
    ImuParams,
    ImuSample,
    TriadSensorParams,
)
from repro.sensors.gps import GpsModel, GpsParams, GpsSample
from repro.sensors.barometer import Barometer, BarometerParams
from repro.sensors.magnetometer import Magnetometer, MagnetometerParams

__all__ = [
    "Accelerometer",
    "Gyroscope",
    "Imu",
    "ImuParams",
    "ImuSample",
    "TriadSensorParams",
    "GpsModel",
    "GpsParams",
    "GpsSample",
    "Barometer",
    "BarometerParams",
    "Magnetometer",
    "MagnetometerParams",
]
