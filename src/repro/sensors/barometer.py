"""Barometric altimeter model."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class BarometerParams:
    """Baro error model: white noise plus a slow pressure-drift walk."""

    rate_hz: float = 20.0
    noise_m: float = 0.15
    drift_rate_m_sqrt_s: float = 0.005

    def __post_init__(self) -> None:
        if self.rate_hz <= 0.0:
            raise ValueError("rate_hz must be positive")


class Barometer:
    """Measures altitude above the origin (positive up) at ``rate_hz``."""

    def __init__(self, params: BarometerParams | None = None, seed: int = 0):
        self.params = params or BarometerParams()
        self._rng = np.random.default_rng(seed)
        self._interval = 1.0 / self.params.rate_hz
        self._next_sample_time = 0.0
        self._drift = 0.0

    def maybe_sample(self, time_s: float, altitude_m: float) -> float | None:
        """Return a noisy altitude (m) if a sample is due, else ``None``."""
        if time_s + 1e-9 < self._next_sample_time:
            return None
        self._next_sample_time = time_s + self._interval
        self._drift += self._rng.normal(
            0.0, self.params.drift_rate_m_sqrt_s * np.sqrt(self._interval)
        )
        return altitude_m + self._drift + self._rng.normal(0.0, self.params.noise_m)
