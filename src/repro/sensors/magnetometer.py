"""Magnetometer (compass) model.

The paper explicitly excludes the magnetometer from its fault model, but
the EKF still needs a yaw reference to stay observable, so a clean
compass is modelled here and never targeted by the injector.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mathutils import quat_to_euler, wrap_angle


@dataclass
class MagnetometerParams:
    """Compass error model: heading noise and a fixed installation bias."""

    rate_hz: float = 20.0
    heading_noise_rad: float = 0.01
    heading_bias_rad: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_hz <= 0.0:
            raise ValueError("rate_hz must be positive")


class Magnetometer:
    """Produces yaw (heading) measurements from the true attitude."""

    def __init__(self, params: MagnetometerParams | None = None, seed: int = 0):
        self.params = params or MagnetometerParams()
        self._rng = np.random.default_rng(seed)
        self._interval = 1.0 / self.params.rate_hz
        self._next_sample_time = 0.0

    def maybe_sample(self, time_s: float, quaternion: np.ndarray) -> float | None:
        """Return a noisy yaw (rad, wrapped) if a sample is due."""
        if time_s + 1e-9 < self._next_sample_time:
            return None
        self._next_sample_time = time_s + self._interval
        _, _, yaw = quat_to_euler(quaternion)
        noisy = yaw + self.params.heading_bias_rad + self._rng.normal(
            0.0, self.params.heading_noise_rad
        )
        return wrap_angle(noisy)
