"""Inertial measurement unit: accelerometer + gyroscope triads.

The measurement ranges configured here are what give the paper's
``Min`` / ``Max`` / ``Random``-in-range fault behaviours their physical
values: a ``Gyro Max`` injection emits the gyroscope's positive
saturation limit on all three axes, exactly as a saturated or attacked
MEMS part would.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.sim.environment import GRAVITY_M_S2


@dataclass
class TriadSensorParams:
    """Imperfection model shared by both 3-axis inertial sensors.

    Attributes:
        measurement_range: symmetric saturation limit (sensor units); the
            sensor reports values in ``[-range, +range]``.
        noise_density: standard deviation of per-sample white noise.
        bias_sigma: standard deviation of the constant turn-on bias drawn
            once per run.
        bias_instability: random-walk rate of the slowly wandering bias.
    """

    measurement_range: float
    noise_density: float
    bias_sigma: float
    bias_instability: float = 0.0

    def __post_init__(self) -> None:
        if self.measurement_range <= 0.0:
            raise ValueError("measurement_range must be positive")
        if self.noise_density < 0.0 or self.bias_sigma < 0.0:
            raise ValueError("noise parameters must be non-negative")


class _TriadSensor:
    """A 3-axis sensor with turn-on bias, white noise, and saturation."""

    def __init__(self, params: TriadSensorParams, rng: np.random.Generator):
        self.params = params
        self._rng = rng
        self.bias = rng.normal(0.0, params.bias_sigma, size=3)

    def sample(self, true_value: np.ndarray, dt: float) -> np.ndarray:
        """Measure ``true_value``, returning a new corrupted array."""
        p = self.params
        if p.bias_instability > 0.0:
            self.bias = self.bias + self._rng.normal(
                0.0, p.bias_instability * math.sqrt(dt), size=3
            )
        noisy = true_value + self.bias + self._rng.normal(0.0, p.noise_density, size=3)
        return np.clip(noisy, -p.measurement_range, p.measurement_range)


class Accelerometer(_TriadSensor):
    """3-axis accelerometer measuring specific force (m/s^2, body FRD)."""


class Gyroscope(_TriadSensor):
    """3-axis gyroscope measuring angular rate (rad/s, body FRD)."""


@dataclass
class ImuParams:
    """Combined IMU configuration.

    Defaults model a tactical-grade consumer MEMS part: +/-16 g
    accelerometer, +/-2000 deg/s gyroscope — the ranges that bound the
    paper's Min/Max/Random fault values.
    """

    accel: TriadSensorParams = field(
        default_factory=lambda: TriadSensorParams(
            measurement_range=16.0 * GRAVITY_M_S2,
            noise_density=0.05,
            bias_sigma=0.03,
            bias_instability=0.0005,
        )
    )
    gyro: TriadSensorParams = field(
        default_factory=lambda: TriadSensorParams(
            measurement_range=math.radians(2000.0),
            noise_density=0.003,
            bias_sigma=0.002,
            bias_instability=5e-5,
        )
    )


@dataclass(slots=True)
class ImuSample:
    """One IMU output sample.

    ``accel`` is specific force in body axes (m/s^2); ``gyro`` is body
    angular rate (rad/s); ``time_s`` is the sample timestamp.
    """

    time_s: float
    accel: np.ndarray
    gyro: np.ndarray

    def copy(self) -> "ImuSample":
        return ImuSample(self.time_s, self.accel.copy(), self.gyro.copy())


class Imu:
    """Accelerometer + gyroscope assembly sampled at the physics rate."""

    def __init__(self, params: ImuParams | None = None, seed: int = 0):
        self.params = params or ImuParams()
        rng = np.random.default_rng(seed)
        self._rng = rng
        self.accelerometer = Accelerometer(self.params.accel, rng)
        self.gyroscope = Gyroscope(self.params.gyro, rng)
        # One vectorized standard-normal draw per step replaces the four
        # per-triad `rng.normal` calls. The Generator emits the same
        # variate stream either way, and `sigma * z == normal(0, sigma)`
        # bit-for-bit, so samples are unchanged (differential-tested).
        self._accel_walk = self.params.accel.bias_instability > 0.0
        self._gyro_walk = self.params.gyro.bias_instability > 0.0
        n = 6 + (3 if self._accel_walk else 0) + (3 if self._gyro_walk else 0)
        self._z = np.empty(n)
        self._tmp = np.zeros(3)
        # Output buffers, reused every tick: downstream consumers (voter,
        # injector, EKF, controllers) all read-or-copy within the tick.
        self._sample = ImuSample(0.0, np.zeros(3), np.zeros(3))

    def sample(
        self, time_s: float, specific_force_body: np.ndarray, angular_rate_body: np.ndarray, dt: float
    ) -> ImuSample:
        """Sample both triads against ground truth.

        Returns a reused :class:`ImuSample` whose arrays are overwritten
        on the next call; copy it to keep it across ticks.
        """
        z = self._z
        self._rng.standard_normal(out=z)
        tmp = self._tmp
        out = self._sample
        out.time_s = time_s

        i = 0
        p = self.params.accel
        bias = self.accelerometer.bias
        if self._accel_walk:
            np.multiply(z[0:3], p.bias_instability * math.sqrt(dt), out=tmp)
            bias += tmp
            i = 3
        accel = out.accel
        np.add(specific_force_body, bias, out=accel)
        np.multiply(z[i : i + 3], p.noise_density, out=tmp)
        accel += tmp
        np.maximum(accel, -p.measurement_range, out=accel)
        np.minimum(accel, p.measurement_range, out=accel)
        i += 3

        p = self.params.gyro
        bias = self.gyroscope.bias
        if self._gyro_walk:
            np.multiply(z[i : i + 3], p.bias_instability * math.sqrt(dt), out=tmp)
            bias += tmp
            i += 3
        gyro = out.gyro
        np.add(angular_rate_body, bias, out=gyro)
        np.multiply(z[i : i + 3], p.noise_density, out=tmp)
        gyro += tmp
        np.maximum(gyro, -p.measurement_range, out=gyro)
        np.minimum(gyro, p.measurement_range, out=gyro)
        return out

    @property
    def accel_range(self) -> float:
        """Accelerometer saturation limit (m/s^2)."""
        return self.params.accel.measurement_range

    @property
    def gyro_range(self) -> float:
        """Gyroscope saturation limit (rad/s)."""
        return self.params.gyro.measurement_range
