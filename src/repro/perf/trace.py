"""Per-step trace fingerprints for bit-exactness pinning.

A fingerprint is the raw IEEE-754 bytes of everything the paper's
metrics depend on — truth state, EKF nominal state, motor lag state,
and the bubble monitor tallies — folded into a running SHA-256. Two
simulations produce the same final digest if and only if every one of
those quantities matched *to the bit on every step*, which is the
guarantee the hot-loop optimisation pass is held to.

The golden traces in ``tests/data/`` were recorded from the
pre-optimisation loop; ``tests/test_golden_step_trace.py`` replays
them, so any numerical drift — not just campaign-level drift — fails
tier-1.
"""

from __future__ import annotations

import hashlib
from typing import Any

import numpy as np

from repro.core.faults import FaultSpec, FaultTarget, FaultType
from repro.missions import valencia_missions
from repro.system import SystemConfig, UavSystem

#: The two pinned runs: one gold, one with a violent whole-IMU fault
#: window (random-in-range on both triads) that exercises injector,
#: gated EKF updates, failsafe, and the desaturating mixer.
GOLDEN_TRACE_SPECS: dict[str, FaultSpec | None] = {
    "gold": None,
    "imu_random": FaultSpec(
        FaultType.RANDOM, FaultTarget.IMU, start_time_s=4.0, duration_s=3.0
    ),
}

#: Steps per golden trace (12 simulated seconds at 100 Hz: takeoff,
#: the fault window, and the post-fault recovery all land inside it).
GOLDEN_TRACE_STEPS = 1200

#: Checkpoint the running digest every this many steps so a mismatch
#: localises to a 100-step window instead of "somewhere in the run".
GOLDEN_TRACE_CHECKPOINT_EVERY = 100


def build_trace_system(
    fault: FaultSpec | None = None, seed: int = 0, obs: Any = None
) -> UavSystem:
    """A deterministic armed vehicle, identical to the bench vehicle.

    ``obs`` (an :class:`repro.obs.Observer`) instruments the vehicle;
    the fingerprints it produces must be bit-identical either way.
    """
    plan = valencia_missions(scale=0.1)[3]
    system = UavSystem(plan, config=SystemConfig(seed=seed), fault=fault, obs=obs)
    system.commander.arm_and_takeoff(system.physics.time_s)
    return system


def step_fingerprint(system: UavSystem) -> bytes:
    """Raw bytes of every metric-bearing quantity after one step."""
    truth = system.physics.state
    ekf = system.ekf
    counts = system.bubble_monitor.counts
    if system.bubble_monitor.history:
        last = system.bubble_monitor.history[-1]
        bubble = (last.deviation_m, last.inner_radius_m, last.outer_radius_m)
    else:
        bubble = (0.0, 0.0, 0.0)
    tail = np.array(
        [
            float(counts.inner),
            float(counts.outer),
            float(counts.tracking_instances),
            counts.max_deviation_m,
            bubble[0],
            bubble[1],
            bubble[2],
        ]
    )
    return b"".join(
        (
            truth.position_ned.tobytes(),
            truth.velocity_ned.tobytes(),
            truth.quaternion.tobytes(),
            truth.angular_rate_body.tobytes(),
            ekf.quaternion.tobytes(),
            ekf.velocity_ned.tobytes(),
            ekf.position_ned.tobytes(),
            ekf.gyro_bias.tobytes(),
            ekf.accel_bias.tobytes(),
            system.physics.airframe.motors.effective_commands.tobytes(),
            tail.tobytes(),
        )
    )


def run_traced(
    system: UavSystem,
    n_steps: int = GOLDEN_TRACE_STEPS,
    every: int = GOLDEN_TRACE_CHECKPOINT_EVERY,
) -> dict[str, Any]:
    """Step ``system`` and fold each step's fingerprint into SHA-256."""
    if n_steps < 1 or every < 1:
        raise ValueError("n_steps and every must be positive")
    hasher = hashlib.sha256()
    checkpoints: list[dict[str, Any]] = []
    for i in range(n_steps):
        system.step()
        hasher.update(step_fingerprint(system))
        if (i + 1) % every == 0:
            checkpoints.append({"step": i + 1, "digest": hasher.hexdigest()})
    return {
        "n_steps": n_steps,
        "every": every,
        "checkpoints": checkpoints,
        "final_digest": hasher.hexdigest(),
    }


def golden_traces() -> dict[str, dict[str, Any]]:
    """Recompute the golden per-step traces for both pinned runs."""
    return {
        name: run_traced(build_trace_system(fault))
        for name, fault in GOLDEN_TRACE_SPECS.items()
    }
