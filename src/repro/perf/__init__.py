"""Performance tooling: profiling entry point, bench emitter, and the
bit-exactness harness (per-step trace fingerprints + the naive
reference twin) that makes hot-loop optimisation safe.

Everything here is harness-side tooling: it may use wall-clock time,
but it never participates in simulation results — the differential
tests in ``tests/test_differential_step.py`` and the golden traces in
``tests/data/`` prove the optimised loop is bit-identical to the
reference implementation.
"""

from repro.perf.reference import reference_twin
from repro.perf.trace import (
    GOLDEN_TRACE_SPECS,
    build_trace_system,
    run_traced,
    step_fingerprint,
)

__all__ = [
    "GOLDEN_TRACE_SPECS",
    "build_trace_system",
    "reference_twin",
    "run_traced",
    "step_fingerprint",
]
