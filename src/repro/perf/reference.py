"""The naive reference implementation of the hot loop, kept verbatim.

Every method here is the pre-optimisation body of the corresponding
production method, copied unchanged when the hot-loop performance pass
landed. The production loop replaced per-step allocations with
preallocated work buffers and in-place ufuncs; these classes are the
oracle proving that rewrite changed **no output bit**:

* ``tests/test_differential_step.py`` steps a production vehicle and
  its :func:`reference_twin` in lockstep across every fault type and
  target, asserting per-step state/EKF/actuator equality to the last
  ULP;
* ``python -m repro.perf`` times both to report the speedup.

Do not "clean up" or optimise anything in this module — its value is
exactly that it stays naive.
"""

from __future__ import annotations

import copy
import math

import numpy as np

from repro.control.attitude import AttitudeController
from repro.control.attitude import _clamp as _att_clamp
from repro.control.mixer import Mixer
from repro.control.pid import Pid
from repro.control.position import PositionController
from repro.control.rate import RateController
from repro.estimation.ekf import _BA, _BG, _P, _TH, _V, Ekf
from repro.estimation.health import EstimatorHealth
from repro.flightstack import FailsafeState, FlightPhase, IsolationOutcome
from repro.flightstack.commander import Commander, CommanderOutput
from repro.flightstack.navigator import Navigator, NavigatorOutput
from repro.mathutils import (
    clamp,
    clamp_norm,
    quat_conjugate,
    quat_from_rotation_matrix,
    quat_integrate,
    quat_multiply,
    quat_normalize,
    quat_rotate,
    quat_rotate_inverse,
    quat_to_rotation_matrix,
    skew,
)
from repro.sensors.imu import Imu, ImuSample
from repro.sim.dynamics import _MAX_RATE_RAD_S, _MAX_SPEED_M_S, QuadrotorPhysics, _clamp_vec
from repro.sim.airframe import QuadrotorAirframe
from repro.sim.environment import WindModel
from repro.sim.motors import MotorBank
from repro.system import UavSystem
from repro.telemetry import TrackMessage


class ReferenceWindModel(WindModel):
    """Allocating OU gust update (pre-optimisation body)."""

    def step(self, dt: float) -> np.ndarray:
        if self.gust_sigma_m_s > 0.0:
            decay = dt / self.gust_tau_s
            noise = self._rng.standard_normal(3)
            self._gust += -self._gust * decay + self.gust_sigma_m_s * np.sqrt(2.0 * decay) * noise
        return self.mean_wind_ned + self._gust


class ReferenceMotorBank(MotorBank):
    """Allocating motor-lag step (pre-optimisation body)."""

    def step(self, commands: np.ndarray, dt: float) -> np.ndarray:
        commands = np.clip(np.asarray(commands, dtype=float), 0.0, 1.0)
        if commands.shape != (self.count,):
            raise ValueError(f"expected {self.count} motor commands, got {commands.shape}")
        alpha = clamp(dt / self.model.time_constant_s, 0.0, 1.0)
        self._effective += alpha * (commands - self._effective)
        return self.model.max_thrust_n * self._effective**2


class ReferenceQuadrotorAirframe(QuadrotorAirframe):
    """Allocating force/torque map (pre-optimisation body)."""

    def forces_and_torques(self, thrusts_n, quaternion, velocity_ned, angular_rate_body, env):
        p = self.params
        total_thrust = float(np.sum(thrusts_n))

        thrust_world = quat_rotate(quaternion, np.array([0.0, 0.0, -total_thrust]))

        v_rel = velocity_ned - env.wind.current_wind_ned
        speed = float(np.sqrt(v_rel @ v_rel))
        drag = -(0.5 * env.air_density_kg_m3 * p.drag_area_m2 * speed + p.linear_drag_coeff) * v_rel

        force_world = thrust_world + drag + p.mass_kg * env.gravity_ned

        tau_x = float(-np.dot(self._positions[:, 1], thrusts_n))
        tau_y = float(np.dot(self._positions[:, 0], thrusts_n))
        tau_z = float(np.dot(self._spins, thrusts_n)) * p.motor.torque_ratio_m

        w = angular_rate_body
        damping = -p.angular_damping * w * np.abs(w) - p.angular_damping_linear * w
        torque_body = np.array([tau_x, tau_y, tau_z]) + damping
        return force_world, torque_body


class ReferenceQuadrotorPhysics(QuadrotorPhysics):
    """Allocating 6-DOF integration step (pre-optimisation body)."""

    def step(self, motor_commands: np.ndarray, dt: float):
        if dt <= 0.0:
            raise ValueError("dt must be positive")
        env = self.environment
        env.wind.step(dt)

        thrusts = self.airframe.motors.step(motor_commands, dt)
        force_world, torque_body = self.airframe.forces_and_torques(
            thrusts,
            self.state.quaternion,
            self.state.velocity_ned,
            self.state.angular_rate_body,
            env,
        )

        mass = self.airframe.params.mass_kg

        if self.on_ground and force_world[2] > 0.0:
            force_world = force_world.copy()
            force_world[2] = 0.0

        accel_world = force_world / mass

        non_grav_world = accel_world - env.gravity_ned
        self.specific_force_body = quat_rotate_inverse(self.state.quaternion, non_grav_world)

        w = self.state.angular_rate_body
        inertia = self.airframe.inertia
        w_dot = self.airframe.inertia_inv @ (torque_body - np.cross(w, inertia @ w))

        self.state.velocity_ned = _clamp_vec(
            self.state.velocity_ned + accel_world * dt, _MAX_SPEED_M_S
        )
        self.state.angular_rate_body = _clamp_vec(w + w_dot * dt, _MAX_RATE_RAD_S)
        self.state.position_ned = self.state.position_ned + self.state.velocity_ned * dt
        self.state.quaternion = quat_integrate(
            self.state.quaternion, self.state.angular_rate_body, dt
        )

        self._handle_ground(dt)
        self.time_s += dt
        return self.state


class ReferenceImu(Imu):
    """Four separate RNG draws per sample (pre-optimisation body)."""

    def sample(self, time_s, specific_force_body, angular_rate_body, dt):
        return ImuSample(
            time_s=time_s,
            accel=self._triad_sample(self.accelerometer, specific_force_body, dt),
            gyro=self._triad_sample(self.gyroscope, angular_rate_body, dt),
        )

    @staticmethod
    def _triad_sample(sensor, true_value, dt):
        # Verbatim _TriadSensor.sample body, hoisted here so the batched
        # production path on the sensor object cannot shadow it.
        p = sensor.params
        if p.bias_instability > 0.0:
            sensor.bias = sensor.bias + sensor._rng.normal(
                0.0, p.bias_instability * math.sqrt(dt), size=3
            )
        noisy = true_value + sensor.bias + sensor._rng.normal(0.0, p.noise_density, size=3)
        return np.clip(noisy, -p.measurement_range, p.measurement_range)


class ReferenceEkf(Ekf):
    """Allocating EKF predict/update path (pre-optimisation bodies)."""

    def predict(self, imu: ImuSample, dt: float) -> None:
        if dt <= 0.0:
            raise ValueError("dt must be positive")
        p = self.params
        omega = imu.gyro - self.gyro_bias
        accel = imu.accel - self.accel_bias
        self.rate_body = omega

        if self._last_raw_gyro is not None and np.array_equal(imu.gyro, self._last_raw_gyro):
            self._gyro_flatline_count += 1
        else:
            self._gyro_flatline_count = 0
        self._last_raw_gyro = imu.gyro.copy()
        gyro_noise = p.gyro_noise if self._gyro_flatline_count < 20 else 0.8

        if self._last_raw_accel is not None and np.array_equal(imu.accel, self._last_raw_accel):
            self._accel_flatline_count += 1
        else:
            self._accel_flatline_count = 0
        self._last_raw_accel = imu.accel.copy()
        if self._gyro_flatline_count >= 50 and self._accel_flatline_count >= 50:
            self.imu_stale_latched = True

        rot = quat_to_rotation_matrix(self.quaternion)
        accel_world = rot @ accel + self._gravity_ned

        self.position_ned = self.position_ned + self.velocity_ned * dt + 0.5 * accel_world * dt * dt
        self.velocity_ned = self.velocity_ned + accel_world * dt
        self.quaternion = quat_integrate(self.quaternion, omega, dt)

        phi = np.eye(15)
        phi[_TH, _TH] -= skew(omega) * dt
        phi[_TH, _BG] = -np.eye(3) * dt
        phi[_V, _TH] = -rot @ skew(accel) * dt
        phi[_V, _BA] = -rot * dt
        phi[_P, _V] = np.eye(3) * dt

        self.covariance = phi @ self.covariance @ phi.T
        diag = self.covariance.ravel()[::16]
        diag[_TH] += (gyro_noise**2) * dt
        diag[_V] += (p.accel_noise**2) * dt
        diag[_BG] += (p.gyro_bias_walk**2) * dt
        diag[_BA] += (p.accel_bias_walk**2) * dt
        self.time_s = imu.time_s

    def update_gps(self, fix) -> None:
        if self.params.enable_fusion_reset:
            if self.monitor.group_max_consecutive("gps_vel") >= self.RESET_REJECTION_COUNT:
                self._reset_block(_V, fix.velocity_ned, 1.0, "gps_vel")
            if self.monitor.group_max_consecutive("gps_pos") >= self.RESET_REJECTION_COUNT:
                self._reset_block(_P, fix.position_ned, 4.0, "gps_pos")

        p = self.params
        pos_var = np.array(
            [
                fix.horizontal_accuracy_m**2,
                fix.horizontal_accuracy_m**2,
                fix.vertical_accuracy_m**2,
            ]
        )
        innov_p = fix.position_ned - self.position_ned
        self._vector_update(innov_p, _P, pos_var, p.gps_pos_gate, "gps_pos")

        vel_var = np.full(3, 0.15**2)
        innov_v = fix.velocity_ned - self.velocity_ned
        self._vector_update(innov_v, _V, vel_var, p.gps_vel_gate, "gps_vel")

    def update_gravity_tilt(self, accel_body, gyro_body, dt: float = 0.05) -> None:
        from repro.mathutils import quat_from_axis_angle

        g = self._gravity_ned[2]
        norm = float(np.linalg.norm(accel_body))
        quasi_static = abs(norm - g) <= 0.12 * g and float(np.linalg.norm(gyro_body)) <= 0.25
        if not quasi_static:
            return
        rot = quat_to_rotation_matrix(self.quaternion)
        expected = rot.T @ np.array([0.0, 0.0, -1.0])
        measured = accel_body / norm
        err = np.cross(measured, expected)
        err[2] = 0.0
        err_norm = float(np.linalg.norm(err))
        self.monitor.record("grav", self.time_s, err_norm, True)
        if err_norm < 1e-9:
            return
        angle = self.GRAVITY_AIDING_GAIN * dt * err_norm
        dq = quat_from_axis_angle(err, min(angle, 0.3))
        self.quaternion = quat_normalize(quat_multiply(self.quaternion, dq))

    def update_baro(self, altitude_m: float) -> None:
        innov = altitude_m - (-self.position_ned[2])
        h = np.zeros(15)
        h[8] = -1.0
        self._scalar_update(innov, h, self.params.baro_noise_m**2, self.params.baro_gate, "baro")

    def update_mag_yaw(self, yaw_meas_rad: float) -> None:
        from repro.mathutils import quat_to_euler, wrap_angle

        yaw_est = quat_to_euler(self.quaternion)[2]
        innov = wrap_angle(yaw_meas_rad - yaw_est)
        rot = quat_to_rotation_matrix(self.quaternion)
        h = np.zeros(15)
        h[_TH] = rot[2, :]
        self._scalar_update(innov, h, self.params.mag_noise_rad**2, self.params.mag_gate, "mag")

    def _vector_update(self, innovation, block, meas_var, gate, name) -> None:
        start = block.start
        for axis in range(3):
            h = np.zeros(15)
            h[start + axis] = 1.0
            self._scalar_update(
                float(innovation[axis]), h, float(meas_var[axis]), gate, f"{name}_{axis}"
            )

    def _scalar_update(self, innovation, h, meas_var, gate, name) -> None:
        ph = self.covariance @ h
        s = max(float(h @ ph) + meas_var, 1e-12)
        test_ratio = (innovation * innovation) / (gate * gate * s)
        accepted = test_ratio <= 1.0
        self.monitor.record(name, self.time_s, test_ratio, accepted)
        if not accepted:
            return
        k = ph / s
        self._inject_error(k * innovation)
        self.covariance = self.covariance - np.outer(k, ph)
        self.covariance = 0.5 * (self.covariance + self.covariance.T)

    def _inject_error(self, dx: np.ndarray) -> None:
        from repro.mathutils import quat_from_axis_angle

        p = self.params
        dq = quat_from_axis_angle(dx[_TH], float(np.linalg.norm(dx[_TH])))
        self.quaternion = quat_normalize(quat_multiply(self.quaternion, dq))
        self.velocity_ned = self.velocity_ned + dx[_V]
        self.position_ned = self.position_ned + dx[_P]
        self.gyro_bias = np.clip(
            self.gyro_bias + dx[_BG], -p.gyro_bias_limit, p.gyro_bias_limit
        )
        self.accel_bias = np.clip(
            self.accel_bias + dx[_BA], -p.accel_bias_limit, p.accel_bias_limit
        )


class ReferencePid(Pid):
    """Allocating PID update (pre-optimisation body)."""

    def update(self, error: np.ndarray, measurement: np.ndarray, dt: float) -> np.ndarray:
        p = self.params
        error = np.asarray(error, dtype=float)
        if dt <= 0.0:
            raise ValueError(f"dt must be positive, got {dt}")

        if p.ki > 0.0:
            self._integral = np.clip(
                self._integral + error * dt, -p.integral_limit, p.integral_limit
            )

        deriv = np.zeros(self.dim)
        if p.kd > 0.0 and self._prev_measurement is not None:
            raw = -(measurement - self._prev_measurement) / dt
            alpha = min(1.0, 2.0 * np.pi * p.derivative_filter_hz * dt)
            self._deriv_filtered += alpha * (raw - self._deriv_filtered)
            deriv = self._deriv_filtered
        self._prev_measurement = np.array(measurement, dtype=float, copy=True)

        out = p.kp * error + p.ki * self._integral + p.kd * deriv
        return np.clip(out, -p.output_limit, p.output_limit)


class ReferencePositionController(PositionController):
    """Allocating outer-loop controller (pre-optimisation bodies)."""

    def velocity_setpoint(
        self, position_sp_ned, position_ned, feedforward_ned=None, cruise_speed_m_s=None
    ) -> np.ndarray:
        p = self.params
        vel_sp = p.pos_p * (position_sp_ned - position_ned)
        if feedforward_ned is not None:
            vel_sp = vel_sp + feedforward_ned
        max_xy = cruise_speed_m_s if cruise_speed_m_s is not None else p.max_speed_xy_m_s
        vel_sp[:2] = clamp_norm(vel_sp[:2], max_xy)
        vel_sp[2] = clamp(float(vel_sp[2]), -p.max_speed_up_m_s, p.max_speed_down_m_s)
        return vel_sp

    def acceleration_setpoint(self, velocity_sp_ned, velocity_ned, dt) -> np.ndarray:
        return self._vel_pid.update(velocity_sp_ned - velocity_ned, velocity_ned, dt)

    def thrust_and_attitude(self, accel_sp_ned, yaw_sp_rad) -> tuple[float, np.ndarray]:
        p = self.params
        thrust_vec = accel_sp_ned - np.array([0.0, 0.0, self.gravity])

        min_up = 0.2 * self.gravity
        if thrust_vec[2] > -min_up:
            thrust_vec[2] = -min_up

        norm = float(np.linalg.norm(thrust_vec))
        if norm < 1e-6:
            thrust_vec = np.array([0.0, 0.0, -self.gravity])
            norm = self.gravity
        cos_tilt = -thrust_vec[2] / norm
        tilt = math.acos(clamp(cos_tilt, -1.0, 1.0))
        if tilt > p.max_tilt_rad:
            vertical = -thrust_vec[2]
            if vertical < 1e-6:
                vertical = self.gravity * 0.5
            max_horizontal = vertical * math.tan(p.max_tilt_rad)
            thrust_vec[:2] = clamp_norm(thrust_vec[:2], max_horizontal)
            norm = float(np.linalg.norm(thrust_vec))

        body_z = -thrust_vec / norm

        yaw_vec = np.array([math.cos(yaw_sp_rad), math.sin(yaw_sp_rad), 0.0])
        body_y = np.cross(body_z, yaw_vec)
        y_norm = float(np.linalg.norm(body_y))
        if y_norm < 1e-6:
            body_y = np.array([-math.sin(yaw_sp_rad), math.cos(yaw_sp_rad), 0.0])
            y_norm = 1.0
        body_y = body_y / y_norm
        body_x = np.cross(body_y, body_z)
        rot_sp = np.column_stack([body_x, body_y, body_z])
        q_sp = quat_from_rotation_matrix(rot_sp)

        collective = clamp(
            self.mass_kg * norm / self.max_total_thrust_n, p.min_thrust, p.max_thrust
        )
        return collective, q_sp


class ReferenceAttitudeController(AttitudeController):
    """Allocating attitude P loop (pre-optimisation body)."""

    def rate_setpoint(self, q_estimate, q_setpoint, confidence=1.0) -> np.ndarray:
        if not 0.0 < confidence <= 1.0:
            raise ValueError(f"confidence must be in (0, 1], got {confidence}")
        p = self.params
        q_err = quat_normalize(quat_multiply(quat_conjugate(q_estimate), q_setpoint))
        if q_err[0] < 0.0:
            q_err = -q_err

        rate_sp = 2.0 * p.attitude_p * confidence * q_err[1:4]
        rate_sp[2] *= p.yaw_weight

        max_rate = p.max_rate_rad_s * confidence
        max_yaw = p.max_yaw_rate_rad_s * confidence
        rate_sp[0] = _att_clamp(rate_sp[0], max_rate)
        rate_sp[1] = _att_clamp(rate_sp[1], max_rate)
        rate_sp[2] = _att_clamp(rate_sp[2], max_yaw)
        return rate_sp


class ReferenceRateController(RateController):
    """Allocating rate loop (pre-optimisation body)."""

    def torque_command(self, rate_sp, gyro_rate, dt) -> np.ndarray:
        rp_err = rate_sp[:2] - gyro_rate[:2]
        rp_cmd = self._rp_pid.update(rp_err, gyro_rate[:2], dt)
        yaw_err = np.array([rate_sp[2] - gyro_rate[2]])
        yaw_cmd = self._yaw_pid.update(yaw_err, gyro_rate[2:3], dt)
        return np.array([rp_cmd[0], rp_cmd[1], yaw_cmd[0]])


class ReferenceMixer(Mixer):
    """Allocating mixer (pre-optimisation body)."""

    def mix(self, collective: float, torque_cmd: np.ndarray) -> np.ndarray:
        g = self.gains
        weights = np.array([g.roll_pitch, g.roll_pitch, g.yaw])
        torque_part = self._SIGNS @ (np.clip(torque_cmd, -1.0, 1.0) * weights)

        span = float(torque_part.max() - torque_part.min())
        if span > 1.0:
            torque_part = torque_part / span
        fractions = collective + torque_part

        overflow = fractions.max() - 1.0
        if overflow > 0.0:
            fractions -= overflow
        underflow = -fractions.min()
        if underflow > 0.0:
            fractions += min(underflow, max(0.0, 1.0 - fractions.max()))
        return np.sqrt(np.clip(fractions, 0.0, 1.0))


class ReferenceNavigator(Navigator):
    """Per-tick waypoint-array allocation and O(n) distance scans."""

    def update(self, position_ned: np.ndarray) -> NavigatorOutput:
        waypoints = self.plan.waypoints
        speed = self.plan.drone.cruise_speed_m_s

        if self._done:
            target = waypoints[-1].array
            return NavigatorOutput(target, np.zeros(3), self._yaw_sp, speed)

        target_wp = waypoints[self._index]
        target = target_wp.array
        if self._index > 0:
            prev = waypoints[self._index - 1].array
        else:
            prev = position_ned.copy()

        leg = target - prev
        leg_len = float(np.linalg.norm(leg))
        to_target = target - position_ned
        dist_to_target = float(np.linalg.norm(to_target))

        overshot = leg_len > 1e-6 and float((position_ned - target) @ leg) > 0.0
        if dist_to_target <= target_wp.acceptance_radius_m or overshot:
            if self._index + 1 < len(waypoints):
                self._index += 1
                target_wp = waypoints[self._index]
                prev = waypoints[self._index - 1].array
                target = target_wp.array
                leg = target - prev
                leg_len = float(np.linalg.norm(leg))
            else:
                self._done = True
                return NavigatorOutput(target, np.zeros(3), self._yaw_sp, speed)

        if leg_len < 1e-6:
            carrot = target
            direction = np.zeros(3)
        else:
            direction = leg / leg_len
            along = float((position_ned - prev) @ direction)
            lookahead = max(2.0, speed * self.lookahead_s)
            carrot_dist = min(leg_len, along + lookahead)
            carrot = prev + direction * max(0.0, carrot_dist)

        horizontal_sq = direction[0] ** 2 + direction[1] ** 2
        if leg_len > 1e-6 and horizontal_sq > 0.25:
            self._yaw_sp = math.atan2(direction[1], direction[0])

        remaining = float(np.linalg.norm(target - position_ned)) + self._distance_after(
            self._index
        )
        speed = min(speed, max(1.0, 0.6 * remaining))
        velocity_ff = direction * speed
        return NavigatorOutput(carrot, velocity_ff, self._yaw_sp, speed)

    def _distance_after(self, index: int) -> float:
        total = 0.0
        pts = self.plan.waypoints
        for a, b in zip(pts[index:], pts[index + 1 :]):
            total += float(np.linalg.norm(b.array - a.array))
        return total


class ReferenceCommander(Commander):
    """Per-tick dispatch-dict and setpoint allocation (pre-optimisation)."""

    def update(self, time_s, position_est_ned, on_ground, failsafe_engaged, crashed):
        from repro.flightstack.commander import MissionOutcome

        if crashed and self.phase not in (FlightPhase.CRASHED, FlightPhase.LANDED):
            already_failsafe = self.phase == FlightPhase.FAILSAFE_LAND
            self.phase = FlightPhase.CRASHED
            self.outcome = (
                MissionOutcome.FAILSAFE if already_failsafe else MissionOutcome.CRASHED
            )
            self.end_time_s = time_s

        if self.terminal:
            return self._idle_output(position_est_ned)

        if failsafe_engaged and self.phase in (
            FlightPhase.TAKEOFF,
            FlightPhase.MISSION,
            FlightPhase.LANDING,
        ):
            self.phase = FlightPhase.FAILSAFE_LAND
            self._failsafe_hold_xy = position_est_ned[:2].copy()

        if time_s - (self.takeoff_time_s or 0.0) > self._timeout_s:
            self.outcome = MissionOutcome.TIMEOUT
            self.end_time_s = time_s
            return self._idle_output(position_est_ned)

        handler = {
            FlightPhase.PREFLIGHT: self._run_preflight,
            FlightPhase.TAKEOFF: self._run_takeoff,
            FlightPhase.MISSION: self._run_mission,
            FlightPhase.LANDING: self._run_landing,
            FlightPhase.FAILSAFE_LAND: self._run_failsafe_land,
            FlightPhase.LANDED: self._run_terminal,
            FlightPhase.CRASHED: self._run_terminal,
        }[self.phase]
        return handler(time_s, position_est_ned, on_ground)

    def _run_takeoff(self, time_s, position, on_ground):
        home = self.plan.home_ned
        target = np.array([home[0], home[1], -self.plan.cruise_altitude_m])
        if abs(position[2] - target[2]) < self.params.takeoff_accept_m:
            self.phase = FlightPhase.MISSION
            return self._run_mission(time_s, position, on_ground)
        ff = np.array([0.0, 0.0, -self.params.takeoff_speed_m_s])
        return CommanderOutput(target, ff, self._yaw_hold, 2.0)

    def _run_landing(self, time_s, position, on_ground):
        from repro.flightstack.commander import MissionOutcome

        land = self.plan.landing_ned
        target = np.array([land[0], land[1], 0.5])
        ff = np.array([0.0, 0.0, self.params.landing_speed_m_s])
        if self._ground_dwell(time_s, on_ground):
            self.phase = FlightPhase.LANDED
            self.outcome = MissionOutcome.COMPLETED
            self.end_time_s = time_s
            return self._idle_output(position)
        return CommanderOutput(target, ff, self._yaw_hold, 1.5)

    def _run_failsafe_land(self, time_s, position, on_ground):
        from repro.flightstack.commander import MissionOutcome

        assert self._failsafe_hold_xy is not None
        target = np.array([self._failsafe_hold_xy[0], self._failsafe_hold_xy[1], 0.5])
        ff = np.array([0.0, 0.0, self.params.fs_descent_speed_m_s])
        if self._ground_dwell(time_s, on_ground):
            self.phase = FlightPhase.LANDED
            self.outcome = MissionOutcome.FAILSAFE
            self.end_time_s = time_s
            return self._idle_output(position)
        return CommanderOutput(target, ff, self._yaw_hold, 2.0)

    def _idle_output(self, position: np.ndarray) -> CommanderOutput:
        return CommanderOutput(
            position_sp_ned=position.copy(),
            velocity_ff_ned=np.zeros(3),
            yaw_sp_rad=self._yaw_hold,
            cruise_speed_m_s=0.0,
            thrust_idle=True,
        )


class ReferenceUavSystem(UavSystem):
    """The original per-tick orchestration (pre-optimisation body)."""

    def step(self) -> None:
        cfg = self.config
        dt = cfg.physics_dt_s
        t = self.physics.time_s
        truth = self.physics.state

        samples = self.imu_bank.sample(
            t, self.physics.specific_force_body, truth.angular_rate_body, dt
        )
        selection = self.redundancy.select(
            t, samples, dt, isolating=self.failsafe.state == FailsafeState.ISOLATING
        )
        imu_sample = selection.sample
        if selection.switched:
            self.ekf.reseed_after_imu_switch()
            self.failsafe.report_isolation(t, IsolationOutcome.SWITCHED)
        elif selection.exhausted:
            self.failsafe.report_isolation(t, IsolationOutcome.EXHAUSTED)
        self._last_gyro = imu_sample.gyro

        self.ekf.predict(imu_sample, dt)
        fix = self.gps.maybe_sample(t, truth.position_ned, truth.velocity_ned)
        if fix is not None:
            self.ekf.update_gps(fix)
        alt = self.baro.maybe_sample(t, truth.altitude_m)
        if alt is not None:
            self.ekf.update_baro(alt)
        yaw = self.mag.maybe_sample(t, truth.quaternion)
        if yaw is not None:
            self.ekf.update_mag_yaw(yaw)
            self.ekf.update_gravity_tilt(imu_sample.accel, imu_sample.gyro)
        elif self.redundancy.degraded:
            self.ekf.update_gravity_tilt(imu_sample.accel, imu_sample.gyro, dt)

        est = self.ekf.state
        est_tilt = self._estimated_tilt()

        health = EstimatorHealth.from_monitor(
            self.ekf.monitor,
            attitude_std_rad=self.ekf.attitude_std_rad,
            imu_stale=self.ekf.imu_stale_latched,
        )
        airborne = not self.physics.on_ground and truth.altitude_m > 2.0
        self.failsafe.update(
            t,
            imu_sample.gyro,
            est_tilt,
            health,
            in_flight=self.commander.in_flight and airborne,
        )
        landing_expected = self.commander.phase in (
            FlightPhase.LANDING,
            FlightPhase.FAILSAFE_LAND,
        )
        self.crash_detector.assess_contact(self.physics.last_contact, landing_expected)
        out = self.commander.update(
            t,
            est.position_ned,
            on_ground=self.physics.on_ground,
            failsafe_engaged=self.failsafe.engaged,
            crashed=self.crash_detector.crashed,
        )

        if out.thrust_idle:
            motors = np.zeros(4)
        else:
            vel_sp = self.position_controller.velocity_setpoint(
                out.position_sp_ned,
                est.position_ned,
                feedforward_ned=out.velocity_ff_ned,
                cruise_speed_m_s=out.cruise_speed_m_s or None,
            )
            accel_sp = self.position_controller.acceleration_setpoint(
                vel_sp, est.velocity_ned, dt
            )
            collective, q_sp = self.position_controller.thrust_and_attitude(
                accel_sp, out.yaw_sp_rad
            )
            confidence = (
                self.ekf.attitude_confidence if cfg.confidence_scheduling else 1.0
            )
            rate_sp = self.attitude_controller.rate_setpoint(
                est.quaternion, q_sp, confidence=confidence
            )
            torque = self.rate_controller.torque_command(rate_sp, imu_sample.gyro, dt)
            motors = self.mixer.mix(collective, torque)

        self.physics.step(motors, dt)

        airspeed = float(np.linalg.norm(est.velocity_ned))
        point = self.bubble_monitor.maybe_track(t, est.position_ned, airspeed)
        if point is not None and self.broker is not None:
            self.broker.publish(
                f"track/{self.plan.mission_id}",
                TrackMessage(
                    drone_id=self.plan.mission_id,
                    time_s=t,
                    position_ned=tuple(est.position_ned),
                    velocity_ned=tuple(est.velocity_ned),
                    airspeed_m_s=airspeed,
                ),
            )
        self.recorder.maybe_record(
            t,
            truth.position_ned,
            est.position_ned,
            truth.velocity_ned,
            est.velocity_ned,
            truth.tilt_rad,
            self.commander.phase.value,
            self.injector.is_active(t),
        )


def reference_twin(system: UavSystem) -> UavSystem:
    """A deep-copied twin of ``system`` that runs the naive reference loop.

    ``copy.deepcopy`` duplicates every piece of mutable state — including
    the numpy ``Generator`` objects, whose bit-stream position is part of
    the copied state — so the twin continues from *exactly* the same
    stochastic future as the original. Re-assigning ``__class__`` then
    swaps every hot method for its pre-optimisation body while the
    copied state (and any optimisation work buffers, which the reference
    methods simply ignore) stays in place.
    """
    twin = copy.deepcopy(system)
    twin.__class__ = ReferenceUavSystem
    twin.physics.__class__ = ReferenceQuadrotorPhysics
    twin.physics.airframe.__class__ = ReferenceQuadrotorAirframe
    twin.physics.airframe.motors.__class__ = ReferenceMotorBank
    twin.physics.environment.wind.__class__ = ReferenceWindModel
    for member in twin.imu_bank.members:
        member.__class__ = ReferenceImu
    twin.ekf.__class__ = ReferenceEkf
    twin.position_controller.__class__ = ReferencePositionController
    twin.position_controller._vel_pid.__class__ = ReferencePid
    twin.attitude_controller.__class__ = ReferenceAttitudeController
    twin.rate_controller.__class__ = ReferenceRateController
    twin.rate_controller._rp_pid.__class__ = ReferencePid
    twin.rate_controller._yaw_pid.__class__ = ReferencePid
    twin.mixer.__class__ = ReferenceMixer
    twin.commander.__class__ = ReferenceCommander
    twin.commander.navigator.__class__ = ReferenceNavigator
    # The optimised EKF tracks the flatline watchdog as unboxed scalars;
    # the reference predict() reads the original array form. Materialise
    # the arrays from the copied scalar state so the twin's watchdog
    # compares against the same last-seen raw sample.
    ekf = twin.ekf
    ekf._last_raw_gyro = (
        np.array([ekf._lg0, ekf._lg1, ekf._lg2]) if ekf._have_lg else None
    )
    ekf._last_raw_accel = (
        np.array([ekf._la0, ekf._la1, ekf._la2]) if ekf._have_la else None
    )
    return twin
