"""Closed-loop throughput bench and per-subsystem profile.

``python -m repro.perf`` times the full ``UavSystem.step`` (physics +
wind + IMU bank + injector + EKF + control cascade + surveillance) in
steady-state cruise, compares it against the allocating reference twin,
attributes self-time to subsystems with :mod:`cProfile`, and emits
``BENCH_simulator.json``.

This is harness-side tooling: wall-clock reads are fine here (the
simulation itself remains deterministic; reprolint DET002 only fences
the sim/sensors/estimation/control/core layers).
"""

from __future__ import annotations

import cProfile
import json
import pstats
import time
from pathlib import Path
from typing import Any

from repro.core.atomicio import atomic_write_text
from repro.core.faults import FaultSpec, FaultTarget, FaultType
from repro.obs.observer import Observer
from repro.obs.registry import MetricsRegistry
from repro.perf.reference import reference_twin
from repro.perf.trace import build_trace_system
from repro.system import UavSystem

#: Steps before any timed section, so every measurement sees the same
#: steady-state cruise regime (airborne, EKF converged, mission phase).
WARMUP_STEPS = 1000
QUICK_WARMUP_STEPS = 300

#: JSON schema tag so downstream regression checks can evolve safely.
BENCH_SCHEMA = 1


def _steps_per_sec(system: UavSystem, n_steps: int, rounds: int = 5) -> float:
    """Median step rate over ``rounds`` timed sections of ``n_steps``.

    The median (not the mean) so a scheduler hiccup in one section
    cannot drag the reported rate — the same policy the pytest bench
    asserts on.
    """
    rates = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        for _ in range(n_steps):
            system.step()
        elapsed = time.perf_counter() - t0
        rates.append(n_steps / max(elapsed, 1e-12))
    return _median(rates)


def _median(rates: list[float]) -> float:
    rates = sorted(rates)
    mid = len(rates) // 2
    if len(rates) % 2:
        return rates[mid]
    return 0.5 * (rates[mid - 1] + rates[mid])


def _section_time(system: UavSystem, n_steps: int) -> float:
    t0 = time.perf_counter()
    for _ in range(n_steps):
        system.step()
    return max(time.perf_counter() - t0, 1e-12)


def _paired_overhead(
    disabled: UavSystem, enabled: UavSystem, n_steps: int, quartets: int = 24
) -> tuple[float, float, float]:
    """Overhead of ``enabled`` over ``disabled`` from interleaved
    quartets; returns ``(disabled_rate, enabled_rate, overhead)``.

    A few-percent instrumentation cost is far below the CPU frequency
    and load drift between distant bench sections, so each quartet
    times the pair back to back in ABBA order (alternating with BAAB so
    neither system systematically owns the first, coldest slot): linear
    drift inside a quartet cancels exactly, and the interquartile mean
    over many short quartets discards scheduler bursts. Distant-section
    comparison (e.g. vs the gold section of the same bench run) would
    measure the machine, not the instrumentation.
    """
    overheads: list[float] = []
    dis_total = ena_total = 0.0
    for q in range(quartets):
        first, second = (disabled, enabled) if q % 2 == 0 else (enabled, disabled)
        t_f1 = _section_time(first, n_steps)
        t_s1 = _section_time(second, n_steps)
        t_s2 = _section_time(second, n_steps)
        t_f2 = _section_time(first, n_steps)
        if q % 2 == 0:
            t_dis, t_ena = t_f1 + t_f2, t_s1 + t_s2
        else:
            t_dis, t_ena = t_s1 + t_s2, t_f1 + t_f2
        dis_total += t_dis
        ena_total += t_ena
        overheads.append(t_ena / max(t_dis, 1e-12) - 1.0)
    overheads.sort()
    k = len(overheads) // 4
    core = overheads[k : len(overheads) - k] or overheads
    steps = 2 * quartets * n_steps
    return (
        steps / max(dis_total, 1e-12),
        steps / max(ena_total, 1e-12),
        sum(core) / len(core),
    )


def _subsystem_of(filename: str) -> str:
    """Map a profiled frame's file to its ``repro`` subpackage."""
    parts = Path(filename).parts
    try:
        i = len(parts) - 1 - parts[::-1].index("repro")
    except ValueError:
        return "numpy/stdlib"
    if i + 2 < len(parts):
        return parts[i + 1]  # src/repro/<package>/module.py
    return "repro (top-level)"  # src/repro/system.py and friends


def _profile_breakdown(system: UavSystem, n_steps: int) -> dict[str, float]:
    """Fraction of profiled self-time per subsystem, largest first."""
    profiler = cProfile.Profile()
    profiler.enable()
    for _ in range(n_steps):
        system.step()
    profiler.disable()
    totals: dict[str, float] = {}
    for (filename, _line, _func), entry in pstats.Stats(profiler).stats.items():
        tottime = entry[2]
        key = _subsystem_of(filename)
        totals[key] = totals.get(key, 0.0) + tottime
    grand = max(sum(totals.values()), 1e-12)
    ranked = sorted(totals.items(), key=lambda kv: kv[1], reverse=True)
    return {name: t / grand for name, t in ranked}


def run_bench(quick: bool = False) -> dict[str, Any]:
    """Run the full bench suite and return the report dictionary."""
    warmup = QUICK_WARMUP_STEPS if quick else WARMUP_STEPS
    section = 200 if quick else 600
    rounds = 5
    ref_section = 100 if quick else 200
    profiled = 300 if quick else 1000

    # Gold-run throughput (the campaign's dominant regime).
    system = build_trace_system()
    for _ in range(warmup):
        system.step()
    gold_rate = _steps_per_sec(system, section, rounds)
    dt = system.config.physics_dt_s

    # Throughput during an active whole-IMU fault: the fault starts at
    # warmup end and the timed section is short enough (3 s) to stay
    # inside the violent-response window — a Random IMU fault drives the
    # vehicle terminal within ~4 s, and timing past that would measure
    # cheap post-crash idle steps instead of the injector, gated EKF
    # updates, failsafe, and desaturating mixer.
    fault = FaultSpec(
        FaultType.RANDOM, FaultTarget.IMU, start_time_s=warmup * dt, duration_s=1e6
    )
    faulted = build_trace_system(fault)
    for _ in range(warmup):
        faulted.step()
    fault_rate = _steps_per_sec(faulted, 100, rounds=3)

    # Gold cruise with the full observability plane on (metrics +
    # trace + black-box ring): the enabled-mode overhead the obs gate
    # holds to <=3% of the disabled rate. Events are edge-triggered, so
    # in cruise the recurring cost is one black-box row per step. The
    # pair is timed in interleaved ABBA quartets (_paired_overhead).
    obs_disabled = build_trace_system()
    obs_enabled = build_trace_system(obs=Observer(registry=MetricsRegistry()))
    for _ in range(warmup):
        obs_disabled.step()
        obs_enabled.step()
    obs_disabled_rate, obs_rate, obs_overhead = _paired_overhead(
        obs_disabled, obs_enabled, 60, quartets=24 if quick else 48
    )

    # Reference twin from identical steady state: the before/after pair.
    baseline_system = build_trace_system()
    for _ in range(warmup):
        baseline_system.step()
    twin = reference_twin(baseline_system)
    ref_rate = _steps_per_sec(twin, ref_section, rounds)

    profile_system = build_trace_system()
    for _ in range(warmup):
        profile_system.step()
    breakdown = _profile_breakdown(profile_system, profiled)

    return {
        "schema": BENCH_SCHEMA,
        "quick": quick,
        "physics_dt_s": dt,
        "timed_steps": section * rounds,
        "steps_per_sec": round(gold_rate, 1),
        "realtime_factor": round(gold_rate * dt, 2),
        "steps_per_sec_under_fault": round(fault_rate, 1),
        "steps_per_sec_obs_disabled": round(obs_disabled_rate, 1),
        "steps_per_sec_obs_enabled": round(obs_rate, 1),
        "obs_overhead_frac": round(max(0.0, obs_overhead), 4),
        "reference_steps_per_sec": round(ref_rate, 1),
        "speedup_vs_reference": round(gold_rate / max(ref_rate, 1e-12), 2),
        "subsystem_self_time_fractions": {
            name: round(frac, 4) for name, frac in breakdown.items()
        },
    }


def format_report(report: dict[str, Any]) -> str:
    """Human-readable timing report for the CLI."""
    lines = [
        "closed-loop simulator bench"
        + (" (quick)" if report["quick"] else "")
        + f" — {report['timed_steps']} steps @ dt={report['physics_dt_s']}s",
        f"  steps/sec (gold cruise):   {report['steps_per_sec']:>10.1f}",
        f"  real-time factor:          {report['realtime_factor']:>10.2f}x",
        f"  steps/sec (IMU fault):     {report['steps_per_sec_under_fault']:>10.1f}",
        f"  steps/sec (obs enabled):   {report['steps_per_sec_obs_enabled']:>10.1f}"
        f"  ({report['obs_overhead_frac'] * 100:.1f}% overhead)",
        f"  steps/sec (reference):     {report['reference_steps_per_sec']:>10.1f}",
        f"  speedup vs reference:      {report['speedup_vs_reference']:>10.2f}x",
        "  self-time by subsystem:",
    ]
    for name, frac in report["subsystem_self_time_fractions"].items():
        lines.append(f"    {name:<20} {frac * 100:5.1f}%")
    return "\n".join(lines)


def write_report(report: dict[str, Any], path: str | Path) -> None:
    """Emit the bench JSON atomically (IO001 contract)."""
    atomic_write_text(path, json.dumps(report, indent=2) + "\n")


def check_regression(
    report: dict[str, Any], baseline_path: str | Path, tolerance: float = 0.2
) -> tuple[bool, str]:
    """Compare ``steps_per_sec`` against a committed baseline file.

    Returns ``(ok, message)``; ``ok`` is False when throughput dropped
    more than ``tolerance`` (fractional) below the baseline. Faster-
    than-baseline runs always pass — the gate is one-sided.
    """
    baseline = json.loads(Path(baseline_path).read_text())
    floor = baseline["steps_per_sec"] * (1.0 - tolerance)
    current = report["steps_per_sec"]
    if current < floor:
        return False, (
            f"throughput regression: {current:.1f} steps/sec is below the "
            f"{floor:.1f} floor ({baseline['steps_per_sec']:.1f} baseline "
            f"- {tolerance:.0%} tolerance)"
        )
    return True, (
        f"throughput OK: {current:.1f} steps/sec vs {baseline['steps_per_sec']:.1f} "
        f"baseline (floor {floor:.1f})"
    )


def check_obs_overhead(
    report: dict[str, Any], tolerance: float = 0.03
) -> tuple[bool, str]:
    """Gate the enabled-observability cost against the disabled rate.

    Both rates come from interleaved sections of the *same* bench run
    (same machine, same load, alternating back-to-back), so the
    comparison is self-normalising — unlike the absolute baseline gate,
    it does not need a generous cross-machine tolerance.
    """
    overhead = report["obs_overhead_frac"]
    enabled = report["steps_per_sec_obs_enabled"]
    disabled = report.get("steps_per_sec_obs_disabled", report["steps_per_sec"])
    if overhead > tolerance:
        return False, (
            f"observability overhead {overhead:.1%} exceeds the "
            f"{tolerance:.0%} budget ({enabled:.1f} steps/sec enabled vs "
            f"{disabled:.1f} disabled)"
        )
    return True, (
        f"observability overhead OK: {overhead:.1%} "
        f"({enabled:.1f} steps/sec enabled vs {disabled:.1f} disabled, "
        f"budget {tolerance:.0%})"
    )
