"""CLI: ``python -m repro.perf`` — profile the hot loop, emit bench JSON.

Examples::

    python -m repro.perf                      # full bench, writes BENCH_simulator.json
    python -m repro.perf --quick              # CI smoke variant (~15 s)
    python -m repro.perf --quick --check-against BENCH_simulator.json
"""

from __future__ import annotations

import argparse
import sys

from repro.perf.bench import (
    check_obs_overhead,
    check_regression,
    format_report,
    run_bench,
    write_report,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Closed-loop simulator throughput bench and profile.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shorter warmup/timed sections (CI smoke; noisier numbers)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_simulator.json",
        help="bench JSON path (default: %(default)s)",
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="print the report without writing the JSON",
    )
    parser.add_argument(
        "--check-against",
        metavar="BASELINE",
        help="committed bench JSON to compare against; exits 1 on "
        "throughput regression beyond --tolerance",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional throughput drop vs baseline (default: %(default)s)",
    )
    parser.add_argument(
        "--check-obs-overhead",
        action="store_true",
        help="exit 1 when the obs-enabled rate is more than "
        "--obs-tolerance below the obs-disabled rate of the same run",
    )
    parser.add_argument(
        "--obs-tolerance",
        type=float,
        default=0.03,
        help="allowed fractional obs-enabled overhead (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    report = run_bench(quick=args.quick)
    print(format_report(report))

    if not args.no_write:
        write_report(report, args.output)
        print(f"wrote {args.output}")

    failed = False
    if args.check_against:
        ok, message = check_regression(report, args.check_against, args.tolerance)
        print(message)
        failed = failed or not ok
    if args.check_obs_overhead:
        ok, message = check_obs_overhead(report, args.obs_tolerance)
        print(message)
        failed = failed or not ok
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
