"""The operating area: the paper's 25 km^2 zone with a 60 ft ceiling.

U-space assigns each operation a containment volume; leaving it is an
airspace violation independent of the per-drone bubbles. This module
models the rectangular VLL (very-low-level) zone the Valencia scenario
uses and counts containment violations along a trajectory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: 60 feet in metres — the Valencia scenario's height restriction.
DEFAULT_CEILING_M = 18.29


@dataclass(frozen=True)
class OperatingArea:
    """An axis-aligned VLL operating zone in the local NED frame.

    ``half_extent_m`` is half the side length: the paper's 25 km^2 zone
    corresponds to a 5 km x 5 km square, i.e. ``half_extent_m = 2500``.
    """

    half_extent_m: float = 2500.0
    ceiling_m: float = DEFAULT_CEILING_M
    floor_m: float = 0.0

    def __post_init__(self) -> None:
        if self.half_extent_m <= 0.0:
            raise ValueError("half_extent_m must be positive")
        if self.ceiling_m <= self.floor_m:
            raise ValueError("ceiling must be above floor")

    @property
    def area_km2(self) -> float:
        """Zone footprint in square kilometres."""
        side_km = 2.0 * self.half_extent_m / 1000.0
        return side_km * side_km

    def contains(self, position_ned: np.ndarray) -> bool:
        """True when a NED position is inside the volume (inclusive)."""
        north, east, down = position_ned
        altitude = -down
        return (
            abs(north) <= self.half_extent_m
            and abs(east) <= self.half_extent_m
            and self.floor_m <= altitude <= self.ceiling_m
        )

    def violation_distance_m(self, position_ned: np.ndarray) -> float:
        """How far outside the volume a position is (0 when inside)."""
        north, east, down = position_ned
        altitude = -down
        d_north = max(0.0, abs(north) - self.half_extent_m)
        d_east = max(0.0, abs(east) - self.half_extent_m)
        d_alt = max(0.0, altitude - self.ceiling_m, self.floor_m - altitude)
        # hypot instead of sqrt-of-squares: denormal excursions would
        # underflow when squared and report 0 for a point that is outside.
        return math.hypot(d_north, d_east, d_alt)


class ContainmentMonitor:
    """Counts containment-violation episodes along a reported track.

    A violation *episode* starts when the reported position first leaves
    the volume and ends when it re-enters; sustained excursions count
    once, with the worst distance recorded — the event granularity a
    U-space containment service would alert on.
    """

    def __init__(self, area: OperatingArea):
        self.area = area
        self.episodes = 0
        self.instants_outside = 0
        self.worst_excursion_m = 0.0
        self._outside = False

    def check(self, position_ned: np.ndarray) -> bool:
        """Process one tracking instance; return True if outside."""
        outside = not self.area.contains(position_ned)
        if outside:
            self.instants_outside += 1
            self.worst_excursion_m = max(
                self.worst_excursion_m, self.area.violation_distance_m(position_ned)
            )
            if not self._outside:
                self.episodes += 1
        self._outside = outside
        return outside
