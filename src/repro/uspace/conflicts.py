"""Pairwise conflict detection between drones sharing the airspace.

The tables in the paper are per-drone-versus-own-route, but the bubble
concept exists to manage *separation between* drones in U-space. This
module provides that second use: given tracked positions and outer
radii for multiple drones, it detects bubble-overlap conflicts, which
the multi-UAV example exercises.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Conflict:
    """A detected loss of separation between two drones."""

    time_s: float
    drone_a: int
    drone_b: int
    distance_m: float
    required_separation_m: float

    @property
    def severity(self) -> float:
        """1 at zero distance, 0 at exactly the required separation."""
        if self.required_separation_m <= 0.0:
            return 0.0
        return max(0.0, 1.0 - self.distance_m / self.required_separation_m)


class ConflictDetector:
    """Counts pairwise bubble-overlap conflicts over a campaign of tracks."""

    def __init__(self) -> None:
        self.conflicts: list[Conflict] = []
        self._active_pairs: set[tuple[int, int]] = set()

    def check_instant(
        self,
        time_s: float,
        positions: dict[int, np.ndarray],
        outer_radii: dict[int, float],
    ) -> list[Conflict]:
        """Evaluate all drone pairs at one tracking instance.

        A conflict *event* is opened when two outer bubbles first
        overlap and closed when they separate again, so a sustained
        overlap counts once (with its closest approach recorded).
        """
        new_conflicts: list[Conflict] = []
        ids = sorted(positions)
        current_overlaps: set[tuple[int, int]] = set()
        for i, a in enumerate(ids):
            for b in ids[i + 1 :]:
                delta = positions[a] - positions[b]
                distance = math.sqrt(float(delta @ delta))
                required = outer_radii[a] + outer_radii[b]
                if distance < required:
                    pair = (a, b)
                    current_overlaps.add(pair)
                    if pair not in self._active_pairs:
                        conflict = Conflict(time_s, a, b, distance, required)
                        self.conflicts.append(conflict)
                        new_conflicts.append(conflict)
        self._active_pairs = current_overlaps
        return new_conflicts

    @property
    def total_conflicts(self) -> int:
        """Number of distinct conflict events observed so far."""
        return len(self.conflicts)
