"""Bubble-violation counting against the assigned route.

A drone's bubble travels with it along the flight plan. At each
tracking instance (1 Hz, the U-space surveillance rate) the monitor
measures how far the drone has strayed from its assigned route; straying
beyond the inner radius is an inner-bubble violation (alert), beyond the
outer radius an outer-bubble violation (separation loss). Gold runs
track the route well inside the inner bubble and score 0/0, matching
the paper's baseline rows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.missions.plan import MissionPlan, distance_to_polyline, route_polyline
from repro.uspace.bubble import OuterBubble, inner_bubble_radius


@dataclass
class ViolationCounts:
    """Violation tallies for one mission."""

    inner: int = 0
    outer: int = 0
    tracking_instances: int = 0
    max_deviation_m: float = 0.0


@dataclass(slots=True)
class TrackingPoint:
    """One tracking instance, kept for figures and analysis."""

    time_s: float
    position_ned: np.ndarray
    deviation_m: float
    inner_radius_m: float
    outer_radius_m: float


class BubbleMonitor:
    """Counts inner/outer violations for one drone's mission."""

    def __init__(
        self,
        plan: MissionPlan,
        tracking_interval_s: float = 1.0,
        risk_factor: float = 1.0,
    ):
        if tracking_interval_s <= 0.0:
            raise ValueError("tracking_interval_s must be positive")
        self.plan = plan
        self.tracking_interval_s = tracking_interval_s
        self.route = route_polyline(plan)
        drone = plan.drone
        self.inner_radius_m = inner_bubble_radius(
            drone.dimension_m,
            drone.safety_distance_m,
            drone.max_distance_per_track_m(tracking_interval_s),
        )
        self.outer_bubble = OuterBubble(self.inner_radius_m, risk_factor)
        self.counts = ViolationCounts()
        self.history: list[TrackingPoint] = []
        self._prev_position: np.ndarray | None = None
        self._next_track_time = 0.0

    def due(self, time_s: float) -> bool:
        """True when :meth:`maybe_track` would track at ``time_s``.

        Lets the caller skip computing the airspeed on the ~99 of 100
        ticks between tracking instances.
        """
        return not (time_s + 1e-9 < self._next_track_time)

    def maybe_track(
        self, time_s: float, position_ned: np.ndarray, airspeed_m_s: float
    ) -> TrackingPoint | None:
        """Process a tracking instance if one is due; return its record."""
        if time_s + 1e-9 < self._next_track_time:
            return None
        self._next_track_time = time_s + self.tracking_interval_s

        if self._prev_position is None:
            distance_covered = 0.0
        else:
            delta = position_ned - self._prev_position
            distance_covered = math.sqrt(float(delta @ delta))
        self._prev_position = position_ned.copy()

        outer_radius = self.outer_bubble.update(airspeed_m_s, distance_covered)
        deviation = distance_to_polyline(position_ned, self.route)

        self.counts.tracking_instances += 1
        self.counts.max_deviation_m = max(self.counts.max_deviation_m, deviation)
        if deviation > self.inner_radius_m:
            self.counts.inner += 1
        if deviation > outer_radius:
            self.counts.outer += 1

        point = TrackingPoint(
            time_s=time_s,
            position_ned=position_ned.copy(),
            deviation_m=deviation,
            inner_radius_m=self.inner_radius_m,
            outer_radius_m=outer_radius,
        )
        self.history.append(point)
        return point
