"""The two-layer bubble formulas (paper Eqs. 1-3).

Inner bubble (Eq. 1)::

    Bubble_inner = D_o + max(D_s, D_m)

where ``D_o`` is the drone's dimension (wingspan), ``D_s`` the
manufacturer-recommended safety distance, and ``D_m`` the maximum
distance the drone can cover at top speed between two tracking
instances.

Outer bubble (Eqs. 2-3)::

    D(t_n)          = D(t_{n-1}) * S_a(t_n) / S_a(t_{n-1})
    Bubble_outer(t) = R * (Bubble_inner * max(1, D(t_n)))

``D`` is the anticipated distance covered between tracking instances,
extrapolated from the airspeed ratio; ``R >= 1`` is the airspace risk
factor (the paper uses R = 1).
"""

from __future__ import annotations

from dataclasses import dataclass


def inner_bubble_radius(
    dimension_m: float, safety_distance_m: float, max_track_distance_m: float
) -> float:
    """Eq. 1: the static inner (alert) bubble radius in metres."""
    if dimension_m < 0.0 or safety_distance_m < 0.0 or max_track_distance_m < 0.0:
        raise ValueError("bubble inputs must be non-negative")
    return dimension_m + max(safety_distance_m, max_track_distance_m)


#: Airspeed below which the Eq. 2 ratio is numerically meaningless and
#: the anticipated distance is simply carried over.
_MIN_AIRSPEED_M_S = 0.05


@dataclass
class BubblePair:
    """Inner and outer radii at one tracking instance."""

    inner_m: float
    outer_m: float

    def __post_init__(self) -> None:
        if self.outer_m < self.inner_m:
            raise ValueError("outer bubble cannot be smaller than inner bubble")


class OuterBubble:
    """Stateful evaluation of the dynamic outer bubble.

    Call :meth:`update` once per tracking instance with the current
    airspeed and the distance actually covered since the previous
    instance. The anticipated distance ``D`` follows Eq. 2; the radius
    follows Eq. 3, floored at the inner radius ("the inner bubble radius
    consistently remains the minimum value", Sec. III-D.2).
    """

    def __init__(self, inner_radius_m: float, risk_factor: float = 1.0):
        if risk_factor < 1.0:
            raise ValueError("R must be >= 1 (paper Sec. III-D.2)")
        if inner_radius_m <= 0.0:
            raise ValueError("inner radius must be positive")
        self.inner_radius_m = inner_radius_m
        self.risk_factor = risk_factor
        self._prev_airspeed: float | None = None
        self._anticipated_distance_m: float | None = None

    def update(self, airspeed_m_s: float, distance_covered_m: float) -> float:
        """Advance one tracking instance; return the outer radius (m)."""
        airspeed_m_s = max(0.0, airspeed_m_s)
        if self._anticipated_distance_m is None:
            # First instance: seed the anticipated distance with reality.
            self._anticipated_distance_m = max(0.0, distance_covered_m)
        elif self._prev_airspeed is not None and self._prev_airspeed > _MIN_AIRSPEED_M_S:
            ratio = airspeed_m_s / self._prev_airspeed
            base = max(0.0, distance_covered_m)
            self._anticipated_distance_m = base * ratio
        else:
            self._anticipated_distance_m = max(0.0, distance_covered_m)
        self._prev_airspeed = airspeed_m_s

        radius = self.risk_factor * (
            self.inner_radius_m * max(1.0, self._anticipated_distance_m)
        )
        return max(radius, self.inner_radius_m)

    @property
    def anticipated_distance_m(self) -> float:
        """Eq. 2 output at the latest tracking instance (0 before any)."""
        return self._anticipated_distance_m or 0.0

    def current(self, airspeed_m_s: float, distance_covered_m: float) -> BubblePair:
        """Convenience: update and return both radii as a pair."""
        outer = self.update(airspeed_m_s, distance_covered_m)
        return BubblePair(inner_m=self.inner_radius_m, outer_m=outer)
