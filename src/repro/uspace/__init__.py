"""U-space separation: the paper's two-layer bubble concept.

The inner bubble (Eq. 1) is a static alert volume sized from the drone's
dimensions and either the manufacturer safety distance or the maximum
distance covered between tracking instances. The outer bubble (Eqs. 2-3)
is a dynamic separation volume that grows with the anticipated distance
the drone will cover, scaled by the airspace risk factor R.
"""

from repro.uspace.bubble import inner_bubble_radius, OuterBubble, BubblePair
from repro.uspace.monitor import BubbleMonitor, ViolationCounts
from repro.uspace.conflicts import ConflictDetector, Conflict
from repro.uspace.airspace import OperatingArea, ContainmentMonitor, DEFAULT_CEILING_M

__all__ = [
    "inner_bubble_radius",
    "OuterBubble",
    "BubblePair",
    "BubbleMonitor",
    "ViolationCounts",
    "ConflictDetector",
    "Conflict",
    "OperatingArea",
    "ContainmentMonitor",
    "DEFAULT_CEILING_M",
]
