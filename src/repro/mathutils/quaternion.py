"""Hamilton quaternion algebra on plain numpy arrays.

Quaternions are ``numpy.ndarray`` of shape ``(4,)`` ordered ``[w, x, y, z]``
and represent body-to-world rotations (see :mod:`repro.mathutils`). Keeping
them as raw arrays instead of a class keeps the EKF and simulator inner
loops allocation-light; all functions return new arrays and never mutate
their inputs.

The ``*_into`` variants at the bottom of the module are the hot-loop
forms: they write into a caller-owned ``out`` buffer instead of
allocating, but are required (and tested, see
``tests/test_property_inplace_math.py``) to produce bit-identical
results to their allocating counterparts — same operations, same
order, same rounding.
"""

from __future__ import annotations

import math

import numpy as np

_EPS = 1e-12


def quat_identity() -> np.ndarray:
    """Return the identity rotation ``[1, 0, 0, 0]``."""
    return np.array([1.0, 0.0, 0.0, 0.0])


def quat_normalize(q: np.ndarray) -> np.ndarray:
    """Return ``q`` scaled to unit norm.

    A zero (or numerically dead) quaternion normalises to the identity,
    which is the only safe fallback inside an estimator loop.
    """
    q = np.asarray(q, dtype=float)
    norm = math.sqrt(float(q @ q))
    if norm < _EPS:
        return quat_identity()
    return q / norm


def quat_multiply(q1: np.ndarray, q2: np.ndarray) -> np.ndarray:
    """Hamilton product ``q1 * q2`` (apply ``q2`` first, then ``q1``)."""
    w1, x1, y1, z1 = q1
    w2, x2, y2, z2 = q2
    return np.array(
        [
            w1 * w2 - x1 * x2 - y1 * y2 - z1 * z2,
            w1 * x2 + x1 * w2 + y1 * z2 - z1 * y2,
            w1 * y2 - x1 * z2 + y1 * w2 + z1 * x2,
            w1 * z2 + x1 * y2 - y1 * x2 + z1 * w2,
        ]
    )


def quat_conjugate(q: np.ndarray) -> np.ndarray:
    """Return the conjugate ``[w, -x, -y, -z]``."""
    return np.array([q[0], -q[1], -q[2], -q[3]])


def quat_inverse(q: np.ndarray) -> np.ndarray:
    """Return the inverse rotation (conjugate of the normalised input)."""
    return quat_conjugate(quat_normalize(q))


def quat_rotate(q: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Rotate body-frame vector ``v`` into the world frame.

    Uses the expanded rotation formula (no intermediate quaternion
    products), which is the cheapest correct form for 3-vectors.
    """
    w, x, y, z = q
    vx, vy, vz = v
    # t = 2 * (q_vec x v)
    tx = 2.0 * (y * vz - z * vy)
    ty = 2.0 * (z * vx - x * vz)
    tz = 2.0 * (x * vy - y * vx)
    # v' = v + w * t + q_vec x t
    return np.array(
        [
            vx + w * tx + (y * tz - z * ty),
            vy + w * ty + (z * tx - x * tz),
            vz + w * tz + (x * ty - y * tx),
        ]
    )


def quat_rotate_inverse(q: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Rotate world-frame vector ``v`` into the body frame."""
    return quat_rotate(quat_conjugate(q), v)


def quat_from_axis_angle(axis: np.ndarray, angle: float) -> np.ndarray:
    """Quaternion for a rotation of ``angle`` radians about ``axis``."""
    axis = np.asarray(axis, dtype=float)
    norm = math.sqrt(float(axis @ axis))
    if norm < _EPS or abs(angle) < _EPS:
        return quat_identity()
    half = 0.5 * angle
    s = math.sin(half) / norm
    return np.array([math.cos(half), axis[0] * s, axis[1] * s, axis[2] * s])


def quat_from_euler(roll: float, pitch: float, yaw: float) -> np.ndarray:
    """Quaternion from aerospace ZYX Euler angles (radians)."""
    cr, sr = math.cos(roll * 0.5), math.sin(roll * 0.5)
    cp, sp = math.cos(pitch * 0.5), math.sin(pitch * 0.5)
    cy, sy = math.cos(yaw * 0.5), math.sin(yaw * 0.5)
    return np.array(
        [
            cy * cp * cr + sy * sp * sr,
            cy * cp * sr - sy * sp * cr,
            cy * sp * cr + sy * cp * sr,
            sy * cp * cr - cy * sp * sr,
        ]
    )


def quat_to_euler(q: np.ndarray) -> tuple[float, float, float]:
    """Return ``(roll, pitch, yaw)`` in radians for quaternion ``q``.

    Pitch is clamped to +/- pi/2 at the gimbal-lock singularity.
    """
    w, x, y, z = quat_normalize(q)
    roll = math.atan2(2.0 * (w * x + y * z), 1.0 - 2.0 * (x * x + y * y))
    sinp = 2.0 * (w * y - z * x)
    if sinp >= 1.0:
        pitch = math.pi / 2.0
    elif sinp <= -1.0:
        pitch = -math.pi / 2.0
    else:
        pitch = math.asin(sinp)
    yaw = math.atan2(2.0 * (w * z + x * y), 1.0 - 2.0 * (y * y + z * z))
    return roll, pitch, yaw


def quat_to_rotation_matrix(q: np.ndarray) -> np.ndarray:
    """Return the 3x3 body-to-world rotation matrix for ``q``."""
    w, x, y, z = quat_normalize(q)
    return np.array(
        [
            [1 - 2 * (y * y + z * z), 2 * (x * y - w * z), 2 * (x * z + w * y)],
            [2 * (x * y + w * z), 1 - 2 * (x * x + z * z), 2 * (y * z - w * x)],
            [2 * (x * z - w * y), 2 * (y * z + w * x), 1 - 2 * (x * x + y * y)],
        ]
    )


def quat_from_rotation_matrix(rot: np.ndarray) -> np.ndarray:
    """Quaternion for a 3x3 rotation matrix (Shepperd's method)."""
    rot = np.asarray(rot, dtype=float)
    trace = rot[0, 0] + rot[1, 1] + rot[2, 2]
    if trace > 0.0:
        s = max(math.sqrt(trace + 1.0) * 2.0, _EPS)
        return quat_normalize(
            np.array(
                [
                    0.25 * s,
                    (rot[2, 1] - rot[1, 2]) / s,
                    (rot[0, 2] - rot[2, 0]) / s,
                    (rot[1, 0] - rot[0, 1]) / s,
                ]
            )
        )
    if rot[0, 0] > rot[1, 1] and rot[0, 0] > rot[2, 2]:
        s = max(math.sqrt(1.0 + rot[0, 0] - rot[1, 1] - rot[2, 2]) * 2.0, _EPS)
        q = [
            (rot[2, 1] - rot[1, 2]) / s,
            0.25 * s,
            (rot[0, 1] + rot[1, 0]) / s,
            (rot[0, 2] + rot[2, 0]) / s,
        ]
    elif rot[1, 1] > rot[2, 2]:
        s = max(math.sqrt(1.0 + rot[1, 1] - rot[0, 0] - rot[2, 2]) * 2.0, _EPS)
        q = [
            (rot[0, 2] - rot[2, 0]) / s,
            (rot[0, 1] + rot[1, 0]) / s,
            0.25 * s,
            (rot[1, 2] + rot[2, 1]) / s,
        ]
    else:
        s = max(math.sqrt(1.0 + rot[2, 2] - rot[0, 0] - rot[1, 1]) * 2.0, _EPS)
        q = [
            (rot[1, 0] - rot[0, 1]) / s,
            (rot[0, 2] + rot[2, 0]) / s,
            (rot[1, 2] + rot[2, 1]) / s,
            0.25 * s,
        ]
    return quat_normalize(np.array(q))


def quat_integrate(q: np.ndarray, omega_body: np.ndarray, dt: float) -> np.ndarray:
    """Integrate body angular rate ``omega_body`` (rad/s) over ``dt``.

    Uses the exact exponential map of the rotation increment, which stays
    stable for the large rates produced by gyro Min/Max fault injections.
    """
    omega_body = np.asarray(omega_body, dtype=float)
    angle = math.sqrt(float(omega_body @ omega_body)) * dt
    if angle < _EPS:
        dq = np.array(
            [
                1.0,
                0.5 * omega_body[0] * dt,
                0.5 * omega_body[1] * dt,
                0.5 * omega_body[2] * dt,
            ]
        )
    else:
        # quat_from_axis_angle normalises the axis, so this is exactly a
        # rotation of |omega| * dt about the unit rate direction.
        dq = quat_from_axis_angle(omega_body, angle)
    return quat_normalize(quat_multiply(q, dq))


def quat_angle_between(q1: np.ndarray, q2: np.ndarray) -> float:
    """Smallest rotation angle (radians) taking ``q1`` to ``q2``."""
    dot = abs(float(np.dot(quat_normalize(q1), quat_normalize(q2))))
    dot = min(1.0, dot)
    return 2.0 * math.acos(dot)


def quat_slerp(q1: np.ndarray, q2: np.ndarray, t: float) -> np.ndarray:
    """Spherical linear interpolation between ``q1`` and ``q2``."""
    q1 = quat_normalize(q1)
    q2 = quat_normalize(q2)
    dot = float(np.dot(q1, q2))
    if dot < 0.0:
        q2 = -q2
        dot = -dot
    if dot > 1.0 - 1e-9:
        return quat_normalize(q1 + t * (q2 - q1))
    theta = math.acos(min(1.0, dot))
    # dot <= 1 - 1e-9 here (the near-parallel branch returned above), so
    # theta >= ~4.5e-5 rad and sin_theta is strictly positive.
    sin_theta = math.sin(theta)
    a = math.sin((1.0 - t) * theta) / sin_theta  # reprolint: disable=NUM002
    b = math.sin(t * theta) / sin_theta  # reprolint: disable=NUM002
    return quat_normalize(a * q1 + b * q2)


# ---------------------------------------------------------------------------
# In-place variants for preallocated hot-loop buffers.
#
# Each mirrors the allocating function above operation-for-operation so the
# results are bit-identical (dot products stay as array dots — scalarising
# them would change rounding under BLAS FMA). ``out`` may alias the inputs
# unless noted: every scalar is read before anything is written.
# ---------------------------------------------------------------------------


def quat_normalize_into(q: np.ndarray, out: np.ndarray) -> np.ndarray:
    """In-place :func:`quat_normalize`; ``out`` may alias ``q``."""
    norm = math.sqrt(float(q @ q))
    if norm < _EPS:
        out[0] = 1.0
        out[1] = 0.0
        out[2] = 0.0
        out[3] = 0.0
        return out
    np.divide(q, norm, out=out)
    return out


def quat_multiply_into(q1: np.ndarray, q2: np.ndarray, out: np.ndarray) -> np.ndarray:
    """In-place :func:`quat_multiply`; ``out`` may alias either input."""
    w1, x1, y1, z1 = q1
    w2, x2, y2, z2 = q2
    w = w1 * w2 - x1 * x2 - y1 * y2 - z1 * z2
    x = w1 * x2 + x1 * w2 + y1 * z2 - z1 * y2
    y = w1 * y2 - x1 * z2 + y1 * w2 + z1 * x2
    z = w1 * z2 + x1 * y2 - y1 * x2 + z1 * w2
    out[0] = w
    out[1] = x
    out[2] = y
    out[3] = z
    return out


def quat_conjugate_into(q: np.ndarray, out: np.ndarray) -> np.ndarray:
    """In-place :func:`quat_conjugate`; ``out`` may alias ``q``."""
    out[0] = q[0]
    out[1] = -q[1]
    out[2] = -q[2]
    out[3] = -q[3]
    return out


def quat_rotate_into(q: np.ndarray, v: np.ndarray, out: np.ndarray) -> np.ndarray:
    """In-place :func:`quat_rotate`; ``out`` may alias ``v``."""
    w, x, y, z = q
    vx, vy, vz = v
    tx = 2.0 * (y * vz - z * vy)
    ty = 2.0 * (z * vx - x * vz)
    tz = 2.0 * (x * vy - y * vx)
    out[0] = vx + w * tx + (y * tz - z * ty)
    out[1] = vy + w * ty + (z * tx - x * tz)
    out[2] = vz + w * tz + (x * ty - y * tx)
    return out


def quat_from_axis_angle_into(
    axis: np.ndarray, angle: float, out: np.ndarray
) -> np.ndarray:
    """In-place :func:`quat_from_axis_angle`. ``out`` must not alias ``axis``."""
    norm = math.sqrt(float(axis @ axis))
    if norm < _EPS or abs(angle) < _EPS:
        out[0] = 1.0
        out[1] = 0.0
        out[2] = 0.0
        out[3] = 0.0
        return out
    half = 0.5 * angle
    s = math.sin(half) / norm
    out[0] = math.cos(half)
    out[1] = axis[0] * s
    out[2] = axis[1] * s
    out[3] = axis[2] * s
    return out


def quat_to_rotation_matrix_into(q: np.ndarray, out: np.ndarray) -> np.ndarray:
    """In-place :func:`quat_to_rotation_matrix` (``out`` is 3x3)."""
    norm = math.sqrt(float(q @ q))
    if norm < _EPS:
        w, x, y, z = 1.0, 0.0, 0.0, 0.0
    else:
        w = q[0] / norm
        x = q[1] / norm
        y = q[2] / norm
        z = q[3] / norm
    out[0, 0] = 1 - 2 * (y * y + z * z)
    out[0, 1] = 2 * (x * y - w * z)
    out[0, 2] = 2 * (x * z + w * y)
    out[1, 0] = 2 * (x * y + w * z)
    out[1, 1] = 1 - 2 * (x * x + z * z)
    out[1, 2] = 2 * (y * z - w * x)
    out[2, 0] = 2 * (x * z - w * y)
    out[2, 1] = 2 * (y * z + w * x)
    out[2, 2] = 1 - 2 * (x * x + y * y)
    return out


def quat_from_rotation_matrix_into(rot: np.ndarray, out: np.ndarray) -> np.ndarray:
    """In-place :func:`quat_from_rotation_matrix`."""
    trace = rot[0, 0] + rot[1, 1] + rot[2, 2]
    if trace > 0.0:
        s = max(math.sqrt(trace + 1.0) * 2.0, _EPS)
        out[0] = 0.25 * s
        out[1] = (rot[2, 1] - rot[1, 2]) / s
        out[2] = (rot[0, 2] - rot[2, 0]) / s
        out[3] = (rot[1, 0] - rot[0, 1]) / s
        return quat_normalize_into(out, out)
    if rot[0, 0] > rot[1, 1] and rot[0, 0] > rot[2, 2]:
        s = max(math.sqrt(1.0 + rot[0, 0] - rot[1, 1] - rot[2, 2]) * 2.0, _EPS)
        out[0] = (rot[2, 1] - rot[1, 2]) / s
        out[1] = 0.25 * s
        out[2] = (rot[0, 1] + rot[1, 0]) / s
        out[3] = (rot[0, 2] + rot[2, 0]) / s
    elif rot[1, 1] > rot[2, 2]:
        s = max(math.sqrt(1.0 + rot[1, 1] - rot[0, 0] - rot[2, 2]) * 2.0, _EPS)
        out[0] = (rot[0, 2] - rot[2, 0]) / s
        out[1] = (rot[0, 1] + rot[1, 0]) / s
        out[2] = 0.25 * s
        out[3] = (rot[1, 2] + rot[2, 1]) / s
    else:
        s = max(math.sqrt(1.0 + rot[2, 2] - rot[0, 0] - rot[1, 1]) * 2.0, _EPS)
        out[0] = (rot[1, 0] - rot[0, 1]) / s
        out[1] = (rot[0, 2] + rot[2, 0]) / s
        out[2] = (rot[1, 2] + rot[2, 1]) / s
        out[3] = 0.25 * s
    return quat_normalize_into(out, out)


def quat_integrate_into(
    q: np.ndarray, omega_body: np.ndarray, dt: float, out: np.ndarray
) -> np.ndarray:
    """In-place :func:`quat_integrate`; ``out`` may alias ``q``."""
    norm = math.sqrt(float(omega_body @ omega_body))
    angle = norm * dt
    if angle < _EPS:
        dw = 1.0
        dx = 0.5 * omega_body[0] * dt
        dy = 0.5 * omega_body[1] * dt
        dz = 0.5 * omega_body[2] * dt
    elif norm < _EPS or abs(angle) < _EPS:
        # quat_from_axis_angle's own degenerate guard (reachable only for
        # pathological dt); keeps parity with the allocating path.
        dw, dx, dy, dz = 1.0, 0.0, 0.0, 0.0
    else:
        half = 0.5 * angle
        s = math.sin(half) / norm
        dw = math.cos(half)
        dx = omega_body[0] * s
        dy = omega_body[1] * s
        dz = omega_body[2] * s
    w1, x1, y1, z1 = q
    out[0] = w1 * dw - x1 * dx - y1 * dy - z1 * dz
    out[1] = w1 * dx + x1 * dw + y1 * dz - z1 * dy
    out[2] = w1 * dy - x1 * dz + y1 * dw + z1 * dx
    out[3] = w1 * dz + x1 * dy - y1 * dx + z1 * dw
    return quat_normalize_into(out, out)
