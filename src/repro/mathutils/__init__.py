"""Mathematical utilities shared by every subsystem.

The conventions used throughout the code base are fixed here once:

* World frame: **NED** (north, east, down), the PX4 local frame. Altitude
  above the origin is therefore ``-position[2]``.
* Body frame: **FRD** (forward, right, down).
* Quaternions are Hamilton quaternions stored as ``[w, x, y, z]`` and
  encode the body-to-world rotation: ``v_world = rotate(q, v_body)``.
* Euler angles are the aerospace ZYX sequence (yaw, pitch, roll).
"""

from repro.mathutils.quaternion import (
    quat_identity,
    quat_normalize,
    quat_multiply,
    quat_conjugate,
    quat_inverse,
    quat_rotate,
    quat_rotate_inverse,
    quat_from_axis_angle,
    quat_from_euler,
    quat_to_euler,
    quat_to_rotation_matrix,
    quat_from_rotation_matrix,
    quat_integrate,
    quat_angle_between,
    quat_slerp,
    quat_normalize_into,
    quat_multiply_into,
    quat_conjugate_into,
    quat_rotate_into,
    quat_from_axis_angle_into,
    quat_to_rotation_matrix_into,
    quat_from_rotation_matrix_into,
    quat_integrate_into,
)
from repro.mathutils.rotations import (
    rotation_x,
    rotation_y,
    rotation_z,
    skew,
    unskew,
    wrap_angle,
    angle_difference,
)
from repro.mathutils.geodesy import GeoPoint, GeodeticReference, EARTH_RADIUS_M
from repro.mathutils.numerics import clamp, clamp_norm, lerp, is_finite_array

__all__ = [
    "quat_identity",
    "quat_normalize",
    "quat_multiply",
    "quat_conjugate",
    "quat_inverse",
    "quat_rotate",
    "quat_rotate_inverse",
    "quat_from_axis_angle",
    "quat_from_euler",
    "quat_to_euler",
    "quat_to_rotation_matrix",
    "quat_from_rotation_matrix",
    "quat_integrate",
    "quat_angle_between",
    "quat_slerp",
    "quat_normalize_into",
    "quat_multiply_into",
    "quat_conjugate_into",
    "quat_rotate_into",
    "quat_from_axis_angle_into",
    "quat_to_rotation_matrix_into",
    "quat_from_rotation_matrix_into",
    "quat_integrate_into",
    "rotation_x",
    "rotation_y",
    "rotation_z",
    "skew",
    "unskew",
    "wrap_angle",
    "angle_difference",
    "GeoPoint",
    "GeodeticReference",
    "EARTH_RADIUS_M",
    "clamp",
    "clamp_norm",
    "lerp",
    "is_finite_array",
]
