"""Rotation matrices, skew operators, and angle helpers."""

from __future__ import annotations

import math

import numpy as np


def rotation_x(angle: float) -> np.ndarray:
    """Rotation matrix about the x axis by ``angle`` radians."""
    c, s = math.cos(angle), math.sin(angle)
    return np.array([[1.0, 0.0, 0.0], [0.0, c, -s], [0.0, s, c]])


def rotation_y(angle: float) -> np.ndarray:
    """Rotation matrix about the y axis by ``angle`` radians."""
    c, s = math.cos(angle), math.sin(angle)
    return np.array([[c, 0.0, s], [0.0, 1.0, 0.0], [-s, 0.0, c]])


def rotation_z(angle: float) -> np.ndarray:
    """Rotation matrix about the z axis by ``angle`` radians."""
    c, s = math.cos(angle), math.sin(angle)
    return np.array([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]])


def skew(v: np.ndarray) -> np.ndarray:
    """Skew-symmetric cross-product matrix: ``skew(a) @ b == a x b``."""
    return np.array(
        [
            [0.0, -v[2], v[1]],
            [v[2], 0.0, -v[0]],
            [-v[1], v[0], 0.0],
        ]
    )


def unskew(m: np.ndarray) -> np.ndarray:
    """Inverse of :func:`skew` for (approximately) skew-symmetric ``m``."""
    return np.array([m[2, 1], m[0, 2], m[1, 0]])


def wrap_angle(angle: float) -> float:
    """Wrap an angle to ``(-pi, pi]``."""
    wrapped = math.fmod(angle + math.pi, 2.0 * math.pi)
    if wrapped <= 0.0:
        wrapped += 2.0 * math.pi
    return wrapped - math.pi


def angle_difference(a: float, b: float) -> float:
    """Shortest signed angular difference ``a - b`` wrapped to (-pi, pi]."""
    return wrap_angle(a - b)
