"""Small numeric helpers used across control and estimation code."""

from __future__ import annotations

import math

import numpy as np


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into ``[low, high]``.

    Raises :class:`ValueError` if the bounds are inverted; silent bound
    swapping hides configuration bugs in controller limits.
    """
    if low > high:
        raise ValueError(f"clamp bounds inverted: [{low}, {high}]")
    return min(max(value, low), high)


def clamp_norm(vec: np.ndarray, max_norm: float) -> np.ndarray:
    """Scale ``vec`` down so its Euclidean norm is at most ``max_norm``.

    Direction is preserved; vectors already inside the bound are returned
    unchanged (same object, no copy) to keep hot control loops cheap.
    """
    if max_norm < 0.0:
        raise ValueError(f"max_norm must be non-negative, got {max_norm}")
    norm_sq = float(vec @ vec)
    if norm_sq <= max_norm * max_norm:
        return vec
    return vec * (max_norm / math.sqrt(norm_sq))


def lerp(a: float, b: float, t: float) -> float:
    """Linear interpolation from ``a`` to ``b`` with ``t`` in [0, 1]."""
    return a + (b - a) * clamp(t, 0.0, 1.0)


def is_finite_array(arr: np.ndarray) -> bool:
    """True when every element of ``arr`` is finite (no NaN/inf)."""
    return bool(np.isfinite(arr).all())
