"""WGS-84 geodesy and the local NED frame used by missions.

Missions are authored in geodetic coordinates (the paper's Valencia
scenario) but the simulator, EKF, and metrics all work in a local NED
frame anchored at a :class:`GeodeticReference`. The flat-earth
approximation used here is accurate to centimetres over the paper's
25 km^2 operating area, which is far below sensor noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: Mean earth radius in metres (IUGG), used by the spherical projection.
EARTH_RADIUS_M = 6_371_008.8


@dataclass(frozen=True)
class GeoPoint:
    """A geodetic coordinate: latitude/longitude in degrees, altitude in
    metres above the reference origin's ground level (positive up)."""

    latitude_deg: float
    longitude_deg: float
    altitude_m: float = 0.0

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude_deg <= 90.0:
            raise ValueError(f"latitude out of range: {self.latitude_deg}")
        if not -180.0 <= self.longitude_deg <= 180.0:
            raise ValueError(f"longitude out of range: {self.longitude_deg}")


class GeodeticReference:
    """Anchors a local NED frame at a geodetic origin.

    ``to_local`` maps a :class:`GeoPoint` to NED metres (down positive,
    so a point 10 m above the origin has ``z = -10``); ``to_geodetic``
    is the inverse.
    """

    def __init__(self, origin: GeoPoint):
        self.origin = origin
        self._lat0_rad = math.radians(origin.latitude_deg)
        self._lon0_rad = math.radians(origin.longitude_deg)
        self._cos_lat0 = math.cos(self._lat0_rad)

    def to_local(self, point: GeoPoint) -> np.ndarray:
        """Project ``point`` into the local NED frame (metres)."""
        d_lat = math.radians(point.latitude_deg) - self._lat0_rad
        d_lon = math.radians(point.longitude_deg) - self._lon0_rad
        north = d_lat * EARTH_RADIUS_M
        east = d_lon * EARTH_RADIUS_M * self._cos_lat0
        down = -(point.altitude_m - self.origin.altitude_m)
        return np.array([north, east, down])

    def to_geodetic(self, ned: np.ndarray) -> GeoPoint:
        """Inverse of :meth:`to_local`."""
        lat = self._lat0_rad + ned[0] / EARTH_RADIUS_M
        lon = self._lon0_rad + ned[1] / (EARTH_RADIUS_M * self._cos_lat0)
        alt = self.origin.altitude_m - ned[2]
        return GeoPoint(math.degrees(lat), math.degrees(lon), alt)

    def distance_m(self, a: GeoPoint, b: GeoPoint) -> float:
        """3-D straight-line distance between two geodetic points."""
        delta = self.to_local(a) - self.to_local(b)
        return float(math.sqrt(delta @ delta))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GeodeticReference(origin={self.origin})"
