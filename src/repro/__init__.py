"""repro: a full reproduction of the DSN 2024 study
"A Comprehensive Study on Drones Resilience in the Presence of
Inertial Measurement Unit Faults" (Khan, Ivaki, Madeira).

Public API surface:

* :class:`~repro.system.UavSystem` — one vehicle + PX4-like stack.
* :func:`~repro.missions.valencia.valencia_missions` — the 10-mission
  U-space scenario.
* :class:`~repro.core.faults.FaultSpec` / :class:`FaultType` /
  :class:`FaultTarget` — the IMU fault model (paper Table I).
* :func:`~repro.core.campaign.run_campaign` +
  :class:`~repro.core.campaign.CampaignConfig` — the 850-case
  experiment campaign.
* :func:`~repro.core.tables.table2_by_duration` /
  :func:`table3_by_fault` / :func:`table4_failure_analysis` — the
  paper's result tables.
"""

from repro.system import UavSystem, SystemConfig, MissionResult
from repro.missions import valencia_missions, MissionPlan, DroneSpec, Waypoint
from repro.core import (
    FaultSpec,
    FaultType,
    FaultTarget,
    FaultScope,
    FAULT_MODEL_CATALOG,
    SensorFaultInjector,
    build_experiment_matrix,
    ExperimentSpec,
    ExperimentResult,
    CampaignResult,
    ResilienceRow,
    resilience_comparison,
    render_resilience_table,
    table2_by_duration,
    table3_by_fault,
    table4_failure_analysis,
    render_table,
)
from repro.core.campaign import CampaignConfig, run_campaign, run_experiment, quick_config
from repro.core.io import (
    save_campaign,
    load_campaign,
    export_csv,
    CampaignJournal,
    JournalMismatchError,
)
from repro.core.resilience import RetryPolicy, CaseTimeoutError, NO_RETRY
from repro.core.analysis import (
    check_paper_shapes,
    harness_error_report,
    redundancy_rescues,
    render_rescues,
    render_shape_checks,
    severity_ranking,
)
from repro.flightstack import MissionOutcome, FlightParams
from repro.redundancy import ImuBank, RedundancyConfig, Voter, VoterParams

__version__ = "1.0.0"

__all__ = [
    "UavSystem",
    "SystemConfig",
    "MissionResult",
    "valencia_missions",
    "MissionPlan",
    "DroneSpec",
    "Waypoint",
    "FaultSpec",
    "FaultType",
    "FaultTarget",
    "FaultScope",
    "FAULT_MODEL_CATALOG",
    "SensorFaultInjector",
    "ImuBank",
    "RedundancyConfig",
    "Voter",
    "VoterParams",
    "CampaignConfig",
    "run_campaign",
    "run_experiment",
    "build_experiment_matrix",
    "ExperimentSpec",
    "ExperimentResult",
    "CampaignResult",
    "ResilienceRow",
    "resilience_comparison",
    "render_resilience_table",
    "table2_by_duration",
    "table3_by_fault",
    "table4_failure_analysis",
    "render_table",
    "quick_config",
    "save_campaign",
    "load_campaign",
    "export_csv",
    "CampaignJournal",
    "JournalMismatchError",
    "RetryPolicy",
    "CaseTimeoutError",
    "NO_RETRY",
    "harness_error_report",
    "check_paper_shapes",
    "redundancy_rescues",
    "render_rescues",
    "render_shape_checks",
    "severity_ranking",
    "MissionOutcome",
    "FlightParams",
    "__version__",
]
