#!/usr/bin/env python3
"""Run the ablation sweeps on the reproduction's design choices.

Shows how much each mechanism matters:

* failsafe isolation time (the paper's >= 1900 ms observation),
* the 60 deg/s gyro failure-detection threshold,
* the EKF fusion-timeout reset (recovery after divergence),
* degraded-attitude gain scheduling (survival of gyro-dead windows),
* the bubble risk factor R (Eq. 3).

Run: ``python examples/ablation_study.py [--which all]``
"""

import argparse

from repro.core.ablations import (
    confidence_scheduling_ablation,
    fusion_reset_ablation,
    gyro_threshold_sweep,
    isolation_time_sweep,
    render_ablation,
    risk_factor_sweep,
)

SWEEPS = {
    "isolation": (isolation_time_sweep, "Failsafe isolation time sweep (gyro fault slice)"),
    "threshold": (gyro_threshold_sweep, "Gyro FD threshold sweep (gyro fault slice)"),
    "reset": (fusion_reset_ablation, "EKF fusion-timeout reset on/off (accel fault slice)"),
    "confidence": (confidence_scheduling_ablation, "Attitude-confidence gain scheduling on/off"),
    "risk": (risk_factor_sweep, "Bubble risk factor R sweep (Eq. 3)"),
}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--which", choices=["all", *SWEEPS], default="all")
    args = parser.parse_args()

    chosen = SWEEPS if args.which == "all" else {args.which: SWEEPS[args.which]}
    for key, (sweep, title) in chosen.items():
        print()
        print(render_ablation(sweep(), title))


if __name__ == "__main__":
    main()
