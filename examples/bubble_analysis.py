#!/usr/bin/env python3
"""Inspect the two-layer bubble (paper Fig. 2 and Eqs. 1-3) over a flight.

Flies one mission twice (clean and with an 'Acc Zeros' fault) and prints
a per-tracking-instance trace of the inner/outer bubble radii and the
drone's deviation from its assigned route, marking violations — the
exact signal U-space surveillance would see.

Run: ``python examples/bubble_analysis.py``
"""

from repro import FaultSpec, FaultTarget, FaultType, UavSystem, valencia_missions
from repro.uspace import inner_bubble_radius


def fly_and_report(plan, fault=None, every_s=5):
    label = fault.label if fault else "Gold"
    system = UavSystem(plan, fault=fault)
    result = system.run()
    monitor = system.bubble_monitor
    print(f"\n--- {label}: outcome={result.outcome.value}, "
          f"inner violations={result.inner_violations}, "
          f"outer violations={result.outer_violations} ---")
    print(f"{'t (s)':>7} {'deviation (m)':>14} {'inner (m)':>10} {'outer (m)':>10}  flags")
    for point in monitor.history[::every_s]:
        flags = ""
        if point.deviation_m > point.inner_radius_m:
            flags += " INNER"
        if point.deviation_m > point.outer_radius_m:
            flags += " OUTER"
        print(
            f"{point.time_s:>7.1f} {point.deviation_m:>14.2f} "
            f"{point.inner_radius_m:>10.2f} {point.outer_radius_m:>10.2f} {flags}"
        )
    return result


def main():
    plan = valencia_missions(scale=0.15)[3]
    drone = plan.drone

    # Eq. 1 inputs for this drone.
    d_m = drone.max_distance_per_track_m(1.0)
    inner = inner_bubble_radius(drone.dimension_m, drone.safety_distance_m, d_m)
    print(f"Drone {drone.name}: D_o={drone.dimension_m} m, "
          f"D_s={drone.safety_distance_m} m, D_m={d_m:.2f} m")
    print(f"Eq. 1 inner bubble radius = D_o + max(D_s, D_m) = {inner:.2f} m")

    fly_and_report(plan)
    fault = FaultSpec(FaultType.ZEROS, FaultTarget.ACCEL, start_time_s=25.0, duration_s=10.0)
    fly_and_report(plan, fault)

    print(
        "\nThe gold run never leaves the inner bubble (the paper's 0/0"
        "\nbaseline row); during the fault window the reported position"
        "\ndiverges and U-space sees a burst of bubble violations."
    )


if __name__ == "__main__":
    main()
