#!/usr/bin/env python3
"""Measure fault-detection and failsafe latencies per fault type.

The paper observes that "failsafe takes a minimum of 1900 ms" (the
redundant-sensor isolation stage) and that 80% of missions already fail
with 2 s injections — concluding that quick detection matters. This
example quantifies the timeline for a representative fault slice:
time from injection to detection (isolation start), to failsafe
engagement, and to vehicle loss when the crash wins the race.

Run: ``python examples/detection_latency.py``
"""

from repro import FaultSpec, FaultTarget, FaultType, valencia_missions
from repro.core.detection import measure_detection, render_detection_report


def main():
    plan = valencia_missions(scale=0.12)[3]
    inject = 22.0
    faults = [
        FaultSpec(FaultType.MIN, FaultTarget.GYRO, inject, 2.0, seed=1),
        FaultSpec(FaultType.RANDOM, FaultTarget.GYRO, inject, 30.0, seed=2),
        FaultSpec(FaultType.ZEROS, FaultTarget.GYRO, inject, 30.0, seed=3),
        FaultSpec(FaultType.MAX, FaultTarget.ACCEL, inject, 10.0, seed=4),
        FaultSpec(FaultType.ZEROS, FaultTarget.ACCEL, inject, 10.0, seed=5),
        FaultSpec(FaultType.RANDOM, FaultTarget.IMU, inject, 30.0, seed=6),
        FaultSpec(FaultType.FREEZE, FaultTarget.IMU, inject, 2.0, seed=7),
    ]
    records = [measure_detection(plan, fault) for fault in faults]
    print(render_detection_report(
        records, f"Detection timeline (mission {plan.mission_id}, injection at t={inject}s)"
    ))
    print(
        "\nNotes: 'detect' is when failure detection debounced (isolation"
        "\nstarts); 'failsafe' adds the >=1.9 s isolation stage the paper"
        "\nmeasured; 'loss' is ground impact. Violent faults often crash"
        "\nbefore isolation completes - the paper's crash-dominated short"
        "\ninjections. A '-' means the event never happened in that run."
        "\n'trigger' is the failure-detection condition that debounced"
        "\nfirst (gyro_rate / attitude / ekf_health); 'isolation' reports"
        "\nthe redundant-sensor stage: on this single-IMU vehicle it can"
        "\nonly succeed when the fault window ends on its own - see"
        "\nexamples/redundancy_study.py for the IMU-bank variant."
    )


if __name__ == "__main__":
    main()
