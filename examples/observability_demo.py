#!/usr/bin/env python3
"""Re-fly the redundancy headline rescue with full tracing on.

The scenario is PR 3's flagship case: mission 3 with a Gyro Fixed
Value fault injected into the primary IMU for 10 s. Flown with a
single IMU the vehicle crashes; flown with a 3-member redundant bank
the failsafe's isolation stage switches to a healthy member and the
mission completes. This demo flies both runs with the observability
plane enabled and shows what the instrumentation saw:

* the span tree of each run (flight phases nested under the run, with
  injection / failsafe / switchover point events on the timeline);
* the IMU switchover timeline of the mitigated run;
* the artifacts: the baseline's black box, both runs' JSONL event
  logs, and a Prometheus metrics snapshot, all under ``--out``.

Inspect the artifacts afterwards with the CLI::

    python -m repro.obs summarize <out>/blackbox_baseline.json
    python -m repro.obs diff <out>/events_baseline.jsonl <out>/events_mitigated.jsonl
    python -m repro.obs render <out>/blackbox_baseline.json

Run: ``python examples/observability_demo.py [--scale 0.1] [--seed 0]
      [--out obs-demo]``
"""

import argparse
from pathlib import Path

from repro.core.experiments import build_experiment_matrix
from repro.core.faults import FaultScope
from repro.missions import valencia_missions
from repro.obs import (
    MetricsRegistry,
    Observer,
    build_span_tree,
    render_span_tree,
    write_events_jsonl,
    write_prometheus,
)
from repro.redundancy import RedundancyConfig
from repro.system import SystemConfig, UavSystem

MISSION_ID = 3
DURATION_S = 10.0
FAULT_LABEL = "Gyro Fixed Value"


def rescue_fault(seed: int, injection_s: float):
    """The campaign-matrix fault of the rescue case (same derived seed,
    so this demo reproduces the PR 3 acceptance scenario bit-for-bit)."""
    specs = [
        s
        for s in build_experiment_matrix(
            mission_ids=[MISSION_ID], durations_s=(DURATION_S,),
            injection_time_s=injection_s, base_seed=seed,
            include_gold=False, scope=FaultScope.PRIMARY_ONLY,
        )
        if s.label == FAULT_LABEL
    ]
    assert len(specs) == 1
    return specs[0].fault


def fly(mitigated: bool, scale: float, seed: int, injection_s: float,
        out: Path, registry: MetricsRegistry):
    """One observed run; returns ``(system, observer, mission_result)``."""
    name = "mitigated" if mitigated else "baseline"
    plans = {p.mission_id: p for p in valencia_missions(scale=scale)}
    plan = plans[MISSION_ID]
    obs = Observer(
        registry=registry,
        blackbox_dir=out,
        blackbox_name=f"blackbox_{name}.json",
    )
    system = UavSystem(
        plan,
        config=SystemConfig(
            seed=seed,
            redundancy=RedundancyConfig(enabled=mitigated, num_members=3),
        ),
        fault=rescue_fault(seed, injection_s),
        obs=obs,
    )
    result = system.run()
    write_events_jsonl(obs.trace.events, out / f"events_{name}.jsonl")
    return system, obs, result


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--injection", type=float, default=15.0,
                        help="fault start time in seconds (the rescue "
                             "scenario pins 15.0 at scale 0.1)")
    parser.add_argument("--out", type=str, default="obs-demo",
                        help="artifact directory (created if missing)")
    args = parser.parse_args()
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    registry = MetricsRegistry()  # shared: both runs aggregate here

    print(f"mission {MISSION_ID}, Gyro Fixed Value x {DURATION_S:.0f}s on the "
          f"primary IMU (scale={args.scale})\n")

    for mitigated in (False, True):
        name = "mitigated (3-IMU bank)" if mitigated else "baseline (single IMU)"
        system, obs, result = fly(
            mitigated, args.scale, args.seed, args.injection, out, registry
        )
        print(f"=== {name}: {result.outcome.value.upper()} "
              f"after {result.flight_duration_s:.1f}s ===")
        print(render_span_tree(*build_span_tree(obs.trace.events)))
        if result.blackbox_path:
            print(f"\nblack box: {result.blackbox_path}")
        if mitigated:
            print("\nswitchover timeline:")
            if not system.redundancy.events:
                print("  (no switchovers)")
            for ev in system.redundancy.events:
                print(f"  t={ev.time_s:7.2f}s  IMU {ev.from_member} -> "
                      f"IMU {ev.to_member}")
        print()

    metrics_path = out / "metrics.prom"
    write_prometheus(registry, metrics_path)
    print(f"artifacts in {out}/: events_baseline.jsonl, "
          f"events_mitigated.jsonl, metrics.prom"
          + (", blackbox_baseline.json" if (out / "blackbox_baseline.json").exists() else ""))
    print("try: python -m repro.obs diff "
          f"{out}/events_baseline.jsonl {out}/events_mitigated.jsonl")


if __name__ == "__main__":
    main()
