#!/usr/bin/env python3
"""Recreate the paper's trajectory figures (Figs. 3-5) in the terminal.

Each figure injects one specific fault into one specific mission and
plots the planned route against the flown trajectory:

* Fig. 3 - fixed (random constant) value into the accelerometer of the
  fastest drone (25 km/h), mid-leg, 30 s: off-trajectory crash.
* Fig. 4 - random values into the gyrometer just before a waypoint of a
  turning mission, 30 s: cannot stabilise for the turn, failsafe.
* Fig. 5 - random values into the whole IMU, 30 s: fast forceful loss.

Run: ``python examples/fault_scenario.py [--scale 0.15] [--figure 3|4|5]``
"""

import argparse

from repro.core.figures import (
    FIGURE_3,
    FIGURE_4,
    FIGURE_5,
    render_ascii_trajectory,
    run_figure_scenario,
)

FIGURES = {"3": FIGURE_3, "4": FIGURE_4, "5": FIGURE_5}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.15,
                        help="mission geometry scale (1.0 = paper scale)")
    parser.add_argument("--figure", choices=sorted(FIGURES), default=None,
                        help="render one figure only (default: all three)")
    args = parser.parse_args()

    chosen = [FIGURES[args.figure]] if args.figure else list(FIGURES.values())
    for scenario in chosen:
        print(f"\n=== Figure {scenario.name[-1]}: {scenario.description} ===")
        result = run_figure_scenario(scenario, scale=args.scale)
        print(render_ascii_trajectory(result))
        print(
            f"injection window: t={result.injection_start_s:.0f}s to "
            f"t={result.injection_end_s:.0f}s, "
            f"flight ended at t={result.times_s[-1]:.1f}s"
        )


if __name__ == "__main__":
    main()
