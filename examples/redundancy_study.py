#!/usr/bin/env python3
"""Compare baseline crashes against the redundant-IMU-bank mitigation.

The paper's failure analysis (Table IV) shows most faulty missions end
in a crash or failsafe because the simulated vehicle carries a single
IMU: the PX4-style failsafe enters its redundant-sensor isolation stage
but has nothing to switch to. This study re-runs the campaign twice on
the same seeds:

* **baseline** — single IMU, the paper's setup;
* **mitigated** — an N-member IMU bank with median voting, primary
  switchover during the isolation stage, and a degraded gyro-only
  fallback when no healthy member remains.

Faults are injected with ``FaultScope.PRIMARY_ONLY`` so only the active
sensor is corrupted — the scenario redundancy is designed for. The
output is a resilience-comparison table (completion/crash rates side by
side per fault type) plus the list of fault types the bank rescued.

Run: ``python examples/redundancy_study.py [--missions 2,5] [--scale 0.1]
      [--durations 10] [--redundancy 3] [--workers 1] [--seed 0]``
"""

import argparse
import dataclasses
import time

from repro import (
    CampaignConfig,
    FaultScope,
    redundancy_rescues,
    render_rescues,
    render_resilience_table,
    resilience_comparison,
    run_campaign,
)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--missions", type=str, default="2,5")
    parser.add_argument("--durations", type=str, default="10")
    parser.add_argument("--injection", type=float, default=None,
                        help="fault start time (default: scaled paper mark)")
    parser.add_argument("--redundancy", type=int, default=3,
                        help="IMU bank size for the mitigated run")
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    baseline_config = CampaignConfig(
        scale=args.scale,
        injection_time_s=args.injection,
        mission_ids=tuple(int(m) for m in args.missions.split(",")),
        durations_s=tuple(float(d) for d in args.durations.split(",")),
        workers=args.workers,
        base_seed=args.seed,
        include_gold=False,
        fault_scope=FaultScope.PRIMARY_ONLY,
        mitigation=False,
    )
    mitigated_config = dataclasses.replace(
        baseline_config, mitigation=True, imu_redundancy=args.redundancy
    )

    cases = len(baseline_config.mission_ids) * 21 * len(baseline_config.durations_s)
    print(
        f"Running {cases} cases twice (baseline, then {args.redundancy}-IMU "
        f"bank; scale={args.scale}, injection at "
        f"t={baseline_config.effective_injection_time_s:.0f}s) ..."
    )
    start = time.time()
    baseline = run_campaign(baseline_config, progress=True)
    mitigated = run_campaign(mitigated_config, progress=True)
    print(f"done in {time.time() - start:.0f} s\n")

    rows = resilience_comparison(baseline, mitigated)
    print(render_resilience_table(
        rows,
        f"Resilience comparison: single IMU vs {args.redundancy}-member bank "
        f"(PRIMARY_ONLY faults)",
    ))
    print()
    print(render_rescues(redundancy_rescues(baseline, mitigated)))
    print(
        "\nNotes: both campaigns share seeds, missions, and fault cases;"
        "\nonly the IMU bank differs. 'switch' counts primary switchovers"
        "\nacross the mitigated runs and 'isol ok' the isolation episodes"
        "\nthat ended in recovery instead of failsafe engagement. Violent"
        "\ngyro faults can still tumble the vehicle during the detection"
        "\ndebounce faster than any switchover can save it - the paper's"
        "\nargument for quicker detection, quantified."
    )


if __name__ == "__main__":
    main()
