#!/usr/bin/env python3
"""Multi-UAV U-space surveillance: brokers, tracker, and conflicts.

Reproduces the paper's experimental environment topology (Fig. 1): each
drone publishes 1 Hz track reports through an edge broker to the core
broker, where the tracker service maintains the surveillance picture.
A conflict detector then checks pairwise outer-bubble separation — the
U-space use the two-layer bubble exists for.

One drone flies with a fault injected into its accelerometer, so its
*reported* track (the EKF estimate U-space sees) deviates, potentially
conflicting with its neighbours' bubbles.

Run: ``python examples/swarm_conflicts.py``
"""

from repro import FaultSpec, FaultTarget, FaultType, UavSystem, valencia_missions
from repro.telemetry import CoreBroker, EdgeBroker, Tracker
from repro.uspace import ConflictDetector, inner_bubble_radius


def main():
    plans = valencia_missions(scale=0.15)[:4]
    core = CoreBroker()
    tracker = Tracker(core)

    # One edge broker per operating area, as in the paper's platform.
    systems = []
    for index, plan in enumerate(plans):
        edge = EdgeBroker(f"edge-{index}", upstream=core)
        fault = None
        if plan.mission_id == 3:
            fault = FaultSpec(FaultType.NOISE, FaultTarget.ACCEL, 25.0, 10.0)
        systems.append(UavSystem(plan, fault=fault, broker=edge))

    for system in systems:
        system.commander.arm_and_takeoff(system.physics.time_s)

    radii = {
        p.mission_id: inner_bubble_radius(
            p.drone.dimension_m, p.drone.safety_distance_m,
            p.drone.max_distance_per_track_m(1.0),
        )
        for p in plans
    }
    detector = ConflictDetector()

    # Co-simulate all four vehicles at the shared 100 Hz step.
    active = list(systems)
    step = 0
    while active:
        for system in list(active):
            system.step()
            if system.commander.terminal:
                active.remove(system)
        step += 1
        if step % 100 == 0:  # 1 Hz conflict sweep over the tracker picture
            positions = {}
            for plan in plans:
                latest = tracker.latest(plan.mission_id)
                if latest is not None:
                    positions[plan.mission_id] = latest.position_array
            if len(positions) >= 2:
                for c in detector.check_instant(step / 100.0, positions, radii):
                    print(f"t={c.time_s:6.1f}s  CONFLICT drones {c.drone_a}<->{c.drone_b} "
                          f"distance {c.distance_m:.1f} m < required {c.required_separation_m:.1f} m "
                          f"(severity {c.severity:.2f})")
        if step > 60000:
            break

    print("\nSurveillance summary:")
    for plan in plans:
        count = tracker.track_count(plan.mission_id)
        print(f"  drone {plan.mission_id} ({plan.description}): {count} track reports")
    print(f"  total conflict events: {detector.total_conflicts}")
    print(f"  core broker delivered {core.published_count} messages, "
          f"{len(core.delivery_errors)} delivery errors")


if __name__ == "__main__":
    main()
