#!/usr/bin/env python3
"""Run the paper's fault-injection campaign and print Tables II-IV.

The full matrix is 850 cases (10 missions x 7 fault types x 3 targets x
4 durations + 10 gold runs). At ``--scale 1.0`` that is the paper's
setup with ~491 s gold runs and injection at 90 s — expect hours of
wall-clock. The default reduced scale keeps the same matrix shape in
tens of minutes on one core.

Long runs should use the crash-safe checkpoint: ``--checkpoint FILE``
journals every completed case, and after a crash or Ctrl-C the same
command plus ``--resume`` continues exactly where it stopped (the
merged result is bit-identical to an uninterrupted run). ``--retries``
and ``--timeout`` guard against flaky or wedged cases: a case that
exhausts its budget is recorded as a harness error and excluded from
the tables instead of aborting the campaign.

Run: ``python examples/full_campaign.py [--scale 0.15] [--missions 2,5,10]
      [--workers 1] [--durations 2,5,10,30] [--seed 0]
      [--checkpoint run.jsonl --resume] [--retries 3] [--timeout 600]``
"""

import argparse
import sys
import time

from repro import (
    CampaignConfig,
    RetryPolicy,
    check_paper_shapes,
    export_csv,
    harness_error_report,
    render_shape_checks,
    render_table,
    run_campaign,
    save_campaign,
    table2_by_duration,
    table3_by_fault,
    table4_failure_analysis,
)
from repro.core.tables import harness_error_note


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.15)
    parser.add_argument("--missions", type=str, default="1,2,3,4,5,6,7,8,9,10")
    parser.add_argument("--durations", type=str, default="2,5,10,30")
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--save", type=str, default=None,
                        help="write raw results to this JSON file")
    parser.add_argument("--csv", type=str, default=None,
                        help="write raw results to this CSV file")
    parser.add_argument("--checkpoint", type=str, default=None,
                        help="crash-safe JSONL journal; every completed case "
                             "is appended and fsync'd")
    parser.add_argument("--resume", action="store_true",
                        help="continue from --checkpoint, skipping cases it "
                             "already holds")
    parser.add_argument("--retries", type=int, default=1,
                        help="attempts per case before it is recorded as a "
                             "harness error (default 1 = no retry)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-case wall-clock limit in seconds")
    parser.add_argument("--backoff", type=float, default=1.0,
                        help="base backoff sleep between retries (seconds)")
    parser.add_argument("--obs", type=str, default=None, metavar="DIR",
                        help="enable the observability plane: every case "
                             "flies instrumented and non-completed runs "
                             "drop a black box into DIR (inspect with "
                             "'python -m repro.obs summarize/render')")
    args = parser.parse_args()
    if args.resume and not args.checkpoint:
        parser.error("--resume requires --checkpoint")

    config = CampaignConfig(
        scale=args.scale,
        mission_ids=tuple(int(m) for m in args.missions.split(",")),
        durations_s=tuple(float(d) for d in args.durations.split(",")),
        workers=args.workers,
        base_seed=args.seed,
        obs_dir=args.obs,
    )
    policy = RetryPolicy(
        max_attempts=max(1, args.retries),
        backoff_base_s=args.backoff,
        timeout_s=args.timeout,
    )
    cases = (
        len(config.mission_ids) * 21 * len(config.durations_s) + len(config.mission_ids)
    )
    print(
        f"Running {cases} experiments (scale={config.scale}, "
        f"injection at t={config.effective_injection_time_s:.0f}s) ..."
    )
    start = time.time()
    try:
        campaign = run_campaign(
            config,
            progress=True,
            retry_policy=policy,
            checkpoint_path=args.checkpoint,
            resume=args.resume,
        )
    except KeyboardInterrupt:
        print("\ninterrupted.")
        if args.checkpoint:
            print(
                f"completed cases are journalled in {args.checkpoint}; "
                "re-run with --resume to continue from there."
            )
        else:
            print("no --checkpoint was given, so progress was not saved.")
        sys.exit(130)
    print(f"done in {time.time() - start:.0f} s\n")

    print(render_table(table2_by_duration(campaign),
                       "TABLE II: average summary grouped by injection duration"))
    print()
    print(render_table(table3_by_fault(campaign),
                       "TABLE III: average summary grouped by fault type"))
    print()
    print(render_table(table4_failure_analysis(campaign),
                       "TABLE IV: mission failure analysis"))
    note = harness_error_note(campaign)
    if note:
        print(note)
    print()
    print(render_shape_checks(check_paper_shapes(campaign)))
    if campaign.harness_errors:
        print()
        print(harness_error_report(campaign))

    if args.obs:
        blackboxes = [r for r in campaign.results if r.blackbox_path]
        print(f"\n{len(blackboxes)} black boxes collected in {args.obs}/ "
              "(one per non-completed case):")
        for r in blackboxes[:10]:
            print(f"  exp {r.experiment_id:4d}  {r.fault_label:<22} "
                  f"{r.outcome.value if r.outcome else 'harness_error':<9} "
                  f"{r.blackbox_path}")
        if len(blackboxes) > 10:
            print(f"  ... and {len(blackboxes) - 10} more")

    if args.save:
        save_campaign(campaign, args.save)
        print(f"\nraw results written to {args.save}")
    if args.csv:
        export_csv(campaign, args.csv)
        print(f"raw results written to {args.csv}")


if __name__ == "__main__":
    main()
