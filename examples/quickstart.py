#!/usr/bin/env python3
"""Quickstart: fly one mission clean, then replay it with an IMU fault.

Demonstrates the core public API in ~40 lines:

* build the paper's Valencia scenario (``valencia_missions``),
* fly a gold (fault-free) run with :class:`repro.UavSystem`,
* inject a 10 s gyroscope fault at t=25 s and compare outcomes.

Run: ``python examples/quickstart.py``
"""

from repro import FaultSpec, FaultTarget, FaultType, UavSystem, valencia_missions


def describe(tag, result):
    print(
        f"{tag:<22} outcome={result.outcome.value:<10} "
        f"duration={result.flight_duration_s:7.1f} s  "
        f"distance={result.distance_km:5.2f} km  "
        f"bubble violations: inner={result.inner_violations} outer={result.outer_violations}"
    )


def main():
    # Scale 0.15 shrinks the Valencia geometry so each flight takes a few
    # wall-clock seconds; use scale=1.0 for the paper's ~491 s missions.
    missions = {plan.mission_id: plan for plan in valencia_missions(scale=0.15)}
    plan = missions[4]  # 12 km/h delivery, East to West
    print(f"Mission {plan.mission_id}: {plan.description}")
    print(f"  route length {plan.cruise_length_m:.0f} m at "
          f"{plan.drone.cruise_speed_m_s * 3.6:.0f} km/h\n")

    # 1. Gold run: no fault, the reference trajectory.
    gold = UavSystem(plan).run()
    describe("gold run", gold)

    # 2. Same mission with 'Gyro Zeros' (dead gyroscope) for 10 seconds.
    fault = FaultSpec(
        fault_type=FaultType.ZEROS,
        target=FaultTarget.GYRO,
        start_time_s=25.0,
        duration_s=10.0,
    )
    faulty = UavSystem(plan, fault=fault).run()
    describe(f"with {fault.label} (10 s)", faulty)

    # 3. And with the same fault on the whole IMU - far more severe.
    imu_fault = FaultSpec(FaultType.ZEROS, FaultTarget.IMU, 25.0, 10.0)
    lost = UavSystem(plan, fault=imu_fault).run()
    describe(f"with {imu_fault.label} (10 s)", lost)

    print(
        "\nThe gyro-only fault is flyable (the EKF carries the attitude on"
        "\nGPS corrections), while the full-IMU fault forces the failsafe -"
        "\nthe paper's central finding about component criticality."
    )


if __name__ == "__main__":
    main()
