"""Setup shim for environments without the ``wheel`` package.

The project metadata lives in ``pyproject.toml``; this file only exists
so ``pip install -e .`` works on offline machines where the PEP 660
editable path (which needs ``wheel``) is unavailable:

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
